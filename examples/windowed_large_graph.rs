//! Memory-constrained solving with the windowed search (paper §IV-E).
//!
//! A dense social-style graph is solved on a device with a deliberately
//! tight memory budget: the full breadth-first enumeration runs out of
//! memory, and the windowed variant — which keeps only one window's subtree
//! resident — finds a maximum clique within the same budget. The example
//! sweeps window sizes to show the paper's memory/parallelism trade-off
//! (§V-C: smaller windows → less memory, less available work).
//!
//! ```sh
//! cargo run --release --example windowed_large_graph
//! ```

use gpu_max_clique::graph::generators;
use gpu_max_clique::mce::SolveError;
use gpu_max_clique::prelude::*;

fn main() {
    // Dense enough that intermediate candidate lists dwarf the graph.
    let graph = generators::gnp(3_000, 0.05, 11);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // First, an unconstrained reference run to know the true peak.
    let reference = MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .expect("unlimited memory");
    println!(
        "unconstrained: ω = {} using peak {:.1} KiB of candidate storage \
         (+ {:.1} KiB heuristic scratch)",
        reference.clique_number,
        reference.stats.peak_device_bytes as f64 / 1024.0,
        reference.stats.heuristic_peak_bytes as f64 / 1024.0
    );

    // A budget halfway between the heuristic scratch (which both variants
    // need) and the full candidate peak: the full BFS must OOM, while any
    // window's subtree fits easily.
    let budget = (reference.stats.heuristic_peak_bytes + reference.stats.peak_device_bytes) / 2;
    let device = Device::with_memory_budget(budget);
    println!("\ndevice budget: {:.1} KiB", budget as f64 / 1024.0);

    match MaxCliqueSolver::new(device.clone()).solve(&graph) {
        Err(SolveError::DeviceOom(oom)) => {
            println!("full breadth-first: OOM as expected ({oom})");
        }
        Err(err) => {
            println!("full breadth-first failed unexpectedly: {err}");
        }
        Ok(r) => {
            println!(
                "full breadth-first unexpectedly fit (peak {:.1} KiB) — budget heuristics are
                 graph-dependent; continuing with the sweep",
                r.stats.peak_device_bytes as f64 / 1024.0
            );
        }
    }

    // Windowed sweep under the same budget.
    println!(
        "\n{:<10} {:>10} {:>14} {:>12} {:>8}",
        "window", "windows", "peak KiB", "ms", "ω"
    );
    for size in [512usize, 2048, 8192, 32768] {
        let solver = MaxCliqueSolver::new(device.clone()).windowed(WindowConfig::with_size(size));
        match solver.solve(&graph) {
            Ok(result) => {
                let w = result.stats.window.expect("windowed run");
                println!(
                    "{:<10} {:>10} {:>14.1} {:>12.1} {:>8}",
                    size,
                    w.num_windows,
                    w.peak_window_bytes as f64 / 1024.0,
                    result.stats.total_time.as_secs_f64() * 1e3,
                    result.clique_number
                );
                assert_eq!(result.clique_number, reference.clique_number);
            }
            Err(e) => println!("{size:<10} {e}"),
        }
    }

    println!(
        "\nwindowed find-one returns a single witness clique; enumerate-all mode\n\
         (WindowConfig {{ enumerate_all: true, .. }}) recovers the full set window by window."
    );
}
