//! Quickstart: build a graph, enumerate its maximum cliques, inspect the
//! solve statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Set `GMC_TRACE=trace.json` to record a Chrome-trace timeline of the
//! solve (open it in Perfetto, or run `gmc-report trace trace.json` for a
//! per-kernel latency table).

use gpu_max_clique::prelude::*;

fn main() {
    let env_trace = gpu_max_clique::trace::EnvTrace::from_env();
    // A small graph: a triangle {0,1,2} attached to a 4-clique {2,3,4,5}.
    let graph = Csr::from_edges(
        6,
        &[
            (0, 1),
            (1, 2),
            (0, 2), // triangle
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5), // 4-clique
        ],
    );
    println!(
        "graph: {} vertices, {} edges, average degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // A virtual GPU with default parallelism and unlimited memory; real runs
    // would set a byte budget (see the windowed_large_graph example).
    let device = Device::unlimited();
    let mut solver = MaxCliqueSolver::new(device);
    if let Some(t) = &env_trace {
        solver = solver.trace(t.tracer());
    }
    let result = solver.solve(&graph).expect("small graph fits trivially");
    if let Some(t) = env_trace {
        let (path, timeline) = t.finish().expect("trace file is writable");
        println!(
            "trace: wrote {} spans to {}; render with `gmc-report trace {}`",
            timeline.spans.len(),
            path.display(),
            path.display()
        );
    }

    println!("clique number ω = {}", result.clique_number);
    println!("maximum cliques ({}):", result.multiplicity());
    for clique in &result.cliques {
        println!("  {clique:?}");
    }

    let stats = &result.stats;
    println!("\nsolve phases:");
    println!(
        "  heuristic ({}) found ω̄ = {}",
        stats.heuristic_kind, stats.lower_bound
    );
    println!(
        "  setup pruned {} vertices, {} sublists ({:.0}% of 2-cliques cut)",
        stats.setup.pruned_vertices,
        stats.setup.pruned_sublists,
        100.0 * stats.pruning_fraction()
    );
    println!("  candidate entries per level: {:?}", stats.level_entries);
    println!("  peak device memory: {} bytes", stats.peak_device_bytes);
    println!(
        "  virtual-GPU launches: {} ({} virtual threads)",
        stats.launches.launches, stats.launches.virtual_threads
    );

    assert_eq!(result.clique_number, 4);
    assert_eq!(result.cliques, vec![vec![2, 3, 4, 5]]);
}
