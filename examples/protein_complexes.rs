//! Protein-complex discovery in a synthetic PPI network — the paper's
//! systems-biology application (§I). Cliques in protein-interaction graphs
//! are candidate complexes; this example plants several complexes, then
//! compares the four heuristics' accuracy and cost before running the exact
//! enumeration, mirroring the paper's heuristic-selection walk-through.
//!
//! ```sh
//! cargo run --release --example protein_complexes
//! ```

use gpu_max_clique::graph::generators;
use gpu_max_clique::prelude::*;

fn main() {
    // Geometric interaction background (spatially local binding) with three
    // planted complexes of different sizes; the largest is the target.
    let background = generators::random_geometric(8_000, 0.018, 7);
    let (g1, _) = generators::plant_clique(&background, 8, 70);
    let (g2, _) = generators::plant_clique(&g1, 10, 71);
    let (graph, complex) = generators::plant_clique(&g2, 12, 72);
    println!(
        "PPI network: {} proteins, {} interactions, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // Compare all four heuristics first (paper §V-B: accuracy vs cost).
    let device = Device::unlimited();
    println!("\nheuristic comparison:");
    println!(
        "{:<16} {:>6} {:>12} {:>12}",
        "heuristic", "ω̄", "total ms", "k-core ms"
    );
    for kind in [
        HeuristicKind::SingleDegree,
        HeuristicKind::SingleCore,
        HeuristicKind::MultiDegree,
        HeuristicKind::MultiCore,
    ] {
        let h = gpu_max_clique::heuristic::run_heuristic(&device, &graph, kind, None)
            .expect("heuristic fits");
        println!(
            "{:<16} {:>6} {:>12.2} {:>12.2}",
            kind.name(),
            h.lower_bound(),
            h.total_time.as_secs_f64() * 1e3,
            h.core_time.as_secs_f64() * 1e3
        );
    }

    // Exact enumeration with the recommended default.
    let result = MaxCliqueSolver::new(device)
        .heuristic(HeuristicKind::MultiDegree)
        .solve(&graph)
        .expect("fits in memory");
    println!(
        "\nlargest complex: {} proteins × {} complex(es)",
        result.clique_number,
        result.multiplicity()
    );
    for clique in &result.cliques {
        println!("  {clique:?}");
    }
    println!(
        "exact phase explored {} levels; entries per level {:?}",
        result.stats.level_entries.len(),
        result.stats.level_entries
    );

    assert_eq!(
        result.clique_number, 12,
        "the planted 12-complex is the maximum"
    );
    assert!(result.cliques.contains(&complex));
    println!("\nplanted 12-protein complex recovered exactly ✓");
}
