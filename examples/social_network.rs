//! Cohesive-group analysis on a synthetic social network — the paper's
//! motivating application (§I: social network analysis).
//!
//! Generates a powerlaw-clustered friendship graph with an embedded tightly
//! knit community, enumerates *all* maximum cliques (the paper's argument
//! for enumeration over find-one: downstream analysis wants every largest
//! cohesive group), and reports which members recur across them.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use gpu_max_clique::graph::generators;
use gpu_max_clique::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // A 20k-member friendship network: heavy-tailed degrees with triadic
    // closure, plus one planted 14-person core community.
    let base = generators::holme_kim(20_000, 6, 0.65, 42);
    let (graph, community) = generators::plant_clique(&base, 14, 43);
    println!(
        "social network: {} members, {} friendships, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );
    println!("(planted core community: {community:?})");

    let device = Device::unlimited();
    let result = MaxCliqueSolver::new(device)
        .heuristic(HeuristicKind::MultiDegree) // paper's recommended default
        .solve(&graph)
        .expect("fits in memory");

    println!(
        "\nlargest cohesive groups: size {} × {} group(s)",
        result.clique_number,
        result.multiplicity()
    );
    for clique in result.cliques.iter().take(5) {
        println!("  {clique:?}");
    }

    // Membership frequency across all maximum cliques: the recurring
    // members are the community's core.
    let mut frequency: BTreeMap<u32, usize> = BTreeMap::new();
    for clique in &result.cliques {
        for &v in clique {
            *frequency.entry(v).or_default() += 1;
        }
    }
    let mut ranked: Vec<(u32, usize)> = frequency.into_iter().collect();
    ranked.sort_by_key(|&(v, count)| (std::cmp::Reverse(count), v));
    println!("\nmost central members (appearances across maximum cliques):");
    for (v, count) in ranked.iter().take(10) {
        println!("  member {v:>6}: {count} of {}", result.multiplicity());
    }

    let stats = &result.stats;
    println!(
        "\nheuristic ω̄ = {} ({:.1} ms), total solve {:.1} ms, peak memory {:.1} KiB",
        stats.lower_bound,
        stats.heuristic_time.as_secs_f64() * 1e3,
        stats.total_time.as_secs_f64() * 1e3,
        stats.peak_device_bytes as f64 / 1024.0
    );

    // The planted community must be among the enumerated maxima (it can tie
    // with organically formed groups).
    assert!(result.clique_number >= 14);
    if result.clique_number == 14 {
        assert!(
            result.cliques.contains(&community),
            "planted community should be enumerated"
        );
    }
}
