//! Choosing a heuristic for an unknown dataset — the paper's §V-B4
//! recommendation as a runnable decision procedure:
//!
//! 1. Start with the multi-run degree heuristic (no k-core pass).
//! 2. If the solve runs out of memory, retry with the multi-run core-number
//!    heuristic (tighter vertex bounds).
//! 3. If still OOM, fall back to the windowed search.
//!
//! The example executes the procedure against three corpus datasets with
//! different prunability profiles and prints which rung each one needed.
//!
//! ```sh
//! cargo run --release --example heuristic_tuning
//! ```

use gpu_max_clique::corpus::{by_name, Tier};
use gpu_max_clique::mce::{MaxCliqueSolver, SolveError, SolveResult};
use gpu_max_clique::prelude::*;

/// The paper's §V-B4 escalation ladder, under a fixed memory budget.
fn solve_with_escalation(
    device: &Device,
    graph: &Csr,
) -> (&'static str, Result<SolveResult, SolveError>) {
    let rung1 = MaxCliqueSolver::new(device.clone())
        .heuristic(HeuristicKind::MultiDegree)
        .solve(graph);
    if rung1.is_ok() {
        return ("multi-degree", rung1);
    }
    let rung2 = MaxCliqueSolver::new(device.clone())
        .heuristic(HeuristicKind::MultiCore)
        .solve(graph);
    if rung2.is_ok() {
        return ("multi-core", rung2);
    }
    let rung3 = MaxCliqueSolver::new(device.clone())
        .heuristic(HeuristicKind::MultiCore)
        .windowed(WindowConfig::with_size(1024))
        .solve(graph);
    ("windowed multi-core", rung3)
}

fn main() {
    // Three prunability profiles from the corpus: easy (collaboration —
    // ω far above average degree), moderate (social with community cores),
    // hard (dense Facebook-style — average degree far above ω).
    let names = ["ca-papers-05", "soc-sphere-06", "socfb-campus-14"];
    // A tight budget makes the ladder's rungs matter: 2 MiB of device
    // memory against graphs of 20k-90k edges.
    let budget = 2 * 1024 * 1024;

    for name in names {
        let spec = by_name(Tier::Small, name).expect("known dataset");
        let graph = spec.load();
        println!(
            "\n=== {name} ({}, {} edges, avg degree {:.1}) ===",
            spec.category,
            graph.num_edges(),
            graph.avg_degree()
        );

        let device = Device::with_memory_budget(budget);
        device
            .exec()
            .set_launch_overhead(std::time::Duration::from_micros(3));
        let (rung, outcome) = solve_with_escalation(&device, &graph);
        match outcome {
            Ok(result) => {
                println!(
                    "solved at rung `{rung}`: ω = {} ({} maximum clique(s)), \
                     ω̄ = {}, pruned {:.0}% of 2-cliques, peak {:.1} KiB, {:.1} ms",
                    result.clique_number,
                    result.multiplicity(),
                    result.stats.lower_bound,
                    100.0 * result.stats.pruning_fraction(),
                    result.stats.peak_device_bytes as f64 / 1024.0,
                    result.stats.total_time.as_secs_f64() * 1e3
                );
                if let Some(w) = result.stats.window {
                    println!(
                        "  (windowed: {} windows of nominal {}, {} bound improvements)",
                        w.num_windows, w.nominal_size, w.bound_improvements
                    );
                }
            }
            Err(e) => println!("all rungs exhausted: {e}"),
        }
    }

    println!(
        "\npaper §V-B4: \"the fastest runtime is typically achieved by using the\n\
         simplest heuristic for which pruning is sufficient to avoid running out\n\
         of memory\" — the ladder above automates exactly that rule."
    );
}
