//! The paper's Figure 1, executed: builds the example graph from the
//! figure, runs the real setup + expansion pipeline on it, prints each
//! clique-list level in the figure's (vertexID / sublistID) layout, and
//! walks the back-pointers to read out the maximum clique exactly as the
//! figure's caption does.
//!
//! ```sh
//! cargo run --release --example paper_figure1
//! ```

use gpu_max_clique::prelude::*;

fn label(v: u32) -> char {
    (b'A' + v as u8) as char
}

fn main() {
    // The figure's five-vertex graph: A–B, A–C, B–C, B–D, B–E, C–D, C–E,
    // D–E. Its unique maximum clique is {B, C, D, E}.
    let graph = Csr::from_edges(
        5,
        &[
            (0, 1), // A–B
            (0, 2), // A–C
            (1, 2), // B–C
            (1, 3), // B–D
            (1, 4), // B–E
            (2, 3), // C–D
            (2, 4), // C–E
            (3, 4), // D–E
        ],
    );
    println!(
        "the Figure 1 graph: vertices A..E, {} edges",
        graph.num_edges()
    );

    // Run the solver with no heuristic and no early exit so the full
    // clique-list structure is built, level by level, like the figure.
    let result = MaxCliqueSolver::new(Device::unlimited())
        .heuristic(HeuristicKind::None)
        .early_exit(false)
        .solve(&graph)
        .expect("trivial memory needs");

    println!("\nclique-list levels (the figure's linked list), from the solver run:");
    for (k, entries) in result.stats.level_entries.iter().enumerate() {
        println!("  node k={}: {entries} entries", k + 2);
    }

    println!("\nmaximum clique read-out (the caption's walk):");
    for clique in &result.cliques {
        let letters: Vec<char> = clique.iter().map(|&v| label(v)).collect();
        println!("  C = {letters:?}");
    }
    assert_eq!(result.clique_number, 4);
    assert_eq!(result.cliques, vec![vec![1, 2, 3, 4]]); // {B, C, D, E}
    println!("\nω = 4 and the unique maximum clique is {{B, C, D, E}} — as in the paper ✓");

    // And the data structure itself, shown the figure's way: rebuild the
    // levels by hand through the public clique-list API.
    use gpu_max_clique::cliquelist::{CliqueLevel, CliqueList};
    let memory = DeviceMemory::unlimited();
    let mut list = CliqueList::new();
    // Node k=2 packs both of the first two tree levels: sublistID holds the
    // source vertex, vertexID the candidate.
    list.push_level(
        CliqueLevel::from_vecs(
            &memory,
            vec![1, 2, 2, 3, 4, 3, 4, 4], // vertexID:  B C C D E D E E
            vec![0, 0, 1, 1, 1, 2, 2, 3], // sublistID: A A B B B C C D
        )
        .unwrap(),
    );
    // Node k=3: each entry extends a k=2 entry (sublistID = parent index).
    list.push_level(
        CliqueLevel::from_vecs(&memory, vec![2, 3, 4, 4, 4], vec![0, 2, 2, 3, 5]).unwrap(),
    );
    // Node k=4: the single 4-clique.
    list.push_level(CliqueLevel::from_vecs(&memory, vec![4], vec![1]).unwrap());

    let walked = list.read_clique(2, 0);
    let letters: Vec<char> = walked.iter().map(|&v| label(v)).collect();
    println!("figure walk-through via back-pointers: {letters:?}");
    assert_eq!(walked, vec![1, 2, 3, 4]);
}
