//! Maximal vs. maximum clique enumeration — the distinction the paper's
//! related-work section is built around (§III).
//!
//! *Maximal* cliques are cliques not contained in a larger clique; the
//! *maximum* cliques are the largest of them. Maximal enumeration cannot be
//! bound-pruned (any size counts), so its output is exponentially larger;
//! maximum enumeration prunes aggressively with a lower bound. This example
//! runs both on the same collaboration network and contrasts output volume
//! and runtime, then cross-checks that the breadth-first maximum solver
//! agrees with "largest maximal cliques".
//!
//! ```sh
//! cargo run --release --example maximal_vs_maximum
//! ```

use gpu_max_clique::pmc::moon_moser_bound;
use gpu_max_clique::prelude::*;

fn main() {
    let graph = gpu_max_clique::graph::generators::collaboration(2_000, 900, 3, 11, 1.8, 21);
    println!(
        "collaboration network: {} authors, {} co-author edges, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );
    println!(
        "Moon–Moser worst case for this many vertices: {} maximal cliques",
        moon_moser_bound(graph.num_vertices())
    );

    // Maximal enumeration (Bron–Kerbosch with pivoting).
    let start = std::time::Instant::now();
    let maximal = MaximalCliques::enumerate(&graph);
    let maximal_time = start.elapsed();
    let histogram = maximal.size_histogram();
    println!(
        "\nmaximal cliques: {} total in {:.1} ms",
        maximal.count(),
        maximal_time.as_secs_f64() * 1e3
    );
    println!("size histogram (size: count):");
    for (size, count) in histogram.iter().enumerate().skip(2) {
        if *count > 0 {
            println!("  {size:>3}: {count}");
        }
    }

    // Maximum enumeration (the paper's breadth-first solver).
    let start = std::time::Instant::now();
    let maximum = MaxCliqueSolver::new(Device::unlimited())
        .solve(&graph)
        .expect("fits in memory");
    let maximum_time = start.elapsed();
    println!(
        "\nmaximum cliques: {} of size {} in {:.1} ms",
        maximum.multiplicity(),
        maximum.clique_number,
        maximum_time.as_secs_f64() * 1e3
    );

    // Cross-check: the two notions must agree at the top.
    assert_eq!(maximum.clique_number, maximal.clique_number());
    assert_eq!(maximum.cliques, maximal.maximum_cliques());
    println!(
        "\ncross-check ✓ — the maximum cliques are exactly the {} largest \
         of {} maximal cliques",
        maximum.multiplicity(),
        maximal.count()
    );
    println!(
        "(the bound-pruned maximum search visits a tiny fraction of what \
         maximal enumeration must store — the paper's reason maximal-clique \
         memory limits don't transfer to bounded maximum search)"
    );
}
