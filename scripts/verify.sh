#!/usr/bin/env sh
# Tier-1 verification gate: the exact commands the project promises will
# pass from a clean checkout with NO network access (ROADMAP.md). The
# workspace has no registry dependencies, so --offline must always work.
#
# The build/test tier is followed by the same static gates CI runs
# (clippy, rustfmt, rustdoc), all --locked --offline, so a green local
# verify means a green CI lint job. Set GMC_VERIFY_FAST=1 to run only the
# tier-1 build/test pair.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --locked --offline
cargo test -q --locked --offline

# Replay the regression corpus through the differential/metamorphic
# harness (DESIGN.md §11): every once-found bug is re-checked on every
# verify run. Cheap — a handful of shrunk graphs, no fuzzing budget.
cargo run --release --bin gmc --locked --offline -- verify --replay-only

if [ "${GMC_VERIFY_FAST:-0}" = "1" ]; then
    exit 0
fi

cargo clippy --workspace --all-targets --locked --offline -- -D warnings
cargo fmt --all --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --locked --offline
