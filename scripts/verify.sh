#!/usr/bin/env sh
# Tier-1 verification gate: the exact commands the project promises will
# pass from a clean checkout with NO network access (ROADMAP.md). The
# workspace has no registry dependencies, so --offline must always work.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
