//! # gpu_max_clique
//!
//! A from-scratch Rust reproduction of *Maximum Clique Enumeration on the
//! GPU* (Geil, Porumbescu, Owens; 2023): a breadth-first, data-parallel
//! maximum clique enumeration engine, its pruning heuristics, the windowed
//! search variant, a PMC-style depth-first baseline, and a virtual-GPU
//! execution substrate that models kernel launches and device-memory limits.
//!
//! This facade crate re-exports the whole toolkit. See the individual crates
//! for details:
//!
//! * [`dpp`] — virtual-GPU executor, CUB-style primitives, device memory.
//! * [`trace`] — runtime-gated tracing/profiling: per-worker event rings,
//!   Chrome-trace/Perfetto JSON, latency tables, folded stacks.
//! * [`graph`] — CSR graphs, loaders, generators, k-core decomposition.
//! * [`cliquelist`] — the paper's clique-list data structure (§IV-B).
//! * [`heuristic`] — greedy lower-bound heuristics (§IV-A, Algorithm 1).
//! * [`mce`] — the breadth-first solver and windowed search (§IV-C..E).
//! * [`pmc`] — depth-first branch-and-bound baseline and exact oracle.
//! * [`serve`] — batched solve service: executor pool, admission control,
//!   exact result cache, deadline cancellation.
//! * [`corpus`] — the synthetic 58-dataset evaluation corpus.
//! * [`verify`] — differential + metamorphic fuzzing harness with a
//!   persistent regression corpus (`gmc verify`).
//!
//! # Quickstart
//!
//! ```
//! use gpu_max_clique::prelude::*;
//!
//! // A graph with one triangle and one 4-clique.
//! let graph = Csr::from_edges(
//!     6,
//!     &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (2, 4), (2, 5)],
//! );
//! let device = Device::unlimited();
//! let result = MaxCliqueSolver::new(device)
//!     .solve(&graph)
//!     .expect("enumeration fits in memory");
//! assert_eq!(result.clique_number, 4);
//! assert_eq!(result.cliques, vec![vec![2, 3, 4, 5]]);
//! ```

#![warn(missing_docs)]

pub use gmc_cliquelist as cliquelist;
pub use gmc_corpus as corpus;
pub use gmc_dpp as dpp;
pub use gmc_graph as graph;
pub use gmc_heuristic as heuristic;
pub use gmc_mce as mce;
pub use gmc_pmc as pmc;
pub use gmc_serve as serve;
pub use gmc_trace as trace;
pub use gmc_verify as verify;

/// Commonly used items in one import.
pub mod prelude {
    pub use gmc_dpp::{Device, DeviceMemory, Executor, FaultPlan, FaultStats, Schedule};
    pub use gmc_graph::{Csr, EdgeOracle, GraphBuilder};
    pub use gmc_heuristic::HeuristicKind;
    pub use gmc_mce::{
        CandidateOrder, EdgeIndexKind, MaxCliqueSolver, OrientationRule, SolveError, SolveResult,
        SolverConfig, WindowConfig, WindowOrdering,
    };
    pub use gmc_pmc::{MaximalCliques, ParallelBranchBound, ReferenceEnumerator};
    pub use gmc_serve::{ServeConfig, ServeError, SolveJob, SolveService};
    pub use gmc_trace::{TraceSession, Tracer};
}
