//! `gmc` — command-line front end for the maximum clique toolkit.
//!
//! ```text
//! gmc solve <graph-file> [options]   enumerate maximum cliques
//! gmc info <graph-file>              print graph statistics
//! gmc generate <family> [options]    write a synthetic graph to a file
//! gmc serve [options]                drive the batched solve service
//! gmc verify [options]               differential + metamorphic fuzzing
//! ```
//!
//! Run `gmc help` for the full option list. Graph files may be MatrixMarket
//! (`.mtx`), DIMACS clique instances (`.clq`/`.col`/`.dimacs`) or
//! whitespace edge lists (any other extension); `generate --out` picks the
//! written format by the same extensions.

use gpu_max_clique::graph::{generators, io, kcore, Csr};
use gpu_max_clique::heuristic::HeuristicKind;
use gpu_max_clique::mce::{
    EdgeIndexKind, MaxCliqueSolver, SolveError, SolverConfig, WindowConfig, WindowOrdering,
};
use gpu_max_clique::prelude::{Device, FaultPlan};
use std::io::Write;
use std::process::ExitCode;

const HELP: &str = "\
gmc — breadth-first maximum clique enumeration (GPU-paper reproduction)

USAGE:
    gmc solve <file> [options]
    gmc info <file>
    gmc generate <family> --out <file> [--param key=value ...]
    gmc serve [options]
    gmc verify [options]
    gmc help

SOLVE OPTIONS:
    --heuristic <none|single-degree|single-core|multi-degree|multi-core>
                         lower-bound heuristic (default multi-degree)
    --budget-mb <N>      device memory budget in MiB (default unlimited)
    --workers <N>        virtual-GPU worker threads (default all cores)
    --window <N>         windowed search with nominal window size N
    --window-order <index|asc|desc|random>   sublist order for windows
    --enumerate-windows  enumerate all maximum cliques in windowed mode
    --recursive <D>      recursive windowing up to depth D
    --parallel-windows <N>  process N windows concurrently
    --edge-index <bin|bitset|hash|auto>       edge lookup structure
    --no-early-exit      disable the early-exit optimisation
    --faults <spec>      inject deterministic device faults and exercise the
                         recovery ladder; spec like seed=1,alloc=0.05,launch=0.02,retries=8
                         (also readable from the GMC_FAULTS env var)
    --randomize <SEED>   shuffle vertex ids before solving
    --max-print <N>      print at most N cliques (default 10)
    --verify             independently re-check every reported clique
    --json               machine-readable output

SERVE OPTIONS (deterministic closed-loop load generator):
    --pool <N>           executor slots (default GMC_SERVE_POOL or 2)
    --queue <N>          bounded queue depth (default GMC_SERVE_QUEUE or 16)
    --cache-mb <N>       result-cache budget (default GMC_SERVE_CACHE_MB or 64)
    --budget-mb <N>      device budget split across the pool (default unlimited)
    --jobs <N>           unique jobs in the populate phase (default 6)
    --repeats <N>        seeded repeat jobs, all cache hits (default 10)
    --deadline-jobs <N>  past-deadline sentinel jobs, all cancelled (default 2)
    --vertices <N>       vertices per generated G(n,p) graph (default 120)
    --seed <S>           master workload seed (default 42)
    --json               machine-readable output

VERIFY OPTIONS (differential + metamorphic fuzzing harness):
    --seed <S>           master seed (default GMC_VERIFY_SEED or built-in)
    --budget-ms <N>      fuzzing wall-clock budget (default GMC_VERIFY_BUDGET_MS
                         or 10000; 0 = no time limit, needs --max-cases)
    --max-cases <N>      stop after N generated cases
    --max-failures <N>   stop after N distinct shrunk failures (default 8)
    --regressions <dir>  regression corpus directory (default tests/regressions);
                         replayed first on every run, new failures persisted here
    --replay-only        replay the regression corpus, skip fuzzing
    --no-persist         do not write newly found failures to the corpus
    --sabotage <drop-ties|under-report>
                         deliberately corrupt the BFS lanes (self-test: the
                         harness must catch and shrink the \"bug\")
    --json               machine-readable output

GENERATE FAMILIES (with --param defaults):
    gnp        n=1000 p=0.01 seed=1
    ba         n=1000 m=3 seed=1
    road       rows=100 cols=100 seed=1
    geometric  n=1000 radius=0.05 seed=1
    collab     authors=1000 papers=500 max=10 seed=1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`; see `gmc help`");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: positional arguments plus `--key [value]` pairs.
struct Options {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Flags that never take a value.
const BOOLEAN_FLAGS: &[&str] = &[
    "enumerate-windows",
    "no-early-exit",
    "json",
    "verify",
    "replay-only",
    "no-persist",
];

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_string(), None));
                } else {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    flags.push((name.to_string(), Some(value.clone())));
                    i += 1;
                }
            } else {
                positional.push(args[i].clone());
            }
            i += 1;
        }
        Ok(Self { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{raw}`")),
        }
    }
}

fn load_graph(path: &str) -> Result<Csr, String> {
    let result = if path.ends_with(".mtx") {
        io::load_matrix_market(path)
    } else if path.ends_with(".clq") || path.ends_with(".col") || path.ends_with(".dimacs") {
        io::load_dimacs(path)
    } else {
        io::load_edge_list(path)
    };
    result.map_err(|e| format!("cannot load {path}: {e}"))
}

fn fail(message: String) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn cmd_solve(args: &[String]) -> ExitCode {
    let opts = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let Some(path) = opts.positional.first() else {
        return fail("solve: missing graph file".into());
    };
    let mut graph = match load_graph(path) {
        Ok(g) => g,
        Err(e) => return fail(e),
    };
    match opts.get_parsed::<u64>("randomize") {
        Ok(Some(seed)) => graph = graph.randomize_vertex_ids(seed).0,
        Ok(None) => {}
        Err(e) => return fail(e),
    }

    let mut config = SolverConfig::default();
    if let Some(h) = opts.get("heuristic") {
        config.heuristic = match h {
            "none" => HeuristicKind::None,
            "single-degree" => HeuristicKind::SingleDegree,
            "single-core" => HeuristicKind::SingleCore,
            "multi-degree" => HeuristicKind::MultiDegree,
            "multi-core" => HeuristicKind::MultiCore,
            other => return fail(format!("unknown heuristic `{other}`")),
        };
    }
    if let Some(kind) = opts.get("edge-index") {
        config.edge_index = match kind {
            "bin" => EdgeIndexKind::BinarySearch,
            "bitset" => EdgeIndexKind::Bitset,
            "hash" => EdgeIndexKind::Hash,
            "auto" => EdgeIndexKind::Auto,
            other => return fail(format!("unknown edge index `{other}`")),
        };
    }
    config.early_exit = !opts.has("no-early-exit");
    match opts.get_parsed::<FaultPlan>("faults") {
        Ok(Some(plan)) => config.faults = Some(plan),
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<usize>("window") {
        Ok(Some(size)) => {
            let mut window = WindowConfig::with_size(size);
            window.enumerate_all = opts.has("enumerate-windows");
            if let Some(order) = opts.get("window-order") {
                window.ordering = match order {
                    "index" => WindowOrdering::Index,
                    "asc" => WindowOrdering::DegreeAscending,
                    "desc" => WindowOrdering::DegreeDescending,
                    "random" => WindowOrdering::Random(0xC0FFEE),
                    other => return fail(format!("unknown window order `{other}`")),
                };
            }
            match opts.get_parsed::<usize>("recursive") {
                Ok(Some(depth)) => window.max_depth = depth.max(1),
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            match opts.get_parsed::<usize>("parallel-windows") {
                Ok(Some(count)) => window.parallel_windows = count.max(1),
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            config.window = Some(window);
        }
        Ok(None) => {
            if opts.get("recursive").is_some() {
                return fail("--recursive requires --window".into());
            }
        }
        Err(e) => return fail(e),
    }

    let workers = match opts.get_parsed::<usize>("workers") {
        Ok(w) => w.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }),
        Err(e) => return fail(e),
    };
    let budget = match opts.get_parsed::<usize>("budget-mb") {
        Ok(Some(mb)) => mb * 1024 * 1024,
        Ok(None) => usize::MAX,
        Err(e) => return fail(e),
    };
    let device = Device::new(workers, budget);

    // GMC_TRACE=<path> records every launch/phase span and writes a
    // Chrome-trace JSON file; render it with `gmc-report trace <path>`.
    let env_trace = gpu_max_clique::trace::EnvTrace::from_env();
    if let Some(t) = &env_trace {
        config.trace = t.tracer();
    }

    let solver = MaxCliqueSolver::with_config(device, config);
    let solve_result = solver.solve(&graph);
    if let Some(t) = env_trace {
        match t.finish() {
            Ok((path, timeline)) => eprintln!(
                "trace: wrote {} spans to {}; render with `gmc-report trace {}`",
                timeline.spans.len(),
                path.display(),
                path.display()
            ),
            Err(e) => eprintln!("trace: could not write GMC_TRACE file: {e}"),
        }
    }
    let result = match solve_result {
        Ok(r) => r,
        Err(SolveError::DeviceOom(oom)) => {
            eprintln!(
                "out of device memory: {oom}\nhint: try --window 1024 (optionally --recursive 4), \
                 a stronger --heuristic, or a larger --budget-mb"
            );
            return ExitCode::FAILURE;
        }
        Err(SolveError::FaultRetriesExhausted { attempts }) => {
            eprintln!(
                "injected faults exhausted the retry cap after {attempts} attempts\n\
                 hint: lower the --faults rates or raise retries= in the spec"
            );
            return ExitCode::FAILURE;
        }
        Err(SolveError::Cancelled(cancelled)) => {
            eprintln!("solve cancelled: {cancelled}");
            return ExitCode::FAILURE;
        }
    };

    if opts.has("verify") {
        if let Err(e) = gpu_max_clique::mce::verify_result(&graph, &result) {
            eprintln!("verification FAILED: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("verification passed: every reported clique checked against the graph");
    }

    let max_print = match opts.get_parsed::<usize>("max-print") {
        Ok(n) => n.unwrap_or(10),
        Err(e) => return fail(e),
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if opts.has("json") {
        let cliques_json: Vec<String> = result
            .cliques
            .iter()
            .take(max_print)
            .map(|c| {
                format!(
                    "[{}]",
                    c.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "{{\"clique_number\":{},\"multiplicity\":{},\"complete\":{},\"lower_bound\":{},\
             \"total_ms\":{:.3},\"peak_bytes\":{},\"faults_injected\":{},\
             \"faults_recovered\":{},\"cliques\":[{}]}}",
            result.clique_number,
            result.multiplicity(),
            result.complete_enumeration,
            result.stats.lower_bound,
            result.stats.total_time.as_secs_f64() * 1e3,
            result.stats.peak_device_bytes,
            result.stats.faults.injected(),
            result.stats.faults.recovered(),
            cliques_json.join(",")
        );
    } else {
        let _ = writeln!(
            out,
            "graph: {} vertices, {} edges, avg degree {:.2}",
            graph.num_vertices(),
            graph.num_edges(),
            graph.avg_degree()
        );
        let _ = writeln!(
            out,
            "clique number ω = {} ({}, {} clique(s))",
            result.clique_number,
            if result.complete_enumeration {
                "complete enumeration"
            } else {
                "single witness"
            },
            result.multiplicity()
        );
        for clique in result.cliques.iter().take(max_print) {
            let _ = writeln!(out, "  {clique:?}");
        }
        if result.multiplicity() > max_print {
            let _ = writeln!(out, "  ... and {} more", result.multiplicity() - max_print);
        }
        let s = &result.stats;
        let _ = writeln!(
            out,
            "heuristic {} → ω̄ = {} in {:.1} ms; setup pruned {:.0}% of 2-cliques;\n\
             total {:.1} ms; peak candidate memory {:.1} KiB; {} virtual-GPU launches",
            s.heuristic_kind,
            s.lower_bound,
            s.heuristic_time.as_secs_f64() * 1e3,
            100.0 * s.pruning_fraction(),
            s.total_time.as_secs_f64() * 1e3,
            s.peak_device_bytes as f64 / 1024.0,
            s.launches.launches
        );
        if let Some(w) = s.window {
            let _ = writeln!(
                out,
                "windowed: {} windows (nominal {}), {} bound improvements, \
                 {} splits, {} recursions",
                w.num_windows,
                w.nominal_size,
                w.bound_improvements,
                w.window_splits,
                w.sublist_recursions
            );
        }
        if s.faults.injected() > 0 {
            let f = &s.faults;
            let _ = writeln!(
                out,
                "faults: {} injected ({} alloc, {} launch), {} recovered, \
                 {} bitmap fallbacks, {} window shrinks",
                f.injected(),
                f.injected_allocs,
                f.injected_launches,
                f.recovered(),
                f.bitmap_fallbacks,
                f.window_shrinks
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let opts = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let Some(path) = opts.positional.first() else {
        return fail("info: missing graph file".into());
    };
    let graph = match load_graph(path) {
        Ok(g) => g,
        Err(e) => return fail(e),
    };
    let (_, degeneracy) = kcore::degeneracy_order(&graph);
    let exec = gpu_max_clique::prelude::Executor::with_default_parallelism();
    let (_, components) = gpu_max_clique::graph::algo::connected_components(&graph);
    let triangles = gpu_max_clique::graph::algo::triangle_count(&exec, &graph);
    println!("file:         {path}");
    println!("vertices:     {}", graph.num_vertices());
    println!("edges:        {}", graph.num_edges());
    println!("avg degree:   {:.2}", graph.avg_degree());
    println!("max degree:   {}", graph.max_degree());
    println!("components:   {components}");
    println!("triangles:    {triangles}");
    println!(
        "clustering:   {:.4}",
        gpu_max_clique::graph::algo::global_clustering(&exec, &graph)
    );
    println!("degeneracy:   {degeneracy} (ω ≤ {})", degeneracy + 1);
    println!(
        "Turán bound:  ω ≥ {}",
        gpu_max_clique::graph::bounds::turan_lower_bound(&graph)
    );
    ExitCode::SUCCESS
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let opts = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let Some(family) = opts.positional.first() else {
        return fail("generate: missing family (gnp|ba|road|geometric|collab)".into());
    };
    let Some(out_path) = opts.get("out") else {
        return fail("generate: missing --out <file>".into());
    };

    // Collect key=value params.
    let mut params = std::collections::BTreeMap::new();
    for (name, value) in &opts.flags {
        if name == "param" {
            let raw = value.as_deref().unwrap_or_default();
            let Some((k, v)) = raw.split_once('=') else {
                return fail(format!("--param expects key=value, got `{raw}`"));
            };
            params.insert(k.to_string(), v.to_string());
        }
    }
    let get_usize = |key: &str, default: usize| -> Result<usize, String> {
        params
            .get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("param {key}: bad value `{v}`"))
            })
            .unwrap_or(Ok(default))
    };
    let get_f64 = |key: &str, default: f64| -> Result<f64, String> {
        params
            .get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("param {key}: bad value `{v}`"))
            })
            .unwrap_or(Ok(default))
    };

    let graph = match family.as_str() {
        "gnp" => {
            let (n, p, seed) = match (
                get_usize("n", 1000),
                get_f64("p", 0.01),
                get_usize("seed", 1),
            ) {
                (Ok(n), Ok(p), Ok(s)) => (n, p, s as u64),
                (Err(e), _, _) | (_, _, Err(e)) => return fail(e),
                (_, Err(e), _) => return fail(e),
            };
            generators::gnp(n, p, seed)
        }
        "ba" => {
            let (n, m, seed) = match (
                get_usize("n", 1000),
                get_usize("m", 3),
                get_usize("seed", 1),
            ) {
                (Ok(n), Ok(m), Ok(s)) => (n, m, s as u64),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return fail(e),
            };
            generators::barabasi_albert(n, m, seed)
        }
        "road" => {
            let (rows, cols, seed) = match (
                get_usize("rows", 100),
                get_usize("cols", 100),
                get_usize("seed", 1),
            ) {
                (Ok(r), Ok(c), Ok(s)) => (r, c, s as u64),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return fail(e),
            };
            generators::road_mesh(rows, cols, 0.93, 0.04, seed)
        }
        "geometric" => {
            let (n, radius, seed) = match (
                get_usize("n", 1000),
                get_f64("radius", 0.05),
                get_usize("seed", 1),
            ) {
                (Ok(n), Ok(r), Ok(s)) => (n, r, s as u64),
                (Err(e), _, _) | (_, _, Err(e)) => return fail(e),
                (_, Err(e), _) => return fail(e),
            };
            generators::random_geometric(n, radius, seed)
        }
        "collab" => {
            let (authors, papers, max, seed) = match (
                get_usize("authors", 1000),
                get_usize("papers", 500),
                get_usize("max", 10),
                get_usize("seed", 1),
            ) {
                (Ok(a), Ok(p), Ok(m), Ok(s)) => (a, p, m, s as u64),
                (Err(e), _, _, _) | (_, Err(e), _, _) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
                    return fail(e)
                }
            };
            generators::collaboration(authors, papers, 3.min(max), max, 1.9, seed)
        }
        other => return fail(format!("unknown family `{other}`")),
    };

    let file = match std::fs::File::create(out_path) {
        Ok(f) => f,
        Err(e) => return fail(format!("cannot create {out_path}: {e}")),
    };
    let mut writer = std::io::BufWriter::new(file);
    let write_result = if out_path.ends_with(".mtx") {
        io::write_matrix_market(&graph, &mut writer)
    } else if out_path.ends_with(".clq") || out_path.ends_with(".dimacs") {
        io::write_dimacs(&graph, &mut writer)
    } else {
        io::write_edge_list(&graph, &mut writer)
    };
    if let Err(e) = write_result.and_then(|()| writer.flush()) {
        return fail(format!("cannot write {out_path}: {e}"));
    }
    println!(
        "wrote {}: {} vertices, {} edges",
        out_path,
        graph.num_vertices(),
        graph.num_edges()
    );
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    use gpu_max_clique::verify::{self, Sabotage, VerifyConfig};

    let opts = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };

    // Environment knobs (GMC_VERIFY_SEED / GMC_VERIFY_BUDGET_MS) are the
    // baseline; explicit flags override them.
    let mut config = VerifyConfig::from_env();
    match opts.get_parsed::<u64>("seed") {
        Ok(Some(seed)) => config.seed = seed,
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<u64>("budget-ms") {
        Ok(Some(ms)) => config.budget = std::time::Duration::from_millis(ms),
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<u64>("max-cases") {
        Ok(cap) => config.max_cases = cap.or(config.max_cases),
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<usize>("max-failures") {
        Ok(Some(cap)) => config.max_failures = cap.max(1),
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<Sabotage>("sabotage") {
        Ok(mode) => config.sabotage = mode,
        Err(e) => return fail(format!("{e} (expected drop-ties or under-report)")),
    }
    config.replay_only = opts.has("replay-only");
    config.persist_failures = !opts.has("no-persist");
    config.regressions_dir = Some(
        opts.get("regressions")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("tests/regressions")),
    );
    if config.budget.is_zero() && config.max_cases.is_none() && !config.replay_only {
        return fail("verify: --budget-ms 0 needs --max-cases (or --replay-only)".into());
    }

    let report = verify::run(&config);

    if opts.has("json") {
        let failures_json: Vec<String> = report
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"check\":{:?},\"category\":{:?},\"case_seed\":{},\"vertices\":{},\
                     \"edges\":{},\"shrink_steps\":{},\"detail\":{:?}}}",
                    f.check,
                    f.category,
                    f.case_seed,
                    f.graph.n,
                    f.graph.num_edges(),
                    f.shrink_steps,
                    f.detail
                )
            })
            .collect();
        println!(
            "{{\"seed\":{},\"cases\":{},\"replayed\":{},\"solves\":{},\
             \"differential_checks\":{},\"metamorphic_checks\":{},\"elapsed_ms\":{:.1},\
             \"clean\":{},\"failures\":[{}]}}",
            config.seed,
            report.cases,
            report.replayed,
            report.solves,
            report.differential_checks,
            report.metamorphic_checks,
            report.elapsed.as_secs_f64() * 1e3,
            report.is_clean(),
            failures_json.join(",")
        );
    } else {
        println!(
            "verify: seed {}, {} regression case(s) replayed, {} case(s) generated \
             in {:.1} s",
            config.seed,
            report.replayed,
            report.cases,
            report.elapsed.as_secs_f64()
        );
        println!(
            "checked {} differential lane(s) and {} metamorphic relation(s) \
             across {} solver run(s)",
            report.differential_checks, report.metamorphic_checks, report.solves
        );
        if report.is_clean() {
            println!("clean: zero lane disagreements, zero metamorphic violations");
        } else {
            for f in &report.failures {
                println!();
                println!("FAILED: {}", f.check);
                println!(
                    "  category {}, case seed {}, shrunk to {} vertices / {} edges \
                     in {} step(s)",
                    f.category,
                    f.case_seed,
                    f.graph.n,
                    f.graph.num_edges(),
                    f.shrink_steps
                );
                println!("  {}", f.detail);
                match &f.persisted {
                    Some(path) => println!("  reproducer: {}", path.display()),
                    None => {
                        for line in verify::corpus::render_graph(&f.graph).lines() {
                            println!("    {line}");
                        }
                    }
                }
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    use gpu_max_clique::serve::{loadgen, LoadConfig, ServeConfig, SolveService};

    let opts = match Options::parse(args) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };

    // Environment knobs (GMC_SERVE_POOL / _QUEUE / _CACHE_MB) are the
    // baseline; explicit flags override them.
    let mut config = ServeConfig::from_env();
    match opts.get_parsed::<usize>("pool") {
        Ok(Some(pool)) => config = config.pool(pool),
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<usize>("queue") {
        Ok(Some(depth)) => config = config.queue_depth(depth),
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<usize>("cache-mb") {
        Ok(Some(mb)) => config = config.cache_bytes(mb << 20),
        Ok(None) => {}
        Err(e) => return fail(e),
    }
    match opts.get_parsed::<usize>("budget-mb") {
        Ok(Some(mb)) => config = config.device_bytes(mb << 20),
        Ok(None) => {}
        Err(e) => return fail(e),
    }

    let mut load = LoadConfig::default();
    let parse = |name: &str, slot: &mut usize| -> Result<(), String> {
        if let Some(v) = opts.get_parsed::<usize>(name)? {
            *slot = v;
        }
        Ok(())
    };
    if let Err(e) = parse("jobs", &mut load.unique)
        .and_then(|()| parse("repeats", &mut load.repeats))
        .and_then(|()| parse("deadline-jobs", &mut load.deadline_jobs))
        .and_then(|()| parse("vertices", &mut load.vertices))
    {
        return fail(e);
    }
    match opts.get_parsed::<u64>("seed") {
        Ok(Some(seed)) => load.seed = seed,
        Ok(None) => {}
        Err(e) => return fail(e),
    }

    let service = SolveService::start(config);
    let started = std::time::Instant::now();
    let report = loadgen::run(&service, &load);
    let wall = started.elapsed();
    let stats = service.shutdown();

    if !report.bit_identical {
        eprintln!("FAILED: a served result diverged from the standalone solve");
        return ExitCode::FAILURE;
    }

    if opts.has("json") {
        println!(
            "{{\"total_jobs\":{},\"unique_jobs\":{},\"repeat_jobs\":{},\"deadline_jobs\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"hit_rate\":{:.4},\"cancellations\":{},\
             \"bit_identical\":{},\"launches\":{},\"oracle_queries\":{},\
             \"queue_wait_p50_ns\":{},\"queue_wait_p99_ns\":{},\"throughput_jobs_per_s\":{:.2}}}",
            report.total_jobs,
            report.unique_jobs,
            report.repeat_jobs,
            report.deadline_jobs,
            report.cache_hits,
            report.cache_misses,
            report.hit_rate(),
            report.cancellations,
            report.bit_identical,
            stats.launches,
            stats.oracle_queries,
            stats.queue_wait_ns(0.5),
            stats.queue_wait_ns(0.99),
            stats.throughput(wall),
        );
    } else {
        println!(
            "served {} jobs in {:.1} ms ({:.1} jobs/s): {} hits / {} misses \
             (hit rate {:.0}%), {} cancelled at deadline",
            report.total_jobs,
            wall.as_secs_f64() * 1e3,
            stats.throughput(wall),
            report.cache_hits,
            report.cache_misses,
            100.0 * report.hit_rate(),
            report.cancellations,
        );
        println!(
            "every served result matched the standalone solve bit for bit \
             (clique numbers: {:?})",
            report.clique_numbers
        );
        println!(
            "queue wait p50 {:.1} µs, p99 {:.1} µs; {} launches, {} oracle queries; \
             cache holds {} entries / {:.1} KiB",
            stats.queue_wait_ns(0.5) as f64 / 1e3,
            stats.queue_wait_ns(0.99) as f64 / 1e3,
            stats.launches,
            stats.oracle_queries,
            stats.cache_entries,
            stats.cache_bytes as f64 / 1024.0,
        );
    }
    ExitCode::SUCCESS
}
