//! Fail-loud environment-variable parsing, shared by every `GMC_*` knob in
//! the workspace.
//!
//! A typo'd knob that silently falls back to a default is worse than a
//! crash: the run *looks* configured but is not, and benchmark numbers go
//! wrong quietly. So: an unset variable means "use the default", but a set
//! variable that does not parse panics with the variable name, the
//! offending value and the expected type.

use std::fmt::Display;
use std::str::FromStr;

/// Parses `$name` as a `T`. Returns `None` when the variable is unset and
/// panics with a clear message when it is set but invalid.
pub fn parse<T: FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    Some(parse_str(name, &raw))
}

/// Like [`parse`], but the value falls back to `default` when unset.
pub fn parse_or<T: FromStr>(name: &str, default: T) -> T {
    parse(name).unwrap_or(default)
}

/// Parses a raw string as the value of `$name` (the testable core of
/// [`parse`]). Panics with a clear message on invalid input.
pub fn parse_str<T: FromStr>(name: impl Display, raw: &str) -> T {
    match raw.trim().parse::<T>() {
        Ok(value) => value,
        Err(_) => panic!(
            "invalid value for environment variable {name}: `{raw}` \
             (expected a value of type {})",
            std::any::type_name::<T>()
        ),
    }
}

/// Reads `$name` as a file path. Returns `None` when unset; panics when
/// set to an empty (or all-whitespace) string, which is always a mistake.
pub fn path(name: &str) -> Option<std::path::PathBuf> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    assert!(
        !trimmed.is_empty(),
        "environment variable {name} is set but empty (expected a file path)"
    );
    Some(std::path::PathBuf::from(trimmed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_str::<usize>("GMC_TEST", "42"), 42);
        assert_eq!(
            parse_str::<usize>("GMC_TEST", "  42  "),
            42,
            "whitespace trimmed"
        );
        assert_eq!(parse_str::<f64>("GMC_TEST", "2.5"), 2.5);
    }

    #[test]
    fn invalid_values_fail_loudly_with_the_variable_name() {
        let err = std::panic::catch_unwind(|| parse_str::<usize>("GMC_SEQ_GRID", "banana"))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("GMC_SEQ_GRID"), "names the variable: {msg}");
        assert!(msg.contains("banana"), "shows the offending value: {msg}");
        assert!(msg.contains("usize"), "states the expected type: {msg}");
    }

    #[test]
    fn unset_variables_mean_default() {
        assert_eq!(parse::<usize>("GMC_TRACE_SURELY_UNSET_VAR"), None);
        assert_eq!(parse_or("GMC_TRACE_SURELY_UNSET_VAR", 7usize), 7);
        assert_eq!(path("GMC_TRACE_SURELY_UNSET_VAR"), None);
    }
}
