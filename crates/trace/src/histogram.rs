//! Log-bucketed latency histogram: 16 sub-buckets per power of two, so
//! quantile estimates carry at most ~6% relative error while the whole
//! histogram is a fixed ~8 KiB of counters regardless of sample count.

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16 sub-buckets per octave
const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-size histogram over `u64` samples (nanoseconds, in practice)
/// with logarithmic buckets.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; NUM_BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB as u64 {
            value as usize
        } else {
            let h = 63 - value.leading_zeros(); // h >= SUB_BITS
            let sub = ((value >> (h - SUB_BITS)) & (SUB as u64 - 1)) as usize;
            SUB + (h - SUB_BITS) as usize * SUB + sub
        }
    }

    /// The representative (midpoint) value of bucket `index`.
    fn value_of(index: usize) -> u64 {
        if index < SUB {
            index as u64
        } else {
            let h = (index - SUB) as u32 / SUB as u32 + SUB_BITS;
            let sub = ((index - SUB) % SUB) as u64;
            let width = 1u64 << (h - SUB_BITS);
            (1u64 << h) + sub * width + width / 2
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other`'s samples into `self`, bucket by bucket — how per-worker
    /// histograms (e.g. a solve service's queue-wait tracks) are combined
    /// into one distribution without re-recording samples. Equivalent to
    /// having recorded every sample into `self` directly.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`), within one log bucket
    /// (~6% relative error). Exact `min`/`max` are substituted at the
    /// extremes so the reported range never exceeds the observed one.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2] {
                let b = LogHistogram::bucket_of(probe);
                assert!(b >= prev, "bucket index must not decrease");
                assert!(b < NUM_BUCKETS);
                prev = prev.max(b);
            }
        }
        assert_eq!(LogHistogram::bucket_of(0), 0);
        let _ = LogHistogram::bucket_of(u64::MAX);
    }

    #[test]
    fn representative_value_lands_in_its_own_bucket() {
        for index in 0..NUM_BUCKETS {
            let v = LogHistogram::value_of(index);
            assert_eq!(
                LogHistogram::bucket_of(v),
                index,
                "midpoint of bucket {index} (= {v}) must map back"
            );
        }
    }

    #[test]
    fn quantiles_are_close_for_uniform_samples() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.07, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.07, "p99 = {p99}");
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) <= 10_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut merged = LogHistogram::new();
        let mut reference = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 1..=500u64 {
            a.record(v * 7);
            reference.record(v * 7);
        }
        for v in 1..=300u64 {
            b.record(v * 31);
            reference.record(v * 31);
        }
        merged.merge(&a);
        merged.merge(&b);
        merged.merge(&LogHistogram::new()); // empty merge is a no-op
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.min(), reference.min());
        assert_eq!(merged.max(), reference.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), reference.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }
}
