//! Collected traces: span pairing and the three export formats.

use crate::histogram::LogHistogram;
use crate::ring::{RawEvent, Ring, KIND_BEGIN, KIND_COUNTER, KIND_END, KIND_INSTANT};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A completed (begin/end-paired) span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Static span name (kernel or phase).
    pub name: &'static str,
    /// Virtual thread id of the recording thread.
    pub tid: u64,
    /// Start, nanoseconds since the session epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth within its thread (0 = top level).
    pub depth: u32,
    /// Index (into [`Timeline::spans`]) of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Begin-time arguments followed by end-time arguments.
    pub args: Vec<(&'static str, i64)>,
}

/// One sample on a named counter track.
#[derive(Debug, Clone, Copy)]
pub struct CounterSample {
    /// Counter track name.
    pub name: &'static str,
    /// Virtual thread id of the recording thread.
    pub tid: u64,
    /// Sample time, nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: i64,
}

/// A point-in-time event.
#[derive(Debug, Clone)]
pub struct InstantEvent {
    /// Event name.
    pub name: &'static str,
    /// Virtual thread id of the recording thread.
    pub tid: u64,
    /// Event time, nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Integer arguments.
    pub args: Vec<(&'static str, i64)>,
}

/// The merged, paired result of a [`TraceSession`](crate::TraceSession).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// All spans; grouped by thread, start-ordered within each thread.
    pub spans: Vec<Span>,
    /// All counter samples, in per-thread record order.
    pub counters: Vec<CounterSample>,
    /// All instant events, in per-thread record order.
    pub instants: Vec<InstantEvent>,
    /// `(tid, thread name)` for every thread that recorded events.
    pub threads: Vec<(u64, String)>,
    /// Events lost to ring overflow across all threads.
    pub dropped: usize,
    /// Begin/end events that could not be paired (spans still open at
    /// collection, or stray ends).
    pub unmatched: usize,
}

impl Timeline {
    pub(crate) fn build(rings: &[std::sync::Arc<Ring>]) -> Timeline {
        let mut timeline = Timeline::default();
        for ring in rings {
            let (events, dropped) = ring.snapshot();
            timeline.dropped += dropped;
            timeline.threads.push((ring.tid, ring.thread_name.clone()));
            timeline.absorb(ring.tid, &events);
        }
        timeline.threads.sort_by_key(|(tid, _)| *tid);
        timeline
    }

    /// Pairs one thread's events (they are in record order, so begins and
    /// ends nest like brackets) into spans via an open-span stack.
    fn absorb(&mut self, tid: u64, events: &[RawEvent]) {
        let mut open: Vec<usize> = Vec::new();
        let mut last_ts = 0u64;
        for ev in events {
            last_ts = last_ts.max(ev.ts_ns);
            let args = |ev: &RawEvent| ev.args[..ev.nargs as usize].to_vec();
            match ev.kind {
                KIND_BEGIN => {
                    let idx = self.spans.len();
                    self.spans.push(Span {
                        name: ev.name,
                        tid,
                        start_ns: ev.ts_ns,
                        dur_ns: 0,
                        depth: open.len() as u32,
                        parent: open.last().copied(),
                        args: args(ev),
                    });
                    open.push(idx);
                }
                KIND_END => match open.pop() {
                    Some(idx) => {
                        let span = &mut self.spans[idx];
                        span.dur_ns = ev.ts_ns.saturating_sub(span.start_ns);
                        span.args.extend_from_slice(&ev.args[..ev.nargs as usize]);
                    }
                    None => self.unmatched += 1,
                },
                KIND_COUNTER => self.counters.push(CounterSample {
                    name: ev.name,
                    tid,
                    ts_ns: ev.ts_ns,
                    value: ev.value,
                }),
                KIND_INSTANT => self.instants.push(InstantEvent {
                    name: ev.name,
                    tid,
                    ts_ns: ev.ts_ns,
                    args: args(ev),
                }),
                _ => unreachable!("unknown event kind"),
            }
        }
        // Spans still open when the session finished: close them at the
        // last timestamp seen on this thread so they stay visible.
        for idx in open {
            let span = &mut self.spans[idx];
            span.dur_ns = last_ts.saturating_sub(span.start_ns);
            self.unmatched += 1;
        }
    }

    /// Serialises to Chrome trace-event JSON (the object form,
    /// `{"traceEvents": [...]}`) loadable by `chrome://tracing` and
    /// Perfetto. Spans become complete `"X"` events with microsecond
    /// `ts`/`dur`, counters become `"C"` tracks, instants `"i"`, and
    /// thread names `"M"` metadata.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for (tid, name) in &self.threads {
            let mut e = String::from(r#"{"name":"thread_name","ph":"M","pid":1,"tid":"#);
            let _ = write!(e, "{tid},\"args\":{{\"name\":");
            push_json_str(&mut e, name);
            e.push_str("}}");
            events.push(e);
        }
        for span in &self.spans {
            let mut e = String::from("{\"name\":");
            push_json_str(&mut e, span.name);
            let _ = write!(
                e,
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                span.tid,
                span.start_ns as f64 / 1e3,
                span.dur_ns as f64 / 1e3
            );
            push_args(&mut e, &span.args);
            e.push('}');
            events.push(e);
        }
        for c in &self.counters {
            let mut e = String::from("{\"name\":");
            push_json_str(&mut e, c.name);
            let _ = write!(
                e,
                ",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{{",
                c.tid,
                c.ts_ns as f64 / 1e3
            );
            push_json_str(&mut e, c.name);
            let _ = write!(e, ":{}}}}}", c.value);
            events.push(e);
        }
        for i in &self.instants {
            let mut e = String::from("{\"name\":");
            push_json_str(&mut e, i.name);
            let _ = write!(
                e,
                ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
                i.tid,
                i.ts_ns as f64 / 1e3
            );
            push_args(&mut e, &i.args);
            e.push('}');
            events.push(e);
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ms\",\"gmcDroppedEvents\":{}}}\n",
            self.dropped
        );
        out
    }

    /// Per-span-name latency statistics: count, total and p50/p99 from
    /// [`LogHistogram`]s, name-sorted.
    pub fn latency_stats(&self) -> Vec<(String, LogHistogram)> {
        let mut by_name: BTreeMap<&str, LogHistogram> = BTreeMap::new();
        for span in &self.spans {
            by_name.entry(span.name).or_default().record(span.dur_ns);
        }
        by_name
            .into_iter()
            .map(|(name, hist)| (name.to_string(), hist))
            .collect()
    }

    /// Renders the per-kernel latency table as Markdown.
    pub fn latency_table_markdown(&self) -> String {
        render_latency_table(&self.latency_stats(), self.dropped)
    }

    /// Flamegraph-style folded stacks: one `path;to;span value` line per
    /// distinct call path, where `value` is *self* nanoseconds (span
    /// duration minus child durations). Feed to any flamegraph renderer.
    pub fn folded_stacks(&self) -> String {
        let mut child_ns = vec![0u64; self.spans.len()];
        for span in &self.spans {
            if let Some(parent) = span.parent {
                child_ns[parent] += span.dur_ns;
            }
        }
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (idx, span) in self.spans.iter().enumerate() {
            let self_ns = span.dur_ns.saturating_sub(child_ns[idx]);
            let mut path = vec![span.name];
            let mut cursor = span.parent;
            while let Some(p) = cursor {
                path.push(self.spans[p].name);
                cursor = self.spans[p].parent;
            }
            path.reverse();
            *folded.entry(path.join(";")).or_default() += self_ns;
        }
        let mut out = String::new();
        for (path, ns) in folded {
            let _ = writeln!(out, "{path} {ns}");
        }
        out
    }
}

/// Renders a latency table from per-name histograms of nanosecond
/// durations. Shared by [`Timeline::latency_table_markdown`] and the
/// `gmc-report trace` path that rebuilds histograms from a saved file.
pub fn render_latency_table(stats: &[(String, LogHistogram)], dropped: usize) -> String {
    let mut out = String::from(
        "| span | count | total ms | mean µs | p50 µs | p99 µs | max µs |\n\
         |---|---:|---:|---:|---:|---:|---:|\n",
    );
    let us = |ns: u64| ns as f64 / 1e3;
    for (name, hist) in stats {
        let n = hist.count().max(1);
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.2} | {:.2} | {:.2} | {:.2} |",
            name,
            hist.count(),
            hist.sum() as f64 / 1e6,
            us(hist.sum() / n),
            us(hist.quantile(0.5)),
            us(hist.quantile(0.99)),
            us(hist.max()),
        );
    }
    if dropped > 0 {
        let _ = writeln!(
            out,
            "\n> {dropped} event(s) dropped to ring overflow; raise `GMC_TRACE_BUFFER`."
        );
    }
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_args(out: &mut String, args: &[(&'static str, i64)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use crate::TraceSession;

    fn sample_timeline() -> super::Timeline {
        let session = TraceSession::new();
        let tracer = session.tracer();
        {
            let _solve = tracer.span_with("solve", &[("n", 6)]);
            for i in 0..3 {
                let mut level = tracer.span_with("level", &[("k", i)]);
                level.arg("emitted", 10 * i);
            }
            tracer.counter("live_bytes", 4096);
            tracer.instant("oom", &[("bytes", 1 << 20)]);
        }
        session.finish()
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let json = sample_timeline().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        for needle in [
            "\"ph\":\"X\"",
            "\"ph\":\"C\"",
            "\"ph\":\"i\"",
            "\"ph\":\"M\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":1",
            "\"tid\":",
            "\"name\":\"level\"",
            "\"emitted\":20",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn latency_table_lists_each_span_name_once() {
        let table = sample_timeline().latency_table_markdown();
        assert_eq!(table.matches("| level |").count(), 1);
        assert_eq!(table.matches("| solve |").count(), 1);
        assert!(table.contains("p50"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn folded_stacks_use_full_paths_and_self_time() {
        let timeline = sample_timeline();
        let folded = timeline.folded_stacks();
        assert!(folded.contains("solve;level "));
        assert!(folded.lines().any(|l| l.starts_with("solve ")));
        // Total folded self-time equals total span self-time (here: the
        // root's duration, since children are fully contained).
        let total: u64 = folded
            .lines()
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum();
        let root = timeline.spans.iter().find(|s| s.name == "solve").unwrap();
        assert_eq!(total, root.dur_ns);
    }

    #[test]
    fn unmatched_spans_are_counted_not_lost() {
        let session = TraceSession::new();
        let tracer = session.tracer();
        let open = tracer.span("left_open");
        drop(tracer.span("closed"));
        let timeline = session.finish();
        assert_eq!(timeline.spans.len(), 2);
        assert_eq!(timeline.unmatched, 1);
        drop(open);
    }
}
