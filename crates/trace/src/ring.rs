//! Per-thread bounded event rings.
//!
//! Each recording thread owns one ring per live session: only the owner
//! writes, and the collector only reads slots below the `Release`-published
//! length, so no locks are taken on the event path. A full ring drops
//! further events (counting them) rather than blocking or reallocating —
//! tracing must never perturb what it measures.

use crate::Shared;
use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Maximum integer arguments carried by one event.
pub(crate) const MAX_ARGS: usize = 6;

pub(crate) const KIND_BEGIN: u8 = 0;
pub(crate) const KIND_END: u8 = 1;
pub(crate) const KIND_INSTANT: u8 = 2;
pub(crate) const KIND_COUNTER: u8 = 3;

/// One fixed-size recorded event. Names are `&'static str` so recording
/// never allocates.
#[derive(Clone, Copy)]
pub(crate) struct RawEvent {
    pub(crate) kind: u8,
    pub(crate) nargs: u8,
    pub(crate) name: &'static str,
    pub(crate) ts_ns: u64,
    pub(crate) value: i64,
    pub(crate) args: [(&'static str, i64); MAX_ARGS],
}

const EMPTY_EVENT: RawEvent = RawEvent {
    kind: KIND_INSTANT,
    nargs: 0,
    name: "",
    ts_ns: 0,
    value: 0,
    args: [("", 0); MAX_ARGS],
};

/// A single-writer bounded event log ("ring" in the drop-on-full sense:
/// capacity is fixed up front and overflow is counted, never blocking).
pub(crate) struct Ring {
    pub(crate) tid: u64,
    pub(crate) thread_name: String,
    slots: Box<[UnsafeCell<RawEvent>]>,
    len: AtomicUsize,
    dropped: AtomicUsize,
}

// SAFETY: only the owning thread writes slots (enforced by thread-local
// ownership in `with_local_ring`), and readers only touch slots below the
// published `len` (release store after the slot write, acquire load before
// the read), so a slot is never read while being written.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(tid: u64, thread_name: String, capacity: usize) -> Self {
        Self {
            tid,
            thread_name,
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(EMPTY_EVENT))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Appends one event. Must only be called from the owning thread.
    pub(crate) fn push(&self, ev: RawEvent) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: single writer (owning thread); slot `i` is unpublished.
        unsafe { *self.slots[i].get() = ev };
        self.len.store(i + 1, Ordering::Release);
    }

    /// Copies out the published events and the drop count.
    pub(crate) fn snapshot(&self) -> (Vec<RawEvent>, usize) {
        let n = self.len.load(Ordering::Acquire);
        // SAFETY: slots below the acquired `len` are fully written and
        // never rewritten (the log is append-only).
        let events = (0..n).map(|i| unsafe { *self.slots[i].get() }).collect();
        (events, self.dropped.load(Ordering::Relaxed))
    }
}

/// One registered ring: (session id, liveness probe, the ring itself).
type LocalRing = (u64, Weak<Shared>, Arc<Ring>);

thread_local! {
    /// This thread's rings, keyed by session id. A handful of entries at
    /// most; dead sessions are pruned when a new one registers.
    static LOCAL_RINGS: RefCell<Vec<LocalRing>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's ring for `shared`, registering a new ring
/// (the only lock acquisition on the recording path, once per thread per
/// session) on first use.
pub(crate) fn with_local_ring(shared: &Arc<Shared>, f: impl FnOnce(&Ring)) {
    LOCAL_RINGS.with(|cell| {
        let mut rings = cell.borrow_mut();
        if let Some((_, _, ring)) = rings.iter().find(|(id, _, _)| *id == shared.id) {
            f(ring);
            return;
        }
        rings.retain(|(_, session, _)| session.strong_count() > 0);
        let tid = shared.next_tid.fetch_add(1, Ordering::Relaxed);
        let thread_name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        let ring = Arc::new(Ring::new(tid, thread_name, shared.ring_capacity));
        shared.rings.lock().unwrap().push(Arc::clone(&ring));
        rings.push((shared.id, Arc::downgrade(shared), Arc::clone(&ring)));
        f(&ring);
    });
}
