//! # gmc-trace: runtime-gated tracing for the virtual GPU and solver
//!
//! An always-compiled, zero-dependency profiling layer. The solver stack is
//! instrumented unconditionally; whether events are recorded is a runtime
//! decision made by a single relaxed atomic load, so the disabled cost is
//! roughly one branch per instrumented site.
//!
//! * [`TraceSession`] owns a trace: it hands out cheap-to-clone [`Tracer`]
//!   handles, and [`TraceSession::finish`] collects every per-thread event
//!   ring into a [`Timeline`].
//! * [`Tracer`] records spans ([`Tracer::span`], paired begin/end with a
//!   RAII [`SpanGuard`]), instant events and named counter samples into a
//!   per-thread bounded event ring ([overflow drops events and counts them,
//!   it never blocks).
//! * [`Timeline`] pairs the events and exports three views: Chrome
//!   `chrome://tracing` / Perfetto JSON ([`Timeline::to_chrome_json`]), a
//!   Markdown per-kernel latency table with p50/p99 from log-bucketed
//!   histograms ([`Timeline::latency_table_markdown`]), and flamegraph-style
//!   folded stacks ([`Timeline::folded_stacks`]).
//! * [`mod@env`] is the repo's shared fail-loud environment-variable parser
//!   (`GMC_TRACE`, `GMC_SEQ_GRID`, `GMC_LOCAL_BITS`, bench knobs, ...).
//!
//! ```
//! let session = gmc_trace::TraceSession::new();
//! let tracer = session.tracer();
//! {
//!     let mut span = tracer.span_with("kernel", &[("n", 128)]);
//!     span.arg("emitted", 7);
//! }
//! tracer.counter("live_bytes", 4096);
//! let timeline = session.finish();
//! assert_eq!(timeline.spans.len(), 1);
//! assert_eq!(timeline.spans[0].name, "kernel");
//! ```

#![warn(missing_docs)]

pub mod env;
mod histogram;
mod ring;
mod timeline;

pub use histogram::LogHistogram;
pub use timeline::{render_latency_table, CounterSample, InstantEvent, Span, Timeline};

use ring::{RawEvent, Ring, KIND_BEGIN, KIND_COUNTER, KIND_END, KIND_INSTANT, MAX_ARGS};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread event-ring capacity (events), overridable with the
/// `GMC_TRACE_BUFFER` environment variable.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// State shared between a [`TraceSession`] and all its [`Tracer`] handles.
pub(crate) struct Shared {
    /// Distinguishes concurrent sessions in thread-local ring lookup.
    pub(crate) id: u64,
    /// The one-flag runtime gate; `Relaxed` loads on the hot path.
    pub(crate) enabled: AtomicBool,
    /// All timestamps are nanoseconds since this instant.
    pub(crate) epoch: std::time::Instant,
    /// Capacity of each per-thread ring, fixed at session creation.
    pub(crate) ring_capacity: usize,
    /// Dense virtual thread ids, assigned at first event per thread.
    pub(crate) next_tid: AtomicU64,
    /// Registry of every per-thread ring; locked only when a thread records
    /// its first event of the session, and once at collection.
    pub(crate) rings: Mutex<Vec<Arc<Ring>>>,
}

impl Shared {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

fn fill_args(args: &[(&'static str, i64)]) -> ([(&'static str, i64); MAX_ARGS], u8) {
    let mut out = [("", 0i64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    out[..n].copy_from_slice(&args[..n]);
    (out, n as u8)
}

/// A cheap-to-clone recording handle. A disabled tracer (the
/// [`Tracer::disabled`] default) records nothing and costs one branch per
/// call; an enabled one appends to a lock-free per-thread event ring.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that records nothing. This is also the `Default`.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// Whether events are currently being recorded. One relaxed atomic
    /// load; instrument hot paths behind this check.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(&self.shared, Some(s) if s.enabled.load(Ordering::Relaxed))
    }

    #[inline]
    fn active(&self) -> Option<&Arc<Shared>> {
        match &self.shared {
            Some(s) if s.enabled.load(Ordering::Relaxed) => Some(s),
            _ => None,
        }
    }

    /// Opens a span; it closes (records its end event) when the returned
    /// guard drops.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Opens a span carrying integer arguments on its begin event. Only the
    /// first [`MAX_ARGS`](Timeline) (6) arguments are kept.
    pub fn span_with(&self, name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
        let Some(shared) = self.active() else {
            return SpanGuard {
                shared: None,
                name,
                args: [("", 0); MAX_ARGS],
                nargs: 0,
            };
        };
        let (args, nargs) = fill_args(args);
        let ev = RawEvent {
            kind: KIND_BEGIN,
            nargs,
            name,
            ts_ns: shared.now_ns(),
            value: 0,
            args,
        };
        ring::with_local_ring(shared, |r| r.push(ev));
        SpanGuard {
            shared: Some(Arc::clone(shared)),
            name,
            args: [("", 0); MAX_ARGS],
            nargs: 0,
        }
    }

    /// Records a point-in-time event.
    pub fn instant(&self, name: &'static str, args: &[(&'static str, i64)]) {
        let Some(shared) = self.active() else { return };
        let (args, nargs) = fill_args(args);
        let ev = RawEvent {
            kind: KIND_INSTANT,
            nargs,
            name,
            ts_ns: shared.now_ns(),
            value: 0,
            args,
        };
        ring::with_local_ring(shared, |r| r.push(ev));
    }

    /// Records a sample on a named counter track (e.g. live device bytes).
    pub fn counter(&self, name: &'static str, value: i64) {
        let Some(shared) = self.active() else { return };
        let ev = RawEvent {
            kind: KIND_COUNTER,
            nargs: 0,
            name,
            ts_ns: shared.now_ns(),
            value,
            args: [("", 0); MAX_ARGS],
        };
        ring::with_local_ring(shared, |r| r.push(ev));
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            Some(s) => write!(
                f,
                "Tracer(session {}, {})",
                s.id,
                if s.enabled.load(Ordering::Relaxed) {
                    "enabled"
                } else {
                    "finished"
                }
            ),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

/// Two tracers are equal when they feed the same session (or are both
/// disabled). This is what configuration equality needs.
impl PartialEq for Tracer {
    fn eq(&self, other: &Self) -> bool {
        match (&self.shared, &other.shared) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }
}

impl Eq for Tracer {}

/// RAII guard for an open span: records the end event on drop. Arguments
/// added with [`SpanGuard::arg`] after the span opened (e.g. results known
/// only at the end) are attached to the matched span at collection time.
#[must_use = "a span closes when its guard drops"]
pub struct SpanGuard {
    shared: Option<Arc<Shared>>,
    name: &'static str,
    args: [(&'static str, i64); MAX_ARGS],
    nargs: u8,
}

impl SpanGuard {
    /// Attaches an end-time integer argument (result sizes, counters
    /// accumulated while the span ran). Silently keeps only the first 6.
    pub fn arg(&mut self, name: &'static str, value: i64) {
        if self.shared.is_none() {
            return;
        }
        if (self.nargs as usize) < MAX_ARGS {
            self.args[self.nargs as usize] = (name, value);
            self.nargs += 1;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(shared) = &self.shared else { return };
        let ev = RawEvent {
            kind: KIND_END,
            nargs: self.nargs,
            name: self.name,
            ts_ns: shared.now_ns(),
            value: 0,
            args: self.args,
        };
        ring::with_local_ring(shared, |r| r.push(ev));
    }
}

static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// Owns one trace: create, pass [`TraceSession::tracer`] handles to the
/// code under observation, then [`TraceSession::finish`] to collect the
/// merged [`Timeline`].
pub struct TraceSession {
    shared: Arc<Shared>,
}

impl TraceSession {
    /// A session with the default ring capacity ([`DEFAULT_RING_CAPACITY`]
    /// events per thread, or `GMC_TRACE_BUFFER` if set).
    pub fn new() -> Self {
        let capacity = env::parse("GMC_TRACE_BUFFER").unwrap_or(DEFAULT_RING_CAPACITY);
        Self::with_capacity(capacity)
    }

    /// A session whose per-thread rings hold `capacity` events each.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(true),
                epoch: std::time::Instant::now(),
                ring_capacity: capacity.max(16),
                next_tid: AtomicU64::new(1),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A recording handle feeding this session.
    pub fn tracer(&self) -> Tracer {
        Tracer {
            shared: Some(Arc::clone(&self.shared)),
        }
    }

    /// Stops recording and merges every per-thread ring into a
    /// [`Timeline`]. Threads that still hold a tracer may race a final
    /// event in, but events are only read below each ring's published
    /// length, so collection is safe at any time; call this after joining
    /// worker threads for a complete trace.
    pub fn finish(self) -> Timeline {
        self.shared.enabled.store(false, Ordering::SeqCst);
        let rings = self.shared.rings.lock().unwrap();
        Timeline::build(&rings)
    }
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`TraceSession`] bound to an output path by the `GMC_TRACE=<path>`
/// environment variable: the conventional way binaries and examples opt
/// into tracing.
pub struct EnvTrace {
    session: TraceSession,
    path: std::path::PathBuf,
}

impl EnvTrace {
    /// Starts a session if `GMC_TRACE` is set. Panics (fail-loud, see
    /// [`mod@env`]) if it is set but empty.
    pub fn from_env() -> Option<Self> {
        let path = env::path("GMC_TRACE")?;
        Some(Self {
            session: TraceSession::new(),
            path,
        })
    }

    /// A recording handle feeding this session.
    pub fn tracer(&self) -> Tracer {
        self.session.tracer()
    }

    /// Collects the timeline and writes Chrome-trace JSON to the
    /// `GMC_TRACE` path. Returns the path and the timeline for further
    /// rendering.
    pub fn finish(self) -> std::io::Result<(std::path::PathBuf, Timeline)> {
        let timeline = self.session.finish();
        std::fs::write(&self.path, timeline.to_chrome_json())?;
        Ok((self.path, timeline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let session = TraceSession::new();
        let tracer = Tracer::disabled();
        {
            let mut span = tracer.span_with("x", &[("a", 1)]);
            span.arg("b", 2);
        }
        tracer.instant("i", &[]);
        tracer.counter("c", 3);
        let timeline = session.finish();
        assert!(timeline.spans.is_empty());
        assert!(timeline.counters.is_empty());
        assert!(timeline.instants.is_empty());
        assert_eq!(timeline.dropped, 0);
    }

    #[test]
    fn finished_session_stops_recording() {
        let session = TraceSession::new();
        let tracer = session.tracer();
        drop(tracer.span("before"));
        let timeline = session.finish();
        assert_eq!(timeline.spans.len(), 1);
        assert!(!tracer.is_enabled());
        // Recording after finish is a no-op, not an error.
        drop(tracer.span("after"));
        tracer.counter("c", 1);
    }

    #[test]
    fn spans_nest_and_carry_args() {
        let session = TraceSession::new();
        let tracer = session.tracer();
        {
            let _outer = tracer.span_with("outer", &[("n", 10)]);
            {
                let mut inner = tracer.span("inner");
                inner.arg("emitted", 4);
            }
        }
        let timeline = session.finish();
        assert_eq!(timeline.spans.len(), 2);
        let outer = timeline.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner_idx = timeline
            .spans
            .iter()
            .position(|s| s.name == "inner")
            .unwrap();
        let inner = &timeline.spans[inner_idx];
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(
            timeline.spans[inner.parent.unwrap()].name,
            "outer",
            "inner span must point at its enclosing span"
        );
        assert!(outer.args.contains(&("n", 10)));
        assert!(inner.args.contains(&("emitted", 4)));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        let _ = inner_idx;
    }

    #[test]
    fn ring_overflow_counts_drops_instead_of_blocking() {
        let session = TraceSession::with_capacity(16);
        let tracer = session.tracer();
        for _ in 0..64 {
            tracer.counter("c", 1);
        }
        let timeline = session.finish();
        assert_eq!(timeline.counters.len(), 16);
        assert_eq!(timeline.dropped, 48);
    }

    #[test]
    fn events_from_many_threads_land_on_distinct_tids() {
        let session = TraceSession::new();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let tracer = session.tracer();
                scope.spawn(move || {
                    let mut span = tracer.span("worker");
                    span.arg("i", i);
                });
            }
        });
        let timeline = session.finish();
        assert_eq!(timeline.spans.len(), 4);
        let mut tids: Vec<u64> = timeline.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "each thread gets its own ring/tid");
        assert_eq!(timeline.threads.len(), 4);
    }

    #[test]
    fn tracer_equality_follows_the_session() {
        let a = TraceSession::new();
        let b = TraceSession::new();
        assert_eq!(a.tracer(), a.tracer());
        assert_ne!(a.tracer(), b.tracer());
        assert_eq!(Tracer::disabled(), Tracer::default());
        assert_ne!(a.tracer(), Tracer::disabled());
    }
}
