//! Disabled tracing must be free: no events, no allocations. Runs as its
//! own integration-test binary so the counting global allocator sees only
//! this test.

use gmc_trace::{TraceSession, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_tracing_records_no_events_and_allocates_nothing() {
    // A live session alongside, so "disabled" is tested against the same
    // process state an instrumented-but-untraced run has.
    let session = TraceSession::new();
    let disabled = Tracer::disabled();
    let finished_handle = {
        let s = TraceSession::new();
        let t = s.tracer();
        drop(s.finish());
        t // a tracer whose session has finished: must also be free
    };

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000i64 {
        let mut span = disabled.span_with("kernel", &[("n", i)]);
        span.arg("emitted", i);
        drop(span);
        disabled.instant("event", &[("i", i)]);
        disabled.counter("bytes", i);
        drop(finished_handle.span("kernel"));
        finished_handle.counter("bytes", i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate on the recording path"
    );

    let timeline = session.finish();
    assert!(
        timeline.spans.is_empty(),
        "no spans leak from disabled tracers"
    );
    assert!(timeline.counters.is_empty());
    assert!(timeline.instants.is_empty());
    assert_eq!(timeline.dropped, 0);
}
