//! Segmented operations (CUB `DeviceSegmentedReduce` analogue) plus segment
//! bookkeeping helpers.
//!
//! Segments are described CSR-style by an `offsets` array of length
//! `num_segments + 1`: segment `s` covers `offsets[s]..offsets[s + 1]` of the
//! value array. The paper's multi-run heuristic (Algorithm 1) is built from
//! a segmented arg-max, a flagged select, and an offset rebuild per
//! iteration.

use crate::executor::Executor;
use crate::scan::exclusive_scan;
use crate::shared::SharedSlice;

/// For each segment, the index (into `values`) of the element with the
/// maximum key, or `None` for empty segments. Ties resolve to the earliest
/// element, which keeps results deterministic.
pub fn segmented_argmax_by_key<K>(
    exec: &Executor,
    values_len: usize,
    offsets: &[usize],
    key: impl Fn(usize) -> K + Sync,
) -> Vec<Option<usize>>
where
    K: PartialOrd + Copy + Send + Sync,
{
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    let num_segments = offsets.len() - 1;
    debug_assert_eq!(offsets[num_segments], values_len);
    let mut out = vec![None; num_segments];
    {
        let out_shared = SharedSlice::new(&mut out);
        exec.for_each_indexed_named("segmented_argmax", num_segments, |s| {
            let (start, end) = (offsets[s], offsets[s + 1]);
            let mut best: Option<(K, usize)> = None;
            for i in start..end {
                let k = key(i);
                let improves = match best {
                    Some((bk, _)) => k > bk,
                    None => true,
                };
                if improves {
                    best = Some((k, i));
                }
            }
            // SAFETY: one write per segment index.
            unsafe { out_shared.write(s, best.map(|(_, i)| i)) };
        });
    }
    out
}

/// Per-segment sums of `usize` values.
pub fn segmented_sum(exec: &Executor, values: &[usize], offsets: &[usize]) -> Vec<usize> {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    let num_segments = offsets.len() - 1;
    let mut out = vec![0usize; num_segments];
    {
        let out_shared = SharedSlice::new(&mut out);
        exec.for_each_indexed_named("segmented_sum", num_segments, |s| {
            let sum: usize = values[offsets[s]..offsets[s + 1]].iter().sum();
            // SAFETY: one write per segment index.
            unsafe { out_shared.write(s, sum) };
        });
    }
    out
}

/// Lengths of each segment.
pub fn segment_lengths(exec: &Executor, offsets: &[usize]) -> Vec<usize> {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    let num_segments = offsets.len() - 1;
    exec.map_indexed_named("segment_lengths", num_segments, |s| {
        offsets[s + 1] - offsets[s]
    })
}

/// Drops zero-length segments, returning the rebuilt offsets array and, for
/// each surviving segment, its index in the original segmentation.
///
/// This is the "remove empty segments with one more select, update indices
/// via a scan" step of the paper's Algorithm 1.
pub fn remove_empty_segments(exec: &Executor, offsets: &[usize]) -> (Vec<usize>, Vec<usize>) {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    let lengths = segment_lengths(exec, offsets);
    let survivors = crate::select::select_indices(exec, &lengths, |_, len| len > 0);
    let surviving_lengths: Vec<usize> =
        exec.map_indexed_named("surviving_segment_lengths", survivors.len(), |i| {
            lengths[survivors[i]]
        });
    let (mut new_offsets, total) = exclusive_scan(exec, &surviving_lengths);
    new_offsets.push(total);
    (new_offsets, survivors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        let exec = Executor::new(4);
        let values = [3u32, 9, 2, 5, 5, 1];
        let offsets = [0usize, 3, 3, 6];
        let result = segmented_argmax_by_key(&exec, values.len(), &offsets, |i| values[i]);
        assert_eq!(result, vec![Some(1), None, Some(3)]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let exec = Executor::new(4);
        let values = [7u32, 7, 7];
        let offsets = [0usize, 3];
        let result = segmented_argmax_by_key(&exec, values.len(), &offsets, |i| values[i]);
        assert_eq!(result, vec![Some(0)]);
    }

    #[test]
    fn argmax_many_segments() {
        let exec = Executor::new(4);
        let n = 120_000;
        let values: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) % 1000)
            .collect();
        let offsets: Vec<usize> = (0..=n / 10).map(|s| s * 10).collect();
        let result = segmented_argmax_by_key(&exec, n, &offsets, |i| values[i]);
        for (s, r) in result.iter().enumerate() {
            let seg = &values[s * 10..(s + 1) * 10];
            let best = seg.iter().copied().max().unwrap();
            assert_eq!(values[r.unwrap()], best);
        }
    }

    #[test]
    fn sums_per_segment() {
        let exec = Executor::new(2);
        let values = [1usize, 2, 3, 4, 5];
        let offsets = [0usize, 2, 2, 5];
        assert_eq!(segmented_sum(&exec, &values, &offsets), vec![3, 0, 12]);
    }

    #[test]
    fn lengths() {
        let exec = Executor::new(2);
        assert_eq!(segment_lengths(&exec, &[0, 4, 4, 9]), vec![4, 0, 5]);
    }

    #[test]
    fn removing_empty_segments_compacts() {
        let exec = Executor::new(4);
        let offsets = [0usize, 3, 3, 7, 7, 7, 10];
        let (new_offsets, survivors) = remove_empty_segments(&exec, &offsets);
        assert_eq!(new_offsets, vec![0, 3, 7, 10]);
        assert_eq!(survivors, vec![0, 2, 5]);
    }

    #[test]
    fn removing_from_all_empty_leaves_sentinel() {
        let exec = Executor::new(4);
        let offsets = [0usize, 0, 0];
        let (new_offsets, survivors) = remove_empty_segments(&exec, &offsets);
        assert_eq!(new_offsets, vec![0]);
        assert!(survivors.is_empty());
    }
}
