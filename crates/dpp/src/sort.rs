//! Parallel LSD radix sort (CUB `DeviceRadixSort` analogue).
//!
//! Keys are `u32`, processed in four 8-bit digit passes. Each pass builds
//! per-chunk digit histograms in parallel, computes stable scatter offsets
//! from a sequential scan over the (chunks × 256) histogram matrix, and
//! scatters in parallel. Passes whose digit is constant across all keys are
//! skipped — degree-like keys rarely need more than two passes.
//!
//! The sort is stable, which the clique-list setup relies on when ordering
//! candidates by (degree, index).

use crate::executor::Executor;
use crate::shared::SharedSlice;

const RADIX_BITS: u32 = 8;
const BINS: usize = 1 << RADIX_BITS;

/// Sorts `keys` ascending, returning a new vector.
pub fn sort_u32(exec: &Executor, keys: &[u32]) -> Vec<u32> {
    let (sorted, _) = radix_sort(exec, keys, None);
    sorted
}

/// Sorts `keys` descending, returning a new vector.
pub fn sort_u32_desc(exec: &Executor, keys: &[u32]) -> Vec<u32> {
    // Descending stable sort via bitwise complement of the key.
    let flipped: Vec<u32> = exec.map_indexed_named("sort_flip_keys", keys.len(), |i| !keys[i]);
    let (sorted, _) = radix_sort(exec, &flipped, None);
    sorted.into_iter().map(|k| !k).collect()
}

/// Stable key-value sort: returns `(sorted_keys, permuted_values)`.
pub fn sort_pairs_u32(exec: &Executor, keys: &[u32], values: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let (sorted, payload) = radix_sort(exec, keys, Some(values));
    (sorted, payload.expect("payload requested"))
}

fn radix_sort(
    exec: &Executor,
    keys: &[u32],
    values: Option<&[u32]>,
) -> (Vec<u32>, Option<Vec<u32>>) {
    let n = keys.len();
    let mut src_keys: Vec<u32> = keys.to_vec();
    let mut dst_keys: Vec<u32> = vec![0; n];
    let mut src_vals: Vec<u32> = values.map(|v| v.to_vec()).unwrap_or_default();
    let mut dst_vals: Vec<u32> = vec![0; src_vals.len()];
    if n <= 1 {
        return (src_keys, values.map(|_| src_vals));
    }
    let has_values = values.is_some();

    for pass in 0..(32 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        let chunks = exec.num_chunks(n);

        // Per-chunk digit histograms.
        let mut hist = vec![0usize; chunks * BINS];
        {
            let hist_shared = SharedSlice::new(&mut hist);
            let src = &src_keys;
            exec.for_each_chunk_named("sort_digit_histogram", n, |chunk_id, range| {
                let mut local = [0usize; BINS];
                for &k in &src[range] {
                    local[((k >> shift) & (BINS as u32 - 1)) as usize] += 1;
                }
                for (d, &c) in local.iter().enumerate() {
                    // SAFETY: each chunk writes only its own histogram row.
                    unsafe { hist_shared.write(chunk_id * BINS + d, c) };
                }
            });
        }

        // Skip passes with a single occupied bin (constant digit).
        let occupied = (0..BINS)
            .filter(|&d| (0..chunks).any(|c| hist[c * BINS + d] > 0))
            .count();
        if occupied <= 1 {
            continue;
        }

        // Stable scatter offsets: digit-major, then chunk order.
        let mut offsets = vec![0usize; chunks * BINS];
        let mut running = 0usize;
        for d in 0..BINS {
            for c in 0..chunks {
                offsets[c * BINS + d] = running;
                running += hist[c * BINS + d];
            }
        }

        // Parallel scatter.
        {
            let dst_keys_shared = SharedSlice::new(&mut dst_keys);
            let dst_vals_shared = SharedSlice::new(&mut dst_vals);
            let src = &src_keys;
            let src_v = &src_vals;
            exec.for_each_chunk_named("sort_scatter", n, |chunk_id, range| {
                let mut cursors: Vec<usize> =
                    offsets[chunk_id * BINS..(chunk_id + 1) * BINS].to_vec();
                for i in range {
                    let k = src[i];
                    let d = ((k >> shift) & (BINS as u32 - 1)) as usize;
                    let pos = cursors[d];
                    cursors[d] += 1;
                    // SAFETY: offsets partition the output across
                    // (chunk, digit) pairs, so positions are disjoint.
                    unsafe { dst_keys_shared.write(pos, k) };
                    if has_values {
                        unsafe { dst_vals_shared.write(pos, src_v[i]) };
                    }
                }
            });
        }
        std::mem::swap(&mut src_keys, &mut dst_keys);
        if has_values {
            std::mem::swap(&mut src_vals, &mut dst_vals);
        }
    }
    (src_keys, values.map(|_| src_vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u32) -> Vec<u32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                state
            })
            .collect()
    }

    #[test]
    fn sorts_small() {
        let exec = Executor::new(4);
        assert_eq!(sort_u32(&exec, &[5, 3, 9, 1]), vec![1, 3, 5, 9]);
        assert_eq!(sort_u32(&exec, &[]), Vec::<u32>::new());
        assert_eq!(sort_u32(&exec, &[42]), vec![42]);
    }

    #[test]
    fn sorts_large_random() {
        let exec = Executor::new(5);
        let data = pseudo_random(250_000, 7);
        let mut expected = data.clone();
        expected.sort_unstable();
        assert_eq!(sort_u32(&exec, &data), expected);
    }

    #[test]
    fn descending_sort() {
        let exec = Executor::new(4);
        let data = pseudo_random(100_000, 11);
        let mut expected = data.clone();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sort_u32_desc(&exec, &data), expected);
    }

    #[test]
    fn pair_sort_is_stable() {
        let exec = Executor::new(4);
        // Many duplicate keys: stability means payload order within a key
        // group matches input order.
        let keys: Vec<u32> = (0..100_000u32).map(|i| i % 16).collect();
        let values: Vec<u32> = (0..100_000u32).collect();
        let (sorted_keys, sorted_values) = sort_pairs_u32(&exec, &keys, &values);
        assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        for w in sorted_values.windows(2) {
            let (a, b) = (w[0], w[1]);
            if keys[a as usize] == keys[b as usize] {
                assert!(a < b, "stability violated: {a} after {b}");
            }
        }
        // Key-value association preserved.
        for (k, v) in sorted_keys.iter().zip(&sorted_values) {
            assert_eq!(*k, keys[*v as usize]);
        }
    }

    #[test]
    fn already_sorted_and_constant_inputs() {
        let exec = Executor::new(4);
        let sorted: Vec<u32> = (0..50_000).collect();
        assert_eq!(sort_u32(&exec, &sorted), sorted);
        let constant = vec![7u32; 50_000];
        assert_eq!(sort_u32(&exec, &constant), constant);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let data = pseudo_random(80_000, 3);
        let values: Vec<u32> = (0..80_000).collect();
        let baseline = sort_pairs_u32(&Executor::new(1), &data, &values);
        for workers in [2, 6] {
            assert_eq!(
                sort_pairs_u32(&Executor::new(workers), &data, &values),
                baseline
            );
        }
    }

    #[test]
    fn full_range_keys() {
        let exec = Executor::new(4);
        let data = [u32::MAX, 0, u32::MAX / 2, 1, u32::MAX - 1];
        assert_eq!(
            sort_u32(&exec, &data),
            vec![0, 1, u32::MAX / 2, u32::MAX - 1, u32::MAX]
        );
    }
}
