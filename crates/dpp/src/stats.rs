use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing how much virtual-GPU work an [`Executor`] has
/// performed. The experiment harness reads these to report kernel-launch
/// counts and total virtual-thread volume alongside wall-clock numbers.
///
/// [`Executor`]: crate::Executor
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub launches: AtomicU64,
    pub virtual_threads: AtomicU64,
    pub fused_launches: AtomicU64,
}

impl StatsCells {
    pub(crate) fn record_launch(&self, virtual_threads: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.virtual_threads
            .fetch_add(virtual_threads as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_fused_launch(&self, virtual_threads: usize) {
        self.record_launch(virtual_threads);
        self.fused_launches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> LaunchStats {
        LaunchStats {
            launches: self.launches.load(Ordering::Relaxed),
            virtual_threads: self.virtual_threads.load(Ordering::Relaxed),
            fused_launches: self.fused_launches.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.virtual_threads.store(0, Ordering::Relaxed);
        self.fused_launches.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of an executor's launch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaunchStats {
    /// Number of bulk-synchronous launches (one per "kernel").
    pub launches: u64,
    /// Total virtual threads across all launches (one per element).
    pub virtual_threads: u64,
    /// Launches issued through [`Executor::for_each_indexed_fused`] — kernels
    /// that fold work of several logical pipeline stages into one launch
    /// (also counted in `launches`).
    ///
    /// [`Executor::for_each_indexed_fused`]: crate::Executor::for_each_indexed_fused
    pub fused_launches: u64,
}

impl LaunchStats {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: LaunchStats) -> LaunchStats {
        LaunchStats {
            launches: self.launches.saturating_sub(earlier.launches),
            virtual_threads: self.virtual_threads.saturating_sub(earlier.virtual_threads),
            fused_launches: self.fused_launches.saturating_sub(earlier.fused_launches),
        }
    }
}
