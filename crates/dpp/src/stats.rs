use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing how much virtual-GPU work an [`Executor`] has
/// performed. The experiment harness reads these to report kernel-launch
/// counts and total virtual-thread volume alongside wall-clock numbers.
///
/// Aggregates live in lock-free atomics; the per-kernel breakdown sits
/// behind a mutex, which is acceptable because a launch is micro-seconds of
/// work and the map is touched once per launch.
///
/// [`Executor`]: crate::Executor
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub launches: AtomicU64,
    pub virtual_threads: AtomicU64,
    pub fused_launches: AtomicU64,
    per_kernel: Mutex<BTreeMap<&'static str, KernelStats>>,
}

impl StatsCells {
    pub(crate) fn record_launch(&self, kernel: &'static str, virtual_threads: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.virtual_threads
            .fetch_add(virtual_threads as u64, Ordering::Relaxed);
        let mut map = self.per_kernel.lock().unwrap();
        let cell = map.entry(kernel).or_default();
        cell.launches += 1;
        cell.virtual_threads += virtual_threads as u64;
    }

    pub(crate) fn record_fused_launch(&self, kernel: &'static str, virtual_threads: usize) {
        self.record_launch(kernel, virtual_threads);
        self.fused_launches.fetch_add(1, Ordering::Relaxed);
        self.per_kernel
            .lock()
            .unwrap()
            .entry(kernel)
            .or_default()
            .fused_launches += 1;
    }

    pub(crate) fn snapshot(&self) -> LaunchStats {
        // Lock the map first so the per-kernel rows never sum to more than
        // the aggregate counters read after it.
        let per_kernel: Vec<(&'static str, KernelStats)> = self
            .per_kernel
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| (*name, *cell))
            .collect();
        LaunchStats {
            launches: self.launches.load(Ordering::Relaxed),
            virtual_threads: self.virtual_threads.load(Ordering::Relaxed),
            fused_launches: self.fused_launches.load(Ordering::Relaxed),
            per_kernel,
        }
    }

    pub(crate) fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.virtual_threads.store(0, Ordering::Relaxed);
        self.fused_launches.store(0, Ordering::Relaxed);
        self.per_kernel.lock().unwrap().clear();
    }
}

/// Lock-free accumulation cells behind [`ScheduleStats`]. Written once per
/// pooled launch by the launching thread (after the closing barrier), so
/// relaxed ordering suffices.
#[derive(Debug, Default)]
pub(crate) struct ScheduleCells {
    pub pool_launches: AtomicU64,
    pub dynamic_launches: AtomicU64,
    pub weighted_launches: AtomicU64,
    pub morsels: AtomicU64,
    pub max_worker_morsels: AtomicU64,
    pub makespan_ns: AtomicU64,
    pub mean_chunk_ns: AtomicU64,
}

impl ScheduleCells {
    /// Records one pooled launch's balance measurement.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &self,
        dynamic: bool,
        weighted: bool,
        morsels: u64,
        max_worker_morsels: u64,
        makespan_ns: u64,
        mean_chunk_ns: u64,
    ) {
        self.pool_launches.fetch_add(1, Ordering::Relaxed);
        if dynamic {
            self.dynamic_launches.fetch_add(1, Ordering::Relaxed);
        }
        if weighted {
            self.weighted_launches.fetch_add(1, Ordering::Relaxed);
        }
        self.morsels.fetch_add(morsels, Ordering::Relaxed);
        self.max_worker_morsels
            .fetch_add(max_worker_morsels, Ordering::Relaxed);
        self.makespan_ns.fetch_add(makespan_ns, Ordering::Relaxed);
        self.mean_chunk_ns
            .fetch_add(mean_chunk_ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ScheduleStats {
        ScheduleStats {
            pool_launches: self.pool_launches.load(Ordering::Relaxed),
            dynamic_launches: self.dynamic_launches.load(Ordering::Relaxed),
            weighted_launches: self.weighted_launches.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            max_worker_morsels: self.max_worker_morsels.load(Ordering::Relaxed),
            makespan_ns: self.makespan_ns.load(Ordering::Relaxed),
            mean_chunk_ns: self.mean_chunk_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.pool_launches.store(0, Ordering::Relaxed);
        self.dynamic_launches.store(0, Ordering::Relaxed);
        self.weighted_launches.store(0, Ordering::Relaxed);
        self.morsels.store(0, Ordering::Relaxed);
        self.max_worker_morsels.store(0, Ordering::Relaxed);
        self.makespan_ns.store(0, Ordering::Relaxed);
        self.mean_chunk_ns.store(0, Ordering::Relaxed);
    }
}

/// Scheduling and load-balance counters for an [`Executor`], snapshot via
/// [`Executor::schedule_stats`].
///
/// Kept separate from [`LaunchStats`] on purpose: launch counts are a
/// *structural* property of the algorithm (identical across worker counts
/// and machines, and asserted so by the determinism suite), whereas these
/// counters measure *how* the pool executed — which launches took the pool,
/// how morsels spread over workers, and wall-clock busy times. The
/// structural subset here (`dynamic_launches`, `weighted_launches`,
/// `morsels`) is still deterministic for a fixed worker count, but the
/// timing fields and per-worker claim maxima are not.
///
/// [`Executor`]: crate::Executor
/// [`Executor::schedule_stats`]: crate::Executor::schedule_stats
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleStats {
    /// Launches dispatched to the worker pool (grids past the sequential
    /// limit on a multi-worker executor); the rest ran inline.
    pub pool_launches: u64,
    /// Pooled launches dispatched by dynamic morsel claiming (a
    /// [`Schedule`](crate::Schedule) other than `Static` applied). Also
    /// counted in `pool_launches`.
    pub dynamic_launches: u64,
    /// Dynamic launches whose morsel boundaries were cut from caller-supplied
    /// per-entry cost hints (`for_each_weighted*` / `for_each_segmented_cost*`).
    /// Also counted in `dynamic_launches`.
    pub weighted_launches: u64,
    /// Work units claimed across pooled launches: morsels for dynamic
    /// launches, non-empty static chunks otherwise. Decompositions are
    /// worker-count independent, so for dynamic launches this is too.
    pub morsels: u64,
    /// Sum over pooled launches of the largest morsel count any single
    /// worker claimed — the "morsels claimed per worker" skew signal
    /// (equals `pool_launches` when every worker claimed exactly once).
    pub max_worker_morsels: u64,
    /// Sum over pooled launches of the slowest engaged worker's busy time.
    pub makespan_ns: u64,
    /// Sum over pooled launches of the *mean* engaged-worker busy time. The
    /// ratio [`ScheduleStats::imbalance`] of makespan to this is the
    /// classic load-imbalance factor (1.0 = perfectly level).
    pub mean_chunk_ns: u64,
}

impl ScheduleStats {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &ScheduleStats) -> ScheduleStats {
        ScheduleStats {
            pool_launches: self.pool_launches.saturating_sub(earlier.pool_launches),
            dynamic_launches: self
                .dynamic_launches
                .saturating_sub(earlier.dynamic_launches),
            weighted_launches: self
                .weighted_launches
                .saturating_sub(earlier.weighted_launches),
            morsels: self.morsels.saturating_sub(earlier.morsels),
            max_worker_morsels: self
                .max_worker_morsels
                .saturating_sub(earlier.max_worker_morsels),
            makespan_ns: self.makespan_ns.saturating_sub(earlier.makespan_ns),
            mean_chunk_ns: self.mean_chunk_ns.saturating_sub(earlier.mean_chunk_ns),
        }
    }

    /// Aggregate makespan-vs-mean-chunk load-imbalance factor across the
    /// recorded pooled launches: `1.0` means every worker finished
    /// together; `2.0` means the critical worker ran twice as long as the
    /// average. `0.0` when nothing was pooled.
    pub fn imbalance(&self) -> f64 {
        if self.mean_chunk_ns == 0 {
            0.0
        } else {
            self.makespan_ns as f64 / self.mean_chunk_ns as f64
        }
    }
}

/// Launch counters for one named kernel (see [`LaunchStats::per_kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Launches of this kernel.
    pub launches: u64,
    /// Total virtual threads across those launches.
    pub virtual_threads: u64,
    /// How many of those launches were fused (also counted in `launches`).
    pub fused_launches: u64,
}

impl KernelStats {
    fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            launches: self.launches.saturating_sub(earlier.launches),
            virtual_threads: self.virtual_threads.saturating_sub(earlier.virtual_threads),
            fused_launches: self.fused_launches.saturating_sub(earlier.fused_launches),
        }
    }

    fn is_zero(&self) -> bool {
        *self == KernelStats::default()
    }
}

/// Snapshot of an executor's launch counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchStats {
    /// Number of bulk-synchronous launches (one per "kernel").
    pub launches: u64,
    /// Total virtual threads across all launches (one per element).
    pub virtual_threads: u64,
    /// Launches issued through [`Executor::for_each_indexed_fused`] — kernels
    /// that fold work of several logical pipeline stages into one launch
    /// (also counted in `launches`).
    ///
    /// [`Executor::for_each_indexed_fused`]: crate::Executor::for_each_indexed_fused
    pub fused_launches: u64,
    /// Per-kernel breakdown, sorted by kernel name. Launches issued through
    /// the un-named entry points land under the
    /// [`DEFAULT_KERNEL_NAME`](crate::DEFAULT_KERNEL_NAME) row.
    pub per_kernel: Vec<(&'static str, KernelStats)>,
}

impl LaunchStats {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    /// Kernels whose counters did not move are omitted from the breakdown.
    pub fn since(&self, earlier: &LaunchStats) -> LaunchStats {
        let earlier_of = |name: &str| {
            earlier
                .per_kernel
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .unwrap_or_default()
        };
        let per_kernel = self
            .per_kernel
            .iter()
            .map(|(name, stats)| (*name, stats.since(&earlier_of(name))))
            .filter(|(_, delta)| !delta.is_zero())
            .collect();
        LaunchStats {
            launches: self.launches.saturating_sub(earlier.launches),
            virtual_threads: self.virtual_threads.saturating_sub(earlier.virtual_threads),
            fused_launches: self.fused_launches.saturating_sub(earlier.fused_launches),
            per_kernel,
        }
    }

    /// The counters for one kernel name (all-zero if it never launched).
    pub fn kernel(&self, name: &str) -> KernelStats {
        self.per_kernel
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kernel_rows_sum_to_the_aggregates() {
        let cells = StatsCells::default();
        cells.record_launch("scan", 100);
        cells.record_launch("scan", 50);
        cells.record_fused_launch("expand", 200);
        let snap = cells.snapshot();
        assert_eq!(snap.launches, 3);
        assert_eq!(snap.virtual_threads, 350);
        assert_eq!(snap.fused_launches, 1);
        assert_eq!(snap.per_kernel.len(), 2);
        assert_eq!(snap.kernel("scan").launches, 2);
        assert_eq!(snap.kernel("scan").virtual_threads, 150);
        assert_eq!(snap.kernel("expand").fused_launches, 1);
        assert_eq!(snap.kernel("absent"), KernelStats::default());
        let total: u64 = snap.per_kernel.iter().map(|(_, s)| s.launches).sum();
        assert_eq!(total, snap.launches);
    }

    #[test]
    fn since_diffs_per_kernel_and_drops_idle_rows() {
        let cells = StatsCells::default();
        cells.record_launch("scan", 100);
        cells.record_launch("select", 10);
        let before = cells.snapshot();
        cells.record_launch("scan", 25);
        let delta = cells.snapshot().since(&before);
        assert_eq!(delta.launches, 1);
        assert_eq!(delta.virtual_threads, 25);
        assert_eq!(
            delta.per_kernel,
            vec![(
                "scan",
                KernelStats {
                    launches: 1,
                    virtual_threads: 25,
                    fused_launches: 0,
                }
            )]
        );
    }
}
