use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing how much virtual-GPU work an [`Executor`] has
/// performed. The experiment harness reads these to report kernel-launch
/// counts and total virtual-thread volume alongside wall-clock numbers.
///
/// Aggregates live in lock-free atomics; the per-kernel breakdown sits
/// behind a mutex, which is acceptable because a launch is micro-seconds of
/// work and the map is touched once per launch.
///
/// [`Executor`]: crate::Executor
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub launches: AtomicU64,
    pub virtual_threads: AtomicU64,
    pub fused_launches: AtomicU64,
    per_kernel: Mutex<BTreeMap<&'static str, KernelStats>>,
}

impl StatsCells {
    pub(crate) fn record_launch(&self, kernel: &'static str, virtual_threads: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.virtual_threads
            .fetch_add(virtual_threads as u64, Ordering::Relaxed);
        let mut map = self.per_kernel.lock().unwrap();
        let cell = map.entry(kernel).or_default();
        cell.launches += 1;
        cell.virtual_threads += virtual_threads as u64;
    }

    pub(crate) fn record_fused_launch(&self, kernel: &'static str, virtual_threads: usize) {
        self.record_launch(kernel, virtual_threads);
        self.fused_launches.fetch_add(1, Ordering::Relaxed);
        self.per_kernel
            .lock()
            .unwrap()
            .entry(kernel)
            .or_default()
            .fused_launches += 1;
    }

    pub(crate) fn snapshot(&self) -> LaunchStats {
        // Lock the map first so the per-kernel rows never sum to more than
        // the aggregate counters read after it.
        let per_kernel: Vec<(&'static str, KernelStats)> = self
            .per_kernel
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| (*name, *cell))
            .collect();
        LaunchStats {
            launches: self.launches.load(Ordering::Relaxed),
            virtual_threads: self.virtual_threads.load(Ordering::Relaxed),
            fused_launches: self.fused_launches.load(Ordering::Relaxed),
            per_kernel,
        }
    }

    pub(crate) fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.virtual_threads.store(0, Ordering::Relaxed);
        self.fused_launches.store(0, Ordering::Relaxed);
        self.per_kernel.lock().unwrap().clear();
    }
}

/// Launch counters for one named kernel (see [`LaunchStats::per_kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Launches of this kernel.
    pub launches: u64,
    /// Total virtual threads across those launches.
    pub virtual_threads: u64,
    /// How many of those launches were fused (also counted in `launches`).
    pub fused_launches: u64,
}

impl KernelStats {
    fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            launches: self.launches.saturating_sub(earlier.launches),
            virtual_threads: self.virtual_threads.saturating_sub(earlier.virtual_threads),
            fused_launches: self.fused_launches.saturating_sub(earlier.fused_launches),
        }
    }

    fn is_zero(&self) -> bool {
        *self == KernelStats::default()
    }
}

/// Snapshot of an executor's launch counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchStats {
    /// Number of bulk-synchronous launches (one per "kernel").
    pub launches: u64,
    /// Total virtual threads across all launches (one per element).
    pub virtual_threads: u64,
    /// Launches issued through [`Executor::for_each_indexed_fused`] — kernels
    /// that fold work of several logical pipeline stages into one launch
    /// (also counted in `launches`).
    ///
    /// [`Executor::for_each_indexed_fused`]: crate::Executor::for_each_indexed_fused
    pub fused_launches: u64,
    /// Per-kernel breakdown, sorted by kernel name. Launches issued through
    /// the un-named entry points land under the
    /// [`DEFAULT_KERNEL_NAME`](crate::DEFAULT_KERNEL_NAME) row.
    pub per_kernel: Vec<(&'static str, KernelStats)>,
}

impl LaunchStats {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    /// Kernels whose counters did not move are omitted from the breakdown.
    pub fn since(&self, earlier: &LaunchStats) -> LaunchStats {
        let earlier_of = |name: &str| {
            earlier
                .per_kernel
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .unwrap_or_default()
        };
        let per_kernel = self
            .per_kernel
            .iter()
            .map(|(name, stats)| (*name, stats.since(&earlier_of(name))))
            .filter(|(_, delta)| !delta.is_zero())
            .collect();
        LaunchStats {
            launches: self.launches.saturating_sub(earlier.launches),
            virtual_threads: self.virtual_threads.saturating_sub(earlier.virtual_threads),
            fused_launches: self.fused_launches.saturating_sub(earlier.fused_launches),
            per_kernel,
        }
    }

    /// The counters for one kernel name (all-zero if it never launched).
    pub fn kernel(&self, name: &str) -> KernelStats {
        self.per_kernel
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kernel_rows_sum_to_the_aggregates() {
        let cells = StatsCells::default();
        cells.record_launch("scan", 100);
        cells.record_launch("scan", 50);
        cells.record_fused_launch("expand", 200);
        let snap = cells.snapshot();
        assert_eq!(snap.launches, 3);
        assert_eq!(snap.virtual_threads, 350);
        assert_eq!(snap.fused_launches, 1);
        assert_eq!(snap.per_kernel.len(), 2);
        assert_eq!(snap.kernel("scan").launches, 2);
        assert_eq!(snap.kernel("scan").virtual_threads, 150);
        assert_eq!(snap.kernel("expand").fused_launches, 1);
        assert_eq!(snap.kernel("absent"), KernelStats::default());
        let total: u64 = snap.per_kernel.iter().map(|(_, s)| s.launches).sum();
        assert_eq!(total, snap.launches);
    }

    #[test]
    fn since_diffs_per_kernel_and_drops_idle_rows() {
        let cells = StatsCells::default();
        cells.record_launch("scan", 100);
        cells.record_launch("select", 10);
        let before = cells.snapshot();
        cells.record_launch("scan", 25);
        let delta = cells.snapshot().since(&before);
        assert_eq!(delta.launches, 1);
        assert_eq!(delta.virtual_threads, 25);
        assert_eq!(
            delta.per_kernel,
            vec![(
                "scan",
                KernelStats {
                    launches: 1,
                    virtual_threads: 25,
                    fused_launches: 0,
                }
            )]
        );
    }
}
