//! Parallel histogram (CUB `DeviceHistogram` analogue).

use crate::executor::Executor;
use crate::shared::SharedSlice;

/// Counts occurrences of each value in `data` into `num_bins` bins; values
/// `>= num_bins` are ignored. Used for degree-distribution statistics in the
/// corpus and experiment reports.
pub fn histogram_u32(exec: &Executor, data: &[u32], num_bins: usize) -> Vec<u64> {
    let n = data.len();
    let chunks = exec.num_chunks(n);
    let mut partial = vec![0u64; chunks * num_bins];
    if num_bins == 0 {
        return Vec::new();
    }
    {
        let partial_shared = SharedSlice::new(&mut partial);
        exec.for_each_chunk_named("histogram_partials", n, |chunk_id, range| {
            let mut local = vec![0u64; num_bins];
            for &v in &data[range] {
                if (v as usize) < num_bins {
                    local[v as usize] += 1;
                }
            }
            for (b, &c) in local.iter().enumerate() {
                // SAFETY: each chunk writes only its own row.
                unsafe { partial_shared.write(chunk_id * num_bins + b, c) };
            }
        });
    }
    let mut out = vec![0u64; num_bins];
    for c in 0..chunks {
        for b in 0..num_bins {
            out[b] += partial[c * num_bins + b];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_small() {
        let exec = Executor::new(4);
        let data = [0u32, 1, 1, 2, 2, 2, 9];
        let hist = histogram_u32(&exec, &data, 3);
        assert_eq!(hist, vec![1, 2, 3]);
    }

    #[test]
    fn counts_large() {
        let exec = Executor::new(4);
        let data: Vec<u32> = (0..400_000).map(|i| (i % 7) as u32).collect();
        let hist = histogram_u32(&exec, &data, 7);
        assert_eq!(hist.iter().sum::<u64>(), 400_000);
        for (b, &c) in hist.iter().enumerate() {
            let expected = (400_000 + 6 - b as u64) / 7;
            assert_eq!(c, expected);
        }
    }

    #[test]
    fn empty_inputs() {
        let exec = Executor::new(2);
        assert_eq!(histogram_u32(&exec, &[], 4), vec![0, 0, 0, 0]);
        assert!(histogram_u32(&exec, &[1, 2, 3], 0).is_empty());
    }
}
