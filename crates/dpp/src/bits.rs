//! Word-level bitmask helpers for 64-wide set intersection.
//!
//! The fused expansion kernels treat a sublist-local adjacency row as a
//! little-endian bit vector packed into `u64` words (bit `b` of word `w`
//! is element `64·w + b`). These helpers are the handful of primitives the
//! kernels need to slice such vectors at arbitrary bit offsets: a GPU
//! implementation would spell them `__popc`/funnel-shift; here they compile
//! to `POPCNT`/`SHRD` on the host.

/// Mask selecting bit positions `>= bit` within one word (`bit` in
/// `0..=64`; `64` selects nothing).
#[inline]
pub fn suffix_mask(bit: u32) -> u64 {
    if bit >= 64 {
        0
    } else {
        u64::MAX << bit
    }
}

/// Mask selecting bit positions `< bit` within one word (`bit` in
/// `0..=64`; `64` selects everything).
#[inline]
pub fn prefix_mask(bit: u32) -> u64 {
    !suffix_mask(bit)
}

/// Population count of the bits at positions `>= from_bit` across `words`
/// (the masked-suffix popcount the bound-directed pruning test uses).
#[inline]
pub fn count_ones_from(words: &[u64], from_bit: usize) -> usize {
    let first = from_bit / 64;
    if first >= words.len() {
        return 0;
    }
    let mut count = (words[first] & suffix_mask((from_bit % 64) as u32)).count_ones() as usize;
    for &w in &words[first + 1..] {
        count += w.count_ones() as usize;
    }
    count
}

/// Reads the 64 bits starting at `bit_offset` as one word — the funnel
/// shift that realigns a bitmap row to an arbitrary start position. Bits
/// past the end of `words` read as zero.
#[inline]
pub fn read_word_at(words: &[u64], bit_offset: usize) -> u64 {
    let word = bit_offset / 64;
    let shift = (bit_offset % 64) as u32;
    let lo = words.get(word).copied().unwrap_or(0);
    if shift == 0 {
        return lo;
    }
    let hi = words.get(word + 1).copied().unwrap_or(0);
    (lo >> shift) | (hi << (64 - shift))
}

/// Position (0-indexed) of the `n`-th zero bit (1-indexed `n`) among the
/// first `len_bits` bits of `words`, or `None` when fewer than `n` zeros
/// exist. Bits past `words.len() * 64` count as zeros up to `len_bits`.
#[inline]
pub fn nth_zero(words: &[u64], len_bits: usize, n: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let mut remaining = n;
    let mut bit = 0usize;
    while bit < len_bits {
        let span = (len_bits - bit).min(64);
        let word = !read_word_at(words, bit) & prefix_mask(span as u32);
        let zeros = word.count_ones() as usize;
        if zeros >= remaining {
            // Select the `remaining`-th set bit of the inverted word by
            // peeling the lowest set bit.
            let mut w = word;
            for _ in 1..remaining {
                w &= w - 1;
            }
            return Some(bit + w.trailing_zeros() as usize);
        }
        remaining -= zeros;
        bit += span;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_and_prefix_masks_partition_the_word() {
        assert_eq!(suffix_mask(0), u64::MAX);
        assert_eq!(suffix_mask(64), 0);
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(64), u64::MAX);
        for bit in 0..=64 {
            assert_eq!(suffix_mask(bit) ^ prefix_mask(bit), u64::MAX, "bit {bit}");
            assert_eq!(suffix_mask(bit) & prefix_mask(bit), 0, "bit {bit}");
        }
    }

    /// Reference implementation over an explicit bit vector.
    fn bits_of(words: &[u64], len: usize) -> Vec<bool> {
        (0..len)
            .map(|b| words.get(b / 64).is_some_and(|w| (w >> (b % 64)) & 1 == 1))
            .collect()
    }

    #[test]
    fn count_ones_from_matches_reference() {
        let words = [0xDEAD_BEEF_0123_4567u64, 0xFFFF_0000_FFFF_0000, 0x1];
        let bits = bits_of(&words, 192);
        for from in [0, 1, 63, 64, 65, 100, 127, 128, 191, 192, 500] {
            let expected = bits.iter().skip(from).filter(|&&b| b).count();
            assert_eq!(count_ones_from(&words, from), expected, "from {from}");
        }
    }

    #[test]
    fn read_word_at_realigns_across_word_boundaries() {
        let words = [0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210];
        assert_eq!(read_word_at(&words, 0), words[0]);
        assert_eq!(read_word_at(&words, 64), words[1]);
        assert_eq!(read_word_at(&words, 4), (words[0] >> 4) | (words[1] << 60));
        // Past the end: zero-padded.
        assert_eq!(read_word_at(&words, 128), 0);
        assert_eq!(read_word_at(&words, 100), words[1] >> 36);
    }

    #[test]
    fn nth_zero_matches_reference() {
        let words = [0b1011_0101u64, u64::MAX, 0];
        let len = 130;
        let bits = bits_of(&words, len);
        let zeros: Vec<usize> = (0..len).filter(|&b| !bits[b]).collect();
        for n in 1..=zeros.len() {
            assert_eq!(nth_zero(&words, len, n), Some(zeros[n - 1]), "n {n}");
        }
        assert_eq!(nth_zero(&words, len, zeros.len() + 1), None);
        assert_eq!(nth_zero(&words, len, 0), None);
        // A fully-set prefix has its zeros only past `len_bits`.
        assert_eq!(nth_zero(&[u64::MAX], 64, 1), None);
        assert_eq!(nth_zero(&[u64::MAX], 32, 1), None);
        // Implicit zero words beyond the slice still count.
        assert_eq!(nth_zero(&[u64::MAX], 70, 3), Some(66));
    }
}
