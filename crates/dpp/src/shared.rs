use std::marker::PhantomData;

/// A shared view of a mutable slice that allows scattered writes from many
/// virtual threads at once.
///
/// GPU kernels routinely have each thread write to a distinct, runtime-
/// computed offset of a shared output array (e.g. the paper's
/// `OUTPUTNEWCLIQUES` kernel writes each new sublist at an offset produced by
/// a prefix scan). Rust's aliasing rules cannot express "disjoint at runtime"
/// directly, so this wrapper provides unchecked writes with the safety
/// contract pushed to the kernel author — exactly the contract CUDA gives.
///
/// # Safety contract
///
/// Callers of [`SharedSlice::write`] must guarantee that no two virtual
/// threads write the same index during one launch, and that no *other*
/// thread reads an index while it may be written (the owning thread may
/// freely read-modify-write its own indices, as CUDA threads do). All
/// launches are bulk-synchronous, so writes from one launch are visible to
/// subsequent launches.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only permits access through `unsafe` methods whose
// contract requires disjoint writes; with that contract upheld, sharing the
// raw pointer across threads is sound for `T: Send`.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for scattered parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements in the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// `index < len()`, and no *other* virtual thread writes or reads
    /// `index` during this launch.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Reads the element at `index`.
    ///
    /// # Safety
    /// `index < len()`, and no *other* virtual thread writes `index` during
    /// this launch (reading back this thread's own writes is fine).
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).read() }
    }
}

/// A shared view of the *spare capacity* of a `Vec`, for primitives that
/// write every output element exactly once and therefore never need the
/// buffer pre-initialised (the `_into` scan/select variants).
///
/// # Safety contract
///
/// The wrapped region is uninitialised memory. During one launch every index
/// in `0..len` must be written exactly once before it is read, no two virtual
/// threads may touch the same index, and the caller must `set_len(len)` on
/// the vector only after the launch completes. The `Vec` must not be touched
/// (moved, grown, dropped) while the wrapper is alive.
pub struct UninitSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: access only through `unsafe` methods whose contract requires
// disjoint exactly-once writes; with that upheld, sharing the raw pointer
// across threads is sound for `T: Send`.
unsafe impl<T: Send> Sync for UninitSlice<T> {}
unsafe impl<T: Send> Send for UninitSlice<T> {}

impl<T> UninitSlice<T> {
    /// Clears `vec`, reserves room for `len` elements and wraps the spare
    /// capacity. The caller must `set_len(len)` after every index has been
    /// written.
    pub fn for_vec(vec: &mut Vec<T>, len: usize) -> Self {
        vec.clear();
        vec.reserve(len);
        Self {
            ptr: vec.as_mut_ptr(),
            len,
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// `index < len`, written exactly once per launch, and no other virtual
    /// thread touches `index` during this launch.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Reads the element at `index`, which must already have been written
    /// by the *same* virtual thread during this launch.
    ///
    /// # Safety
    /// `index < len` and the slot was previously initialised by this thread.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scattered_writes_land() {
        let mut data = vec![0u32; 8];
        {
            let shared = SharedSlice::new(&mut data);
            // Disjoint indices, "parallel" in spirit.
            for i in 0..8 {
                unsafe { shared.write(7 - i, i as u32) };
            }
        }
        assert_eq!(data, vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn read_back_is_consistent() {
        let mut data = vec![41u64, 42, 43];
        let shared = SharedSlice::new(&mut data);
        assert_eq!(unsafe { shared.read(1) }, 42);
        assert_eq!(shared.len(), 3);
        assert!(!shared.is_empty());
    }

    #[test]
    fn uninit_slice_fills_spare_capacity() {
        let mut v: Vec<u32> = vec![99; 3];
        {
            let u = UninitSlice::for_vec(&mut v, 5);
            for i in 0..5 {
                unsafe { u.write(i, i as u32 * 10) };
            }
            assert_eq!(unsafe { u.read(3) }, 30);
        }
        // SAFETY: all 5 indices written above.
        unsafe { v.set_len(5) };
        assert_eq!(v, vec![0, 10, 20, 30, 40]);
    }
}
