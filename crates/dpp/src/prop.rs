//! A small seeded property-testing harness (in-tree `proptest` stand-in).
//!
//! Drives a property over many pseudo-randomly generated cases and, on
//! failure, performs bounded greedy shrinking to report a minimal
//! counterexample. Everything is seeded through [`Rng`], so failures are
//! reproducible: the panic message names the seed and case index, and
//! setting `GMC_PROP_SEED` replays the exact stream.
//!
//! Usage:
//!
//! ```
//! use gmc_dpp::prop::{self, gens, shrinks};
//! use gmc_dpp::prop_assert_eq;
//!
//! prop::check(
//!     "reverse twice is identity",
//!     |rng| gens::vec_u32(rng, 0..100, 0..1000),
//!     shrinks::vec,
//!     |input| {
//!         let mut twice = input.clone();
//!         twice.reverse();
//!         twice.reverse();
//!         prop_assert_eq!(&twice, input);
//!         Ok(())
//!     },
//! );
//! ```
//!
//! Environment knobs: `GMC_PROP_CASES` (default 64) and `GMC_PROP_SEED`
//! (default a fixed seed — property runs are deterministic unless asked
//! otherwise).

use crate::rng::Rng;
use std::fmt::Debug;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Seed for the case-generation stream.
    pub seed: u64,
    /// Cap on accepted shrinking steps (bounded shrinking).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("GMC_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("GMC_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x6D63_7072_6F70); // "mcprop"
        Self {
            cases,
            seed,
            max_shrink_steps: 512,
        }
    }
}

/// Runs `prop` on [`Config::default`]'s number of cases drawn from `gen`,
/// shrinking failures with `shrink`. Panics (like a failing test) with the
/// minimal counterexample found.
pub fn check<T, G, S, P>(name: &str, gen: G, shrink: S, prop: P)
where
    T: Clone + Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(Config::default(), name, gen, shrink, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_with<T, G, S, P>(config: Config, name: &str, gen: G, shrink: S, prop: P)
where
    T: Clone + Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = Rng::seed_from_u64(config.seed);
    for case in 0..config.cases {
        let input = gen(&mut rng);
        if let Err(first_failure) = prop(&input) {
            let (minimal, failure, steps) = shrink_failure(
                input,
                first_failure,
                &shrink,
                &prop,
                config.max_shrink_steps,
            );
            panic!(
                "property `{name}` failed (case {case} of {}, seed {:#x}, {steps} shrink steps)\n\
                 minimal counterexample: {minimal:?}\n\
                 failure: {failure}",
                config.cases, config.seed
            );
        }
    }
}

/// Greedy bounded shrinking: repeatedly adopt the first shrink candidate
/// that still fails, until no candidate fails or the step budget runs out.
fn shrink_failure<T, S, P>(
    mut current: T,
    mut failure: String,
    shrink: &S,
    prop: &P,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Clone + Debug,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in shrink(&current) {
            if let Err(e) = prop(&candidate) {
                current = candidate;
                failure = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, failure, steps)
}

/// Returns `Err` unless `cond` holds — the harness's `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format_args!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Returns `Err` unless both sides are equal — the harness's `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Ready-made case generators.
pub mod gens {
    use super::Rng;
    use std::ops::Range;

    /// A vector with length drawn from `len` and `u32` elements from `vals`.
    pub fn vec_u32(rng: &mut Rng, len: Range<usize>, vals: Range<u32>) -> Vec<u32> {
        let n = sample_len(rng, len);
        (0..n).map(|_| rng.gen_range(vals.clone())).collect()
    }

    /// A vector with length drawn from `len` and `usize` elements from
    /// `vals`.
    pub fn vec_usize(rng: &mut Rng, len: Range<usize>, vals: Range<usize>) -> Vec<usize> {
        let n = sample_len(rng, len);
        (0..n).map(|_| rng.gen_range(vals.clone())).collect()
    }

    /// A vector of arbitrary (full-range) `u32`s.
    pub fn vec_any_u32(rng: &mut Rng, len: Range<usize>) -> Vec<u32> {
        let n = sample_len(rng, len);
        (0..n).map(|_| rng.next_u32()).collect()
    }

    /// One of the listed values, uniformly.
    pub fn one_of<T: Copy>(rng: &mut Rng, choices: &[T]) -> T {
        *rng.choose(choices).expect("non-empty choices")
    }

    /// An undirected edge list on `n` vertices where each of the
    /// `n·(n−1)/2` pairs appears with probability `p` — the harness's
    /// "arbitrary small graph" generator.
    pub fn edges_gnp(rng: &mut Rng, n: usize, p: f64) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    fn sample_len(rng: &mut Rng, len: Range<usize>) -> usize {
        if len.start + 1 >= len.end {
            len.start
        } else {
            rng.gen_range(len)
        }
    }
}

/// Ready-made shrinkers. All are *bounded*: the candidate list is small per
/// step, and the harness caps total accepted steps.
pub mod shrinks {
    /// Shrinks a vector by structure only: drop halves, then drop a bounded
    /// sample of single elements. Element values are left alone — for the
    /// repo's properties the interesting minimisation is input *size*.
    // `&Vec` (not `&[T]`): shrinkers must be usable directly as
    // `Fn(&T) -> Vec<T>` with `T = Vec<_>`, and trait-bound matching does
    // not coerce `&Vec<T>` to `&[T]`.
    #[allow(clippy::ptr_arg)]
    pub fn vec<T: Clone>(v: &Vec<T>) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        let n = v.len();
        if n == 0 {
            return out;
        }
        out.push(v[..n / 2].to_vec());
        out.push(v[n / 2..].to_vec());
        // Single-element removals, at most 16 spread across the vector.
        let step = (n / 16).max(1);
        for i in (0..n).step_by(step) {
            let mut smaller = v.clone();
            smaller.remove(i);
            out.push(smaller);
        }
        out
    }

    /// Shrinks an integer toward `lo`: the floor itself, then halves of the
    /// distance, then the predecessor.
    pub fn usize_toward(lo: usize) -> impl Fn(&usize) -> Vec<usize> {
        move |&x| {
            let mut out = Vec::new();
            if x > lo {
                out.push(lo);
                let mid = lo + (x - lo) / 2;
                if mid != lo && mid != x {
                    out.push(mid);
                }
                out.push(x - 1);
            }
            out.dedup();
            out
        }
    }

    /// No shrinking (for inputs where minimisation has no meaning).
    pub fn none<T: Clone>(_: &T) -> Vec<T> {
        Vec::new()
    }

    /// Shrinks an edge list like [`vec()`](fn@vec) — dropping edges keeps any
    /// graph-shaped input valid.
    #[allow(clippy::ptr_arg)]
    pub fn edges(v: &Vec<(u32, u32)>) -> Vec<Vec<(u32, u32)>> {
        vec(v)
    }

    /// Combines two shrinkers over a pair, shrinking one side at a time.
    pub fn pair<A: Clone, B: Clone>(
        sa: impl Fn(&A) -> Vec<A>,
        sb: impl Fn(&B) -> Vec<B>,
    ) -> impl Fn(&(A, B)) -> Vec<(A, B)> {
        move |(a, b)| {
            let mut out: Vec<(A, B)> = sa(a).into_iter().map(|a2| (a2, b.clone())).collect();
            out.extend(sb(b).into_iter().map(|b2| (a.clone(), b2)));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check(
            "sum is order independent",
            |rng| gens::vec_usize(rng, 0..50, 0..100),
            shrinks::vec,
            |v| {
                let forward: usize = v.iter().sum();
                let backward: usize = v.iter().rev().sum();
                prop_assert_eq!(forward, backward);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_a_minimal_case() {
        let result = std::panic::catch_unwind(|| {
            check_with(
                Config {
                    cases: 64,
                    seed: 1,
                    max_shrink_steps: 512,
                },
                "no element is 7 or more",
                |rng| gens::vec_usize(rng, 0..40, 0..10),
                shrinks::vec,
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 7), "found {v:?}");
                    Ok(())
                },
            );
        });
        let message = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(message.contains("minimal counterexample"), "{message}");
        // Greedy structural shrinking must land on a single-element vector.
        assert!(message.contains("minimal counterexample: ["), "{message}");
        let list = message
            .split("minimal counterexample: [")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .unwrap();
        assert_eq!(list.split(',').count(), 1, "not minimal: [{list}]");
    }

    #[test]
    fn failures_are_reproducible_per_seed() {
        let run = || {
            std::panic::catch_unwind(|| {
                check_with(
                    Config {
                        cases: 32,
                        seed: 42,
                        max_shrink_steps: 64,
                    },
                    "always fails eventually",
                    |rng| rng.gen_range(0usize..1000),
                    shrinks::usize_toward(0),
                    |&x| {
                        prop_assert!(x < 900, "x = {x}");
                        Ok(())
                    },
                )
            })
            .expect_err("must fail")
            .downcast::<String>()
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn usize_shrinker_descends() {
        let sh = shrinks::usize_toward(3);
        assert!(sh(&3).is_empty());
        let candidates = sh(&100);
        assert!(candidates.contains(&3));
        assert!(candidates.iter().all(|&c| c < 100));
    }
}
