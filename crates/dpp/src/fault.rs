//! Deterministic fault injection for the virtual device.
//!
//! Real GPUs fail: allocations exhaust on-board RAM and kernel launches can
//! return transient errors. The solver's recovery ladder (arena release,
//! window shrink, bitmap→scalar fallback) only stays honest if those
//! failures are *exercised*, so this module provides a seeded
//! [`FaultInjector`] that makes [`DeviceMemory`](crate::DeviceMemory)
//! charges fail at a configured rate and makes the executor's `try_*`
//! launch wrappers return [`LaunchError`] instead of running the kernel.
//!
//! Determinism: every fault decision is a pure function of the plan's seed
//! and a shared atomic step counter (each roll consumes one step). A
//! single-threaded run replays bit-for-bit; a multi-worker run may fault at
//! different steps between runs, but the solver's recovery obligations make
//! the *output* identical either way, which is what the chaos suite pins.
//!
//! Cost when disabled: arming is a cached [`AtomicBool`](std::sync::atomic::AtomicBool) on the memory and
//! executor cells, so the fault-free path pays one relaxed load and branch
//! per allocation/launch — gated below 1% of a pooled 10k scan by the
//! `GMC_PERF_GATE=1` micro bench.

use crate::cancel::Cancelled;
use crate::memory::DeviceOom;
use crate::rng::Rng;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Mixes a roll's step number into the plan seed (SplitMix64's gamma).
const STEP_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// Domain salt separating allocation rolls from launch rolls.
const ALLOC_SALT: u64 = 0xA110_C000_0000_0001;
/// Domain salt for launch rolls.
const LAUNCH_SALT: u64 = 0x1A41_4C00_0000_0002;

/// A seeded fault schedule: which fraction of allocations and launches
/// fail, and how many times the solver may retry before giving up.
///
/// Parsed from `GMC_FAULTS` (via the shared fail-loud env parser) with the
/// format `seed=42,alloc=0.05,launch=0.02,retries=8` — any subset of keys
/// is accepted; unknown keys and out-of-range rates are errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-roll RNG; same seed + same step = same decision.
    pub seed: u64,
    /// Probability in `[0, 1]` that a device-memory charge fails.
    pub alloc_rate: f64,
    /// Probability in `[0, 1]` that a fallible launch wrapper fails.
    pub launch_rate: f64,
    /// Retry cap for each recovery loop before the solver surfaces a typed
    /// error.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            alloc_rate: 0.0,
            launch_rate: 0.0,
            max_retries: 8,
        }
    }
}

impl FaultPlan {
    /// Whether any fault rate is nonzero (an all-zero plan injects nothing).
    pub fn is_active(&self) -> bool {
        self.alloc_rate > 0.0 || self.launch_rate > 0.0
    }

    /// Reads the plan from `GMC_FAULTS` with the shared fail-loud parser:
    /// unset means `None`, a set-but-invalid value panics naming the
    /// variable, the value and the expected format.
    pub fn from_env() -> Option<Self> {
        gmc_trace::env::parse("GMC_FAULTS")
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault seed `{value}` is not a u64"))?;
                }
                "alloc" | "launch" => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|_| format!("fault rate `{value}` is not a number"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault rate `{value}` is outside [0, 1]"));
                    }
                    if key == "alloc" {
                        plan.alloc_rate = rate;
                    } else {
                        plan.launch_rate = rate;
                    }
                }
                "retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| format!("fault retries `{value}` is not a u32"))?;
                }
                _ => {
                    return Err(format!(
                        "unknown fault key `{key}` (expected seed/alloc/launch/retries)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={},alloc={},launch={},retries={}",
            self.seed, self.alloc_rate, self.launch_rate, self.max_retries
        )
    }
}

/// Exact counters for a fault-injected run: how many faults fired and how
/// many the solver recovered from, by kind. On a successful solve the
/// recovery totals equal the injection totals — every fault was caught
/// exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Device-memory charges that were failed by injection.
    pub injected_allocs: u64,
    /// Fallible launches that were failed by injection.
    pub injected_launches: u64,
    /// Injected allocation faults the solver recovered from.
    pub alloc_recoveries: u64,
    /// Injected launch faults the solver recovered from.
    pub launch_recoveries: u64,
    /// Levels where a faulted local-bitmap build fell back to the scalar
    /// walk (each is also counted in its kind's recovery total).
    pub bitmap_fallbacks: u64,
    /// Window splits forced by repeated faults (geometric backoff).
    pub window_shrinks: u64,
    /// Fault-decision steps consumed — one per charge or fallible launch
    /// rolled while the corresponding rate was nonzero. Harnesses can use
    /// a near-zero-rate probe run to measure how many roll sites a
    /// workload has and calibrate rates against it.
    pub steps: u64,
}

impl FaultStats {
    /// Total faults injected across both kinds.
    pub fn injected(&self) -> u64 {
        self.injected_allocs + self.injected_launches
    }

    /// Total faults recovered across both kinds.
    pub fn recovered(&self) -> u64 {
        self.alloc_recoveries + self.launch_recoveries
    }
}

struct FaultCells {
    plan: FaultPlan,
    step: AtomicU64,
    injected_allocs: AtomicU64,
    injected_launches: AtomicU64,
    alloc_recoveries: AtomicU64,
    launch_recoveries: AtomicU64,
    bitmap_fallbacks: AtomicU64,
    window_shrinks: AtomicU64,
}

/// The armed half of a [`FaultPlan`]: shared atomic step and recovery
/// counters. Cloning shares the counters, so the copy installed on the
/// device and the copy held by the solver tally into the same totals.
#[derive(Clone)]
pub struct FaultInjector {
    cells: Arc<FaultCells>,
}

impl FaultInjector {
    /// An injector executing `plan` from step zero.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            cells: Arc::new(FaultCells {
                plan,
                step: AtomicU64::new(0),
                injected_allocs: AtomicU64::new(0),
                injected_launches: AtomicU64::new(0),
                alloc_recoveries: AtomicU64::new(0),
                launch_recoveries: AtomicU64::new(0),
                bitmap_fallbacks: AtomicU64::new(0),
                window_shrinks: AtomicU64::new(0),
            }),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> FaultPlan {
        self.cells.plan
    }

    fn decide(&self, rate: f64, salt: u64) -> Option<u64> {
        if rate <= 0.0 {
            return None;
        }
        let step = self.cells.step.fetch_add(1, Ordering::Relaxed);
        let mut rng = Rng::seed_from_u64(self.cells.plan.seed ^ step.wrapping_mul(STEP_MIX) ^ salt);
        rng.gen_bool(rate).then_some(step)
    }

    /// Rolls one allocation fault; `Some(step)` means the charge must fail.
    /// The injected-alloc counter is bumped at the roll site, so recovery
    /// totals can be checked against it exactly.
    pub fn roll_alloc(&self) -> Option<u64> {
        let step = self.decide(self.cells.plan.alloc_rate, ALLOC_SALT)?;
        self.cells.injected_allocs.fetch_add(1, Ordering::Relaxed);
        Some(step)
    }

    /// Rolls one launch fault; `Some(step)` means the launch must fail.
    pub fn roll_launch(&self) -> Option<u64> {
        let step = self.decide(self.cells.plan.launch_rate, LAUNCH_SALT)?;
        self.cells.injected_launches.fetch_add(1, Ordering::Relaxed);
        Some(step)
    }

    /// Records that an injected fault was caught and retried. Call exactly
    /// once per caught fault, at the catch site; propagating past the retry
    /// cap is *not* a recovery.
    pub fn note_recovery(&self, error: &DeviceError) {
        match error {
            DeviceError::Oom(_) => &self.cells.alloc_recoveries,
            DeviceError::Launch(_) => &self.cells.launch_recoveries,
            // Cancellation is never injected and never retried, so there is
            // nothing to recover from.
            DeviceError::Cancelled(_) => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a level that fell back from the local-bitmap path to the
    /// scalar walk after `error`; also counts the kind's recovery.
    pub fn note_bitmap_fallback(&self, error: &DeviceError) {
        self.cells.bitmap_fallbacks.fetch_add(1, Ordering::Relaxed);
        self.note_recovery(error);
    }

    /// Records a window split forced by repeated faults.
    pub fn note_window_shrink(&self) {
        self.cells.window_shrinks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the injection/recovery counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected_allocs: self.cells.injected_allocs.load(Ordering::Relaxed),
            injected_launches: self.cells.injected_launches.load(Ordering::Relaxed),
            alloc_recoveries: self.cells.alloc_recoveries.load(Ordering::Relaxed),
            launch_recoveries: self.cells.launch_recoveries.load(Ordering::Relaxed),
            bitmap_fallbacks: self.cells.bitmap_fallbacks.load(Ordering::Relaxed),
            window_shrinks: self.cells.window_shrinks.load(Ordering::Relaxed),
            steps: self.cells.step.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.cells.plan)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Error returned by the executor's fallible launch wrappers when the fault
/// injector fails the launch — the reproduction's analogue of a transient
/// `cudaErrorLaunchFailure`. The kernel body has *not* run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchError {
    /// Name of the kernel whose launch was failed.
    pub kernel: &'static str,
    /// Fault-injector step at which the failure was scheduled.
    pub step: u64,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel launch `{}` failed (injected at fault step {})",
            self.kernel, self.step
        )
    }
}

impl std::error::Error for LaunchError {}

/// Any device-side failure: an allocation that did not fit (or was failed
/// by injection), a launch the injector failed, or a cooperative
/// cancellation observed at a launch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// A device-memory charge failed.
    Oom(DeviceOom),
    /// A kernel launch failed.
    Launch(LaunchError),
    /// The installed [`CancelToken`](crate::CancelToken) was tripped; the
    /// solve must unwind without retrying.
    Cancelled(Cancelled),
}

impl DeviceError {
    /// Whether this failure was produced by the fault injector (as opposed
    /// to a genuine capacity exhaustion). Injected faults are retryable;
    /// real OOM is not — retrying the same allocation against the same
    /// budget fails the same way — and cancellation must propagate, not
    /// retry.
    pub fn is_injected(&self) -> bool {
        match self {
            DeviceError::Oom(oom) => oom.injected,
            DeviceError::Launch(_) => true,
            DeviceError::Cancelled(_) => false,
        }
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Oom(oom) => oom.fmt(f),
            DeviceError::Launch(launch) => launch.fmt(f),
            DeviceError::Cancelled(cancelled) => cancelled.fmt(f),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<DeviceOom> for DeviceError {
    fn from(oom: DeviceOom) -> Self {
        DeviceError::Oom(oom)
    }
}

impl From<LaunchError> for DeviceError {
    fn from(launch: LaunchError) -> Self {
        DeviceError::Launch(launch)
    }
}

impl From<Cancelled> for DeviceError {
    fn from(cancelled: Cancelled) -> Self {
        DeviceError::Cancelled(cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_full_and_partial_specs() {
        let plan: FaultPlan = "seed=42,alloc=0.05,launch=0.02,retries=3".parse().unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.alloc_rate, 0.05);
        assert_eq!(plan.launch_rate, 0.02);
        assert_eq!(plan.max_retries, 3);

        let partial: FaultPlan = "alloc=0.1".parse().unwrap();
        assert_eq!(partial.seed, 0);
        assert_eq!(partial.alloc_rate, 0.1);
        assert_eq!(partial.launch_rate, 0.0);
        assert_eq!(partial.max_retries, 8);
        assert!(partial.is_active());
        assert!(!FaultPlan::default().is_active());
    }

    #[test]
    fn plan_display_round_trips() {
        let plan: FaultPlan = "seed=7,alloc=0.25,launch=0.5,retries=4".parse().unwrap();
        let reparsed: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn plan_rejects_bad_specs() {
        assert!("bogus=1".parse::<FaultPlan>().is_err());
        assert!("alloc=1.5".parse::<FaultPlan>().is_err());
        assert!("alloc=-0.1".parse::<FaultPlan>().is_err());
        assert!("seed".parse::<FaultPlan>().is_err());
        assert!("seed=x".parse::<FaultPlan>().is_err());
        assert!("retries=-1".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn cancelled_is_not_injected_and_not_a_recovery() {
        let plan: FaultPlan = "alloc=1".parse().unwrap();
        let inj = FaultInjector::new(plan);
        let err = DeviceError::Cancelled(Cancelled {
            deadline_exceeded: true,
        });
        assert!(!err.is_injected(), "cancellation must not be retryable");
        inj.note_recovery(&err);
        assert_eq!(inj.stats().recovered(), 0);
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn rolls_are_deterministic_in_step_order() {
        let plan: FaultPlan = "seed=11,alloc=0.3,launch=0.3".parse().unwrap();
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let fire_a: Vec<bool> = (0..200).map(|_| a.roll_alloc().is_some()).collect();
        let fire_b: Vec<bool> = (0..200).map(|_| b.roll_alloc().is_some()).collect();
        assert_eq!(fire_a, fire_b);
        assert!(fire_a.iter().any(|&f| f), "rate 0.3 fires within 200 rolls");
        assert!(!fire_a.iter().all(|&f| f), "rate 0.3 is not always-on");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn zero_rate_never_rolls_and_consumes_no_steps() {
        let inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..100 {
            assert!(inj.roll_alloc().is_none());
            assert!(inj.roll_launch().is_none());
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn recovery_notes_count_by_kind() {
        let plan: FaultPlan = "alloc=1,launch=1".parse().unwrap();
        let inj = FaultInjector::new(plan);
        let oom_step = inj.roll_alloc().unwrap();
        let launch_step = inj.roll_launch().unwrap();
        let oom = DeviceError::Oom(DeviceOom {
            requested: 64,
            live: 0,
            capacity: usize::MAX,
            injected: true,
        });
        let launch = DeviceError::Launch(LaunchError {
            kernel: "k",
            step: launch_step,
        });
        assert!(oom.is_injected());
        assert!(launch.is_injected());
        let _ = oom_step;
        inj.note_recovery(&oom);
        inj.note_bitmap_fallback(&launch);
        inj.note_window_shrink();
        let stats = inj.stats();
        assert_eq!(stats.injected_allocs, 1);
        assert_eq!(stats.injected_launches, 1);
        assert_eq!(stats.alloc_recoveries, 1);
        assert_eq!(stats.launch_recoveries, 1);
        assert_eq!(stats.bitmap_fallbacks, 1);
        assert_eq!(stats.window_shrinks, 1);
        assert_eq!(stats.injected(), 2);
        assert_eq!(stats.recovered(), 2);
    }
}
