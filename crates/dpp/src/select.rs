//! Stream compaction (CUB `DeviceSelect` analogue).
//!
//! Selection is stable: surviving elements keep their relative order, which
//! the paper's Algorithm 1 depends on (segments must stay contiguous after
//! filtering).

use crate::executor::Executor;
use crate::fault::LaunchError;
use crate::scan::exclusive_scan;
use crate::shared::{SharedSlice, UninitSlice};

/// Keeps `data[i]` where `flags[i]` is true. Panics if lengths differ.
pub fn select_flagged<T>(exec: &Executor, data: &[T], flags: &[bool]) -> Vec<T>
where
    T: Copy + Send + Sync,
{
    assert_eq!(data.len(), flags.len(), "data/flags length mismatch");
    select_if(exec, data, |i, _| flags[i])
}

/// Counts elements satisfying the predicate (no output materialised).
pub fn select_count<T, P>(exec: &Executor, data: &[T], pred: P) -> usize
where
    T: Copy + Send + Sync,
    P: Fn(usize, T) -> bool + Sync,
{
    let counts = per_chunk_counts(exec, data, &pred);
    counts.iter().sum()
}

/// Keeps `data[i]` where `pred(i, data[i])` is true; stable.
pub fn select_if<T, P>(exec: &Executor, data: &[T], pred: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    P: Fn(usize, T) -> bool + Sync,
{
    let mut out = Vec::new();
    select_if_into(exec, data, pred, &mut out);
    out
}

/// [`select_if`] writing into a caller-owned buffer; returns the number of
/// survivors.
///
/// `out` is cleared and overwritten (capacity reused), and survivors are
/// written exactly once into uninitialised spare capacity — no
/// `vec![T::default(); total]` pre-fill — so tight per-level loops stop
/// paying an allocation plus a redundant initialisation pass.
pub fn select_if_into<T, P>(exec: &Executor, data: &[T], pred: P, out: &mut Vec<T>) -> usize
where
    T: Copy + Send + Sync,
    P: Fn(usize, T) -> bool + Sync,
{
    let n = data.len();
    if n == 0 {
        out.clear();
        return 0;
    }
    let counts = per_chunk_counts(exec, data, &pred);
    let (offsets, total) = exclusive_scan(exec, &counts);
    let dst = UninitSlice::for_vec(out, total);
    exec.for_each_chunk_named("select_emit", n, |chunk_id, range| {
        let mut cursor = offsets[chunk_id];
        for i in range {
            if pred(i, data[i]) {
                // SAFETY: each chunk writes its own disjoint output span,
                // each slot exactly once.
                unsafe { dst.write(cursor, data[i]) };
                cursor += 1;
            }
        }
    });
    // SAFETY: the chunk spans tile 0..total, so every slot is initialised.
    unsafe { out.set_len(total) };
    total
}

/// Returns the indices `i` where `pred(i, data[i])` holds, in ascending order.
pub fn select_indices<T, P>(exec: &Executor, data: &[T], pred: P) -> Vec<usize>
where
    T: Copy + Send + Sync,
    P: Fn(usize, T) -> bool + Sync,
{
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let counts = per_chunk_counts(exec, data, &pred);
    let (offsets, total) = exclusive_scan(exec, &counts);
    let mut out = vec![0usize; total];
    {
        let out_shared = SharedSlice::new(&mut out);
        exec.for_each_chunk_named("select_emit_indices", n, |chunk_id, range| {
            let mut cursor = offsets[chunk_id];
            for i in range {
                if pred(i, data[i]) {
                    // SAFETY: each chunk writes its own disjoint output span.
                    unsafe { out_shared.write(cursor, i) };
                    cursor += 1;
                }
            }
        });
    }
    out
}

/// Fallible [`select_indices`]: rolls the executor's armed fault injector
/// once for the select's launches and returns [`LaunchError`] — with no
/// work performed — when it fires.
pub fn try_select_indices<T, P>(
    exec: &Executor,
    data: &[T],
    pred: P,
) -> Result<Vec<usize>, LaunchError>
where
    T: Copy + Send + Sync,
    P: Fn(usize, T) -> bool + Sync,
{
    exec.check_launch_fault("select_count")?;
    Ok(select_indices(exec, data, pred))
}

fn per_chunk_counts<T, P>(exec: &Executor, data: &[T], pred: &P) -> Vec<usize>
where
    T: Copy + Send + Sync,
    P: Fn(usize, T) -> bool + Sync,
{
    let n = data.len();
    let chunks = exec.num_chunks(n);
    let mut counts = vec![0usize; chunks];
    let counts_shared = SharedSlice::new(&mut counts);
    exec.for_each_chunk_named("select_count", n, |chunk_id, range| {
        let mut c = 0usize;
        for i in range {
            if pred(i, data[i]) {
                c += 1;
            }
        }
        // SAFETY: one write per chunk id.
        unsafe { counts_shared.write(chunk_id, c) };
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagged_select_small() {
        let exec = Executor::new(4);
        let data = [10u32, 20, 30, 40, 50];
        let flags = [true, false, true, false, true];
        assert_eq!(select_flagged(&exec, &data, &flags), vec![10, 30, 50]);
    }

    #[test]
    fn select_if_large_is_stable() {
        let exec = Executor::new(5);
        let data: Vec<u32> = (0..300_000).collect();
        let out = select_if(&exec, &data, |_, v| v % 3 == 0);
        let expected: Vec<u32> = (0..300_000).filter(|v| v % 3 == 0).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn select_none_and_all() {
        let exec = Executor::new(4);
        let data: Vec<u32> = (0..100_000).collect();
        assert!(select_if(&exec, &data, |_, _| false).is_empty());
        assert_eq!(select_if(&exec, &data, |_, _| true), data);
    }

    #[test]
    fn select_indices_matches_positions() {
        let exec = Executor::new(3);
        let data: Vec<u32> = (0..50_000).map(|i| i % 10).collect();
        let idx = select_indices(&exec, &data, |_, v| v == 7);
        assert!(idx.iter().all(|&i| data[i] == 7));
        assert_eq!(idx.len(), 5_000);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn select_count_matches_select_if() {
        let exec = Executor::new(4);
        let data: Vec<u32> = (0..123_457).map(|i| i * 7 % 13).collect();
        let count = select_count(&exec, &data, |_, v| v < 4);
        assert_eq!(count, select_if(&exec, &data, |_, v| v < 4).len());
    }

    #[test]
    fn empty_input() {
        let exec = Executor::new(4);
        let empty: [u32; 0] = [];
        assert!(select_if(&exec, &empty, |_, _| true).is_empty());
        assert!(select_indices(&exec, &empty, |_, _| true).is_empty());
    }

    #[test]
    fn select_if_into_reuses_buffer() {
        let exec = Executor::new(5);
        let data: Vec<u32> = (0..300_000).collect();
        let mut out = Vec::new();
        let total = select_if_into(&exec, &data, |_, v| v % 3 == 0, &mut out);
        let expected: Vec<u32> = (0..300_000).filter(|v| v % 3 == 0).collect();
        assert_eq!(total, expected.len());
        assert_eq!(out, expected);
        let cap = out.capacity();
        // A smaller follow-up select reuses the grown buffer.
        let total = select_if_into(&exec, &data[..10], |_, v| v < 4, &mut out);
        assert_eq!(total, 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(out.capacity(), cap);
        // Types without Default work (survivors fully written, never filled).
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct NoDefault(u32);
        let data: Vec<NoDefault> = (0..10_000).map(NoDefault).collect();
        let picked = select_if(&exec, &data, |_, v| v.0 % 5000 == 0);
        assert_eq!(picked, vec![NoDefault(0), NoDefault(5000)]);
    }
}
