//! Prefix-scan and reduction primitives (CUB `DeviceScan` / `DeviceReduce`
//! analogues).
//!
//! Two scan strategies coexist:
//!
//! * **Two-phase chunked** ([`exclusive_scan_by`], [`exclusive_scan_by_into`]):
//!   each worker produces a partial aggregate for its contiguous chunk, the
//!   chunk aggregates are scanned sequentially, and a second pass writes the
//!   final prefixes. Two launches, two full passes over the input.
//! * **Single-pass decoupled look-back** ([`exclusive_scan_into`]): the CUB
//!   `DecoupledLookback` analogue. One launch; each chunk publishes its
//!   aggregate to a lock-free status array, then resolves its exclusive
//!   prefix by walking back over predecessors' published aggregates, so the
//!   input is read exactly once.
//!
//! Both are deterministic: chunk boundaries depend only on the input length
//! and the executor's chunk policy, and per-chunk combination happens in
//! chunk order, so output is identical for any worker count.

use crate::executor::Executor;
use crate::fault::LaunchError;
use crate::shared::{SharedSlice, UninitSlice};
use std::sync::atomic::{AtomicU64, Ordering};

/// Generic exclusive scan with a caller-supplied associative operator.
///
/// Returns the scanned vector and the total aggregate (the value that would
/// occupy index `n` — CUB's "carry-out"). The paper's Algorithm 2 relies on
/// exactly this shape: `offsets = scan(counts)` plus the total to size the
/// next clique-list level.
pub fn exclusive_scan_by<T, Op>(exec: &Executor, input: &[T], identity: T, op: Op) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let mut out = Vec::new();
    let total = exclusive_scan_by_into(exec, input, identity, op, &mut out);
    (out, total)
}

/// [`exclusive_scan_by`] writing into a caller-owned buffer.
///
/// `out` is cleared and overwritten (its capacity is reused), so repeated
/// scans — one per BFS level — stop allocating once the buffer has grown to
/// the high-water length. The output is written exactly once per element
/// into uninitialised spare capacity, fixing the double initialisation the
/// allocating variant used to pay (`vec![identity; n]` fully written, then
/// fully overwritten by phase 2). Returns the total aggregate.
pub fn exclusive_scan_by_into<T, Op>(
    exec: &Executor,
    input: &[T],
    identity: T,
    op: Op,
    out: &mut Vec<T>,
) -> T
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let n = input.len();
    if n == 0 {
        out.clear();
        return identity;
    }
    let chunks = exec.num_chunks(n);
    let dst = UninitSlice::for_vec(out, n);
    if chunks == 1 {
        let mut acc = identity;
        for (i, &v) in input.iter().enumerate() {
            // SAFETY: sequential pass writes each index exactly once.
            unsafe { dst.write(i, acc) };
            acc = op(acc, v);
        }
        // SAFETY: all n indices initialised above.
        unsafe { out.set_len(n) };
        return acc;
    }

    // Phase 1: per-chunk aggregates.
    let mut partials = vec![identity; chunks];
    {
        let partials_shared = SharedSlice::new(&mut partials);
        exec.for_each_chunk_named("scan_partials", n, |chunk_id, range| {
            let mut acc = identity;
            for &v in &input[range] {
                acc = op(acc, v);
            }
            // SAFETY: one write per chunk id.
            unsafe { partials_shared.write(chunk_id, acc) };
        });
    }

    // Sequential scan of the (small) aggregate array.
    let mut carry = identity;
    let mut chunk_offsets = Vec::with_capacity(chunks);
    for &p in &partials {
        chunk_offsets.push(carry);
        carry = op(carry, p);
    }

    // Phase 2: write final prefixes straight into the spare capacity.
    exec.for_each_chunk_named("scan_write_prefixes", n, |chunk_id, range| {
        let mut acc = chunk_offsets[chunk_id];
        for i in range {
            // SAFETY: chunks are disjoint index ranges; each index is
            // written exactly once across the launch.
            unsafe { dst.write(i, acc) };
            acc = op(acc, input[i]);
        }
    });
    // SAFETY: the chunks cover 0..n, so every index is initialised.
    unsafe { out.set_len(n) };
    carry
}

/// Exclusive prefix sum over `usize` values; returns `(prefixes, total)`.
pub fn exclusive_scan(exec: &Executor, input: &[usize]) -> (Vec<usize>, usize) {
    exclusive_scan_by(exec, input, 0usize, |a, b| a + b)
}

/// Fallible [`exclusive_scan`]: rolls the executor's armed fault injector
/// once for the scan's launches and returns [`LaunchError`] — with no work
/// performed — when it fires. Fault-free behaviour is identical to
/// [`exclusive_scan`], and with no injector armed the extra cost is one
/// relaxed load.
pub fn try_exclusive_scan(
    exec: &Executor,
    input: &[usize],
) -> Result<(Vec<usize>, usize), LaunchError> {
    exec.check_launch_fault("scan_partials")?;
    Ok(exclusive_scan(exec, input))
}

/// Status-flag encoding for the decoupled look-back scan: the top two bits
/// of each `AtomicU64` cell carry the publication state, the low 62 bits the
/// published value. `EMPTY` (0b00) = nothing published yet; `AGG` = the
/// chunk's local aggregate; `PREFIX` = the inclusive prefix through the
/// chunk (look-back can stop here).
const FLAG_AGG: u64 = 1 << 62;
const FLAG_PREFIX: u64 = 2 << 62;
const VALUE_MASK: u64 = FLAG_AGG - 1;

/// Single-pass exclusive prefix sum (decoupled look-back) into a
/// caller-owned buffer; returns the total.
///
/// The CUB `DecoupledLookback` analogue: one launch instead of two, one read
/// of the input instead of two. Each chunk scans locally into the output and
/// publishes its aggregate to a lock-free status array; every chunk but the
/// first then resolves its exclusive prefix by walking back over
/// predecessors' published entries (spinning on not-yet-published ones),
/// publishes the inclusive prefix for its successors, and adds the resolved
/// prefix to its own output range. Safe on this executor because
/// [`Executor::for_each_chunk`] runs all active chunks concurrently, so a
/// spinning chunk never waits on work that has not been scheduled.
///
/// `out` is cleared and overwritten, reusing its capacity. Values are
/// limited to 62-bit sums (debug-asserted), far beyond any clique-list size.
pub fn exclusive_scan_into(exec: &Executor, input: &[usize], out: &mut Vec<usize>) -> usize {
    let n = input.len();
    if n == 0 {
        out.clear();
        return 0;
    }
    let chunks = exec.num_chunks(n);
    let dst = UninitSlice::for_vec(out, n);
    if chunks == 1 {
        let mut acc = 0usize;
        for (i, &v) in input.iter().enumerate() {
            // SAFETY: sequential pass writes each index exactly once.
            unsafe { dst.write(i, acc) };
            acc += v;
        }
        // SAFETY: all n indices initialised above.
        unsafe { out.set_len(n) };
        return acc;
    }

    let chunk = n.div_ceil(chunks);
    // Only chunks whose start lies inside the input actually run; they form
    // a prefix of the chunk ids, so look-back never waits on a skipped one.
    let active = n.div_ceil(chunk);
    let status: Vec<AtomicU64> = (0..active).map(|_| AtomicU64::new(0)).collect();
    // When tracing, tally every status-array inspection (including spins on
    // not-yet-published predecessors) so the launch's enclosing span carries
    // the decoupled look-back cost; untraced runs skip the tally entirely.
    let tracer = exec.tracer();
    let mut scan_span = tracer
        .is_enabled()
        .then(|| tracer.span_with("exclusive_scan_single_pass", &[("n", n as i64)]));
    let count_steps = scan_span.is_some();
    let lookback_steps = AtomicU64::new(0);
    exec.for_each_chunk_named("scan_lookback", n, |chunk_id, range| {
        // Local exclusive scan into the output; `acc` ends as the aggregate.
        let mut acc = 0usize;
        for i in range.clone() {
            // SAFETY: chunks are disjoint; each index written exactly once.
            unsafe { dst.write(i, acc) };
            acc += input[i];
        }
        debug_assert!(acc as u64 <= VALUE_MASK, "scan total overflows 62 bits");
        if chunk_id == 0 {
            // The first chunk's aggregate *is* its inclusive prefix.
            status[0].store(FLAG_PREFIX | acc as u64, Ordering::Release);
            return;
        }
        status[chunk_id].store(FLAG_AGG | acc as u64, Ordering::Release);
        // Look-back: accumulate predecessors' aggregates until a published
        // inclusive prefix terminates the walk.
        let mut exclusive = 0usize;
        let mut back = chunk_id - 1;
        loop {
            if count_steps {
                lookback_steps.fetch_add(1, Ordering::Relaxed);
            }
            let s = status[back].load(Ordering::Acquire);
            let flag = s & !VALUE_MASK;
            if flag == FLAG_PREFIX {
                exclusive += (s & VALUE_MASK) as usize;
                break;
            }
            if flag == FLAG_AGG {
                exclusive += (s & VALUE_MASK) as usize;
                back -= 1;
                continue;
            }
            std::hint::spin_loop();
        }
        // Publish the inclusive prefix so successors can stop here.
        status[chunk_id].store(FLAG_PREFIX | (exclusive + acc) as u64, Ordering::Release);
        if exclusive != 0 {
            for i in range {
                // SAFETY: re-reading/rewriting slots this same virtual
                // thread initialised above.
                let local = unsafe { dst.read(i) };
                unsafe { dst.write(i, local + exclusive) };
            }
        }
    });
    // SAFETY: the chunks cover 0..n, so every index is initialised.
    unsafe { out.set_len(n) };
    if let Some(span) = scan_span.as_mut() {
        span.arg(
            "lookback_steps",
            lookback_steps.load(Ordering::Relaxed) as i64,
        );
    }
    // The last active chunk's inclusive prefix is the grand total.
    (status[active - 1].load(Ordering::Acquire) & VALUE_MASK) as usize
}

/// Fallible [`exclusive_scan_into`]: rolls the executor's armed fault
/// injector once for the scan's launch and returns [`LaunchError`] — with
/// `out` cleared and the input untouched — when it fires, so a recovering
/// caller can simply retry.
pub fn try_exclusive_scan_into(
    exec: &Executor,
    input: &[usize],
    out: &mut Vec<usize>,
) -> Result<usize, LaunchError> {
    if let Err(err) = exec.check_launch_fault("scan_lookback") {
        out.clear();
        return Err(err);
    }
    Ok(exclusive_scan_into(exec, input, out))
}

/// Inclusive prefix sum over `usize` values.
pub fn inclusive_scan(exec: &Executor, input: &[usize]) -> Vec<usize> {
    let (mut out, total) = exclusive_scan(exec, input);
    if out.is_empty() {
        return out;
    }
    // Shift left by one and append the total.
    out.remove(0);
    out.push(total);
    out
}

/// Generic deterministic reduction with an associative operator.
pub fn reduce_by<T, Op>(exec: &Executor, input: &[T], identity: T, op: Op) -> T
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let n = input.len();
    let chunks = exec.num_chunks(n);
    if chunks <= 1 {
        return input.iter().fold(identity, |acc, &v| op(acc, v));
    }
    let mut partials = vec![identity; chunks];
    {
        let partials_shared = SharedSlice::new(&mut partials);
        exec.for_each_chunk_named("reduce_partials", n, |chunk_id, range| {
            let mut acc = identity;
            for &v in &input[range] {
                acc = op(acc, v);
            }
            // SAFETY: one write per chunk id.
            unsafe { partials_shared.write(chunk_id, acc) };
        });
    }
    partials.into_iter().fold(identity, op)
}

/// Sum reduction over `usize` values.
pub fn reduce(exec: &Executor, input: &[usize]) -> usize {
    reduce_by(exec, input, 0usize, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(input: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0;
        for &v in input {
            out.push(acc);
            acc += v;
        }
        (out, acc)
    }

    #[test]
    fn empty_scan() {
        let exec = Executor::new(4);
        let (out, total) = exclusive_scan(&exec, &[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn small_scan_matches_reference() {
        let exec = Executor::new(4);
        let input = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let (out, total) = exclusive_scan(&exec, &input);
        assert_eq!(out, vec![0, 3, 4, 8, 9, 14, 23, 25]);
        assert_eq!(total, 31);
    }

    #[test]
    fn large_scan_matches_reference() {
        let exec = Executor::new(7);
        let input: Vec<usize> = (0..200_000).map(|i| (i * 2654435761) % 17).collect();
        let (out, total) = exclusive_scan(&exec, &input);
        let (expected, expected_total) = reference_exclusive(&input);
        assert_eq!(out, expected);
        assert_eq!(total, expected_total);
    }

    #[test]
    fn single_pass_scan_matches_reference() {
        let exec = Executor::new(7);
        let input: Vec<usize> = (0..200_000).map(|i| (i * 2654435761) % 17).collect();
        let (expected, expected_total) = reference_exclusive(&input);
        let mut out = Vec::new();
        let total = exclusive_scan_into(&exec, &input, &mut out);
        assert_eq!(out, expected);
        assert_eq!(total, expected_total);
    }

    #[test]
    fn single_pass_scan_deterministic_across_worker_counts() {
        let input: Vec<usize> = (0..100_000).map(|i| i % 7).collect();
        let mut baseline = Vec::new();
        let baseline_total = exclusive_scan_into(&Executor::new(1), &input, &mut baseline);
        for workers in [2, 3, 8] {
            let mut out = Vec::new();
            let total = exclusive_scan_into(&Executor::new(workers), &input, &mut out);
            assert_eq!(out, baseline, "workers {workers}");
            assert_eq!(total, baseline_total, "workers {workers}");
        }
    }

    #[test]
    fn single_pass_scan_is_one_launch() {
        let exec = Executor::new(4);
        let input: Vec<usize> = (0..50_000).map(|i| i % 5).collect();
        let before = exec.stats();
        let mut out = Vec::new();
        exclusive_scan_into(&exec, &input, &mut out);
        let delta = exec.stats().since(&before);
        assert_eq!(delta.launches, 1);
        assert_eq!(delta.kernel("scan_lookback").launches, 1);
        let before = exec.stats();
        let _ = exclusive_scan(&exec, &input);
        assert_eq!(exec.stats().since(&before).launches, 2);
    }

    #[test]
    fn traced_single_pass_scan_reports_lookback_steps() {
        let session = gmc_trace::TraceSession::new();
        let exec = Executor::new(4);
        exec.set_tracer(session.tracer());
        let input: Vec<usize> = (0..50_000).map(|i| i % 5).collect();
        let mut out = Vec::new();
        let total = exclusive_scan_into(&exec, &input, &mut out);
        assert_eq!(total, input.iter().sum::<usize>());
        let timeline = session.finish();
        let scan = timeline
            .spans
            .iter()
            .find(|s| s.name == "exclusive_scan_single_pass")
            .expect("enclosing scan span");
        let steps = scan
            .args
            .iter()
            .find(|(k, _)| *k == "lookback_steps")
            .expect("look-back step tally")
            .1;
        // With 4 chunks, chunks 1..=3 inspect at least one predecessor each.
        assert!(steps >= 3, "expected ≥ 3 look-back steps, got {steps}");
        let launch = timeline
            .spans
            .iter()
            .find(|s| s.name == "scan_lookback")
            .expect("launch span");
        assert_eq!(launch.parent, Some(0), "launch nests under the scan span");
    }

    #[test]
    fn into_variants_reuse_capacity_and_handle_empty() {
        let exec = Executor::new(4);
        let mut out = Vec::new();
        exclusive_scan_into(&exec, &(0..50_000usize).collect::<Vec<_>>(), &mut out);
        let cap = out.capacity();
        assert!(cap >= 50_000);
        // A smaller follow-up scan reuses the grown buffer.
        let total = exclusive_scan_into(&exec, &[5usize, 7], &mut out);
        assert_eq!(out, vec![0, 5]);
        assert_eq!(total, 12);
        assert_eq!(out.capacity(), cap);
        // Empty input clears the buffer without shrinking it.
        let total = exclusive_scan_into(&exec, &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(total, 0);
        assert_eq!(out.capacity(), cap);

        let mut generic = Vec::new();
        let total =
            exclusive_scan_by_into(&exec, &[2u32, 9, 1], 0u32, |a, b| a.max(b), &mut generic);
        assert_eq!(generic, vec![0, 2, 9]);
        assert_eq!(total, 9);
    }

    #[test]
    fn inclusive_scan_matches() {
        let exec = Executor::new(4);
        let input = [1usize, 2, 3, 4];
        assert_eq!(inclusive_scan(&exec, &input), vec![1, 3, 6, 10]);
        assert!(inclusive_scan(&exec, &[]).is_empty());
    }

    #[test]
    fn scan_deterministic_across_worker_counts() {
        let input: Vec<usize> = (0..100_000).map(|i| i % 7).collect();
        let baseline = exclusive_scan(&Executor::new(1), &input);
        for workers in [2, 3, 8] {
            assert_eq!(exclusive_scan(&Executor::new(workers), &input), baseline);
        }
    }

    #[test]
    fn reduce_sums() {
        let exec = Executor::new(4);
        let input: Vec<usize> = (1..=100_000).collect();
        assert_eq!(reduce(&exec, &input), 100_000 * 100_001 / 2);
    }

    #[test]
    fn reduce_by_max() {
        let exec = Executor::new(4);
        let input: Vec<u32> = (0..150_000).map(|i| (i * 37) % 99_991).collect();
        let max = reduce_by(&exec, &input, 0u32, |a, b| a.max(b));
        assert_eq!(max, *input.iter().max().unwrap());
    }

    #[test]
    fn generic_scan_with_max_operator() {
        let exec = Executor::new(4);
        let input = [2u32, 9, 1, 7, 3];
        let (out, total) = exclusive_scan_by(&exec, &input, 0u32, |a, b| a.max(b));
        assert_eq!(out, vec![0, 2, 9, 9, 9]);
        assert_eq!(total, 9);
    }
}
