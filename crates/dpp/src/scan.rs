//! Prefix-scan and reduction primitives (CUB `DeviceScan` / `DeviceReduce`
//! analogues).
//!
//! All scans are deterministic two-phase chunked algorithms: each worker
//! produces a partial aggregate for its contiguous chunk, the chunk
//! aggregates are scanned sequentially, and a second pass writes the final
//! prefixes. Because chunk boundaries depend only on the input length and
//! the executor's chunk policy, output is identical for any worker count.

use crate::executor::Executor;
use crate::shared::SharedSlice;

/// Generic exclusive scan with a caller-supplied associative operator.
///
/// Returns the scanned vector and the total aggregate (the value that would
/// occupy index `n` — CUB's "carry-out"). The paper's Algorithm 2 relies on
/// exactly this shape: `offsets = scan(counts)` plus the total to size the
/// next clique-list level.
pub fn exclusive_scan_by<T, Op>(exec: &Executor, input: &[T], identity: T, op: Op) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let n = input.len();
    if n == 0 {
        return (Vec::new(), identity);
    }
    let chunks = exec.num_chunks(n);
    if chunks == 1 {
        let mut out = Vec::with_capacity(n);
        let mut acc = identity;
        for &v in input {
            out.push(acc);
            acc = op(acc, v);
        }
        return (out, acc);
    }

    // Phase 1: per-chunk aggregates.
    let mut partials = vec![identity; chunks];
    {
        let partials_shared = SharedSlice::new(&mut partials);
        exec.for_each_chunk(n, |chunk_id, range| {
            let mut acc = identity;
            for &v in &input[range] {
                acc = op(acc, v);
            }
            // SAFETY: one write per chunk id.
            unsafe { partials_shared.write(chunk_id, acc) };
        });
    }

    // Sequential scan of the (small) aggregate array.
    let mut carry = identity;
    let mut chunk_offsets = Vec::with_capacity(chunks);
    for &p in &partials {
        chunk_offsets.push(carry);
        carry = op(carry, p);
    }

    // Phase 2: write final prefixes.
    let mut out = vec![identity; n];
    {
        let out_shared = SharedSlice::new(&mut out);
        exec.for_each_chunk(n, |chunk_id, range| {
            let mut acc = chunk_offsets[chunk_id];
            for i in range {
                // SAFETY: chunks are disjoint index ranges.
                unsafe { out_shared.write(i, acc) };
                acc = op(acc, input[i]);
            }
        });
    }
    (out, carry)
}

/// Exclusive prefix sum over `usize` values; returns `(prefixes, total)`.
pub fn exclusive_scan(exec: &Executor, input: &[usize]) -> (Vec<usize>, usize) {
    exclusive_scan_by(exec, input, 0usize, |a, b| a + b)
}

/// Inclusive prefix sum over `usize` values.
pub fn inclusive_scan(exec: &Executor, input: &[usize]) -> Vec<usize> {
    let (mut out, total) = exclusive_scan(exec, input);
    if out.is_empty() {
        return out;
    }
    // Shift left by one and append the total.
    out.remove(0);
    out.push(total);
    out
}

/// Generic deterministic reduction with an associative operator.
pub fn reduce_by<T, Op>(exec: &Executor, input: &[T], identity: T, op: Op) -> T
where
    T: Copy + Send + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let n = input.len();
    let chunks = exec.num_chunks(n);
    if chunks <= 1 {
        return input.iter().fold(identity, |acc, &v| op(acc, v));
    }
    let mut partials = vec![identity; chunks];
    {
        let partials_shared = SharedSlice::new(&mut partials);
        exec.for_each_chunk(n, |chunk_id, range| {
            let mut acc = identity;
            for &v in &input[range] {
                acc = op(acc, v);
            }
            // SAFETY: one write per chunk id.
            unsafe { partials_shared.write(chunk_id, acc) };
        });
    }
    partials.into_iter().fold(identity, op)
}

/// Sum reduction over `usize` values.
pub fn reduce(exec: &Executor, input: &[usize]) -> usize {
    reduce_by(exec, input, 0usize, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(input: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0;
        for &v in input {
            out.push(acc);
            acc += v;
        }
        (out, acc)
    }

    #[test]
    fn empty_scan() {
        let exec = Executor::new(4);
        let (out, total) = exclusive_scan(&exec, &[]);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn small_scan_matches_reference() {
        let exec = Executor::new(4);
        let input = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let (out, total) = exclusive_scan(&exec, &input);
        assert_eq!(out, vec![0, 3, 4, 8, 9, 14, 23, 25]);
        assert_eq!(total, 31);
    }

    #[test]
    fn large_scan_matches_reference() {
        let exec = Executor::new(7);
        let input: Vec<usize> = (0..200_000).map(|i| (i * 2654435761) % 17).collect();
        let (out, total) = exclusive_scan(&exec, &input);
        let (expected, expected_total) = reference_exclusive(&input);
        assert_eq!(out, expected);
        assert_eq!(total, expected_total);
    }

    #[test]
    fn inclusive_scan_matches() {
        let exec = Executor::new(4);
        let input = [1usize, 2, 3, 4];
        assert_eq!(inclusive_scan(&exec, &input), vec![1, 3, 6, 10]);
        assert!(inclusive_scan(&exec, &[]).is_empty());
    }

    #[test]
    fn scan_deterministic_across_worker_counts() {
        let input: Vec<usize> = (0..100_000).map(|i| i % 7).collect();
        let baseline = exclusive_scan(&Executor::new(1), &input);
        for workers in [2, 3, 8] {
            assert_eq!(exclusive_scan(&Executor::new(workers), &input), baseline);
        }
    }

    #[test]
    fn reduce_sums() {
        let exec = Executor::new(4);
        let input: Vec<usize> = (1..=100_000).collect();
        assert_eq!(reduce(&exec, &input), 100_000 * 100_001 / 2);
    }

    #[test]
    fn reduce_by_max() {
        let exec = Executor::new(4);
        let input: Vec<u32> = (0..150_000).map(|i| (i * 37) % 99_991).collect();
        let max = reduce_by(&exec, &input, 0u32, |a, b| a.max(b));
        assert_eq!(max, *input.iter().max().unwrap());
    }

    #[test]
    fn generic_scan_with_max_operator() {
        let exec = Executor::new(4);
        let input = [2u32, 9, 1, 7, 3];
        let (out, total) = exclusive_scan_by(&exec, &input, 0u32, |a, b| a.max(b));
        assert_eq!(out, vec![0, 2, 9, 9, 9]);
        assert_eq!(total, 9);
    }
}
