//! Cooperative cancellation for the virtual device.
//!
//! A real GPU cannot abort a kernel mid-flight, but a host-side service can
//! stop *issuing* launches: cancellation is checked at launch boundaries
//! (the bulk-synchronous points where the paper's pipeline returns to the
//! host anyway), so a cancelled solve stops at the next boundary, unwinds
//! through the same typed-error path as a device fault, and releases every
//! arena and device-memory charge via the existing RAII guards.
//!
//! A [`CancelToken`] is shared between the requester (who calls
//! [`CancelToken::cancel`] or constructs it with a deadline) and the
//! executor (installed via `Executor::set_cancel_token`, polled via
//! `Executor::check_cancelled`). Cost when no token is installed: one
//! relaxed atomic load and a branch per poll, the same cached-flag pattern
//! as tracing and fault injection.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct CancelCells {
    /// Latched once the token is cancelled (explicitly or by deadline).
    cancelled: AtomicBool,
    /// Whether the latch was tripped by the deadline rather than an
    /// explicit [`CancelToken::cancel`] call.
    by_deadline: AtomicBool,
    /// Optional wall-clock deadline; polling past it trips the latch.
    deadline: Option<Instant>,
}

/// Shared cancellation flag with an optional deadline. Cloning shares the
/// flag, so the copy installed on an executor and the copy held by the
/// requester observe the same state.
#[derive(Clone)]
pub struct CancelToken {
    cells: Arc<CancelCells>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A token that additionally cancels itself at `deadline`: any poll at
    /// or after that instant trips the latch and reports
    /// [`Cancelled::deadline_exceeded`].
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline))
    }

    fn build(deadline: Option<Instant>) -> Self {
        Self {
            cells: Arc::new(CancelCells {
                cancelled: AtomicBool::new(false),
                by_deadline: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.cells.deadline
    }

    /// Trips the latch. Idempotent; every subsequent poll on any clone
    /// fails with [`Cancelled`].
    pub fn cancel(&self) {
        self.cells.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled (polls the deadline too).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// Polls the token: `Err` once cancelled or past the deadline. The
    /// deadline latches on first observation so later polls agree on
    /// [`Cancelled::deadline_exceeded`] without re-reading the clock.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.cells.cancelled.load(Ordering::Relaxed) {
            return Err(Cancelled {
                deadline_exceeded: self.cells.by_deadline.load(Ordering::Relaxed),
            });
        }
        if let Some(deadline) = self.cells.deadline {
            if Instant::now() >= deadline {
                self.cells.by_deadline.store(true, Ordering::Relaxed);
                self.cells.cancelled.store(true, Ordering::Relaxed);
                return Err(Cancelled {
                    deadline_exceeded: true,
                });
            }
        }
        Ok(())
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.cells.cancelled.load(Ordering::Relaxed))
            .field("deadline", &self.cells.deadline)
            .finish()
    }
}

/// Typed cancellation outcome, carried by `DeviceError::Cancelled` through
/// the same unwinding path as device faults. Never produced by the fault
/// injector (`is_injected()` is false), so the recovery ladder propagates
/// it instead of retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// True when the deadline tripped the token rather than an explicit
    /// [`CancelToken::cancel`] call.
    pub deadline_exceeded: bool,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.deadline_exceeded {
            write!(f, "solve cancelled: deadline exceeded")
        } else {
            write!(f, "solve cancelled by request")
        }
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_latches_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(token.check().is_ok());
        assert!(!clone.is_cancelled());
        token.cancel();
        let err = clone.check().unwrap_err();
        assert!(!err.deadline_exceeded);
        assert!(token.is_cancelled());
    }

    #[test]
    fn past_deadline_trips_and_reports_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let err = token.check().unwrap_err();
        assert!(err.deadline_exceeded);
        // The latch holds on repeat polls.
        assert!(token.check().unwrap_err().deadline_exceeded);
    }

    #[test]
    fn future_deadline_does_not_cancel_yet() {
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(token.check().is_ok());
        token.cancel();
        let err = token.check().unwrap_err();
        assert!(
            !err.deadline_exceeded,
            "explicit cancel before the deadline is not a deadline trip"
        );
    }

    #[test]
    fn display_distinguishes_deadline_from_request() {
        let by_request = Cancelled {
            deadline_exceeded: false,
        };
        let by_deadline = Cancelled {
            deadline_exceeded: true,
        };
        assert!(by_request.to_string().contains("request"));
        assert!(by_deadline.to_string().contains("deadline"));
    }
}
