//! Deterministic in-tree pseudo-random number generation.
//!
//! The repo's generators, corpus and tests previously leaned on the `rand`
//! crate; this module replaces it with a self-contained implementation so
//! the workspace builds with no external dependencies (the paper's own
//! system is similarly self-contained apart from CUB, which `gmc-dpp`
//! reimplements). The generator is xoshiro256** (Blackman & Vigna), seeded
//! through SplitMix64 exactly as the reference implementation recommends —
//! a well-studied, fast generator whose output is identical on every
//! platform, which is all the reproduction needs: *deterministic* synthetic
//! inputs, not cryptographic ones.
//!
//! The API mirrors the small subset of `rand` the repo actually used:
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`]
//! (Bernoulli), [`Rng::shuffle`] (Fisher–Yates), plus a [`Rng::geometric`]
//! draw for skip-sampling generators.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the seed expander recommended for xoshiro seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// Two generators seeded identically produce identical sequences on every
/// platform, thread and run — the repo's determinism guarantees (seeded
/// corpus graphs, seeded window shuffles) rest on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next raw 64-bit output (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A fresh generator whose stream is independent of this one's
    /// continuation — for handing deterministic sub-streams to parallel or
    /// recursive work.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Uniform `u64` in `[0, bound)` by rejection sampling (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject the partial final copy of [0, bound) in u64 space.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform value from `range`, like `rand`'s `gen_range`. Supports
    /// `Range` and `RangeInclusive` of the unsigned integer types plus
    /// `Range<f64>`. Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Alias for [`Rng::gen_bool`] under its distribution name.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.gen_bool(p)
    }

    /// A geometric draw: the number of consecutive Bernoulli(`p`) failures
    /// before the first success (support `0, 1, 2, …`). Computed by
    /// inversion, the closed form skip-sampling generators use.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric needs 0 < p <= 1");
        if p >= 1.0 {
            return 0;
        }
        // U in (0, 1]: take 1 - gen_f64() so ln() never sees zero.
        let u = 1.0 - self.gen_f64();
        let skips = u.ln() / (1.0 - p).ln();
        if skips >= u64::MAX as f64 {
            u64::MAX
        } else {
            skips as u64
        }
    }

    /// In-place Fisher–Yates shuffle, deterministic per seed.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value (consumes the range descriptor).
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        let v = self.start + rng.gen_f64() * span;
        // Floating-point rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_from_splitmix_seed_zero() {
        // First outputs of xoshiro256** seeded via SplitMix64(0); pinned so
        // an accidental algorithm change cannot silently reshuffle every
        // seeded corpus graph in the repo.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        assert_ne!(first[0], first[1]);
        // Distinct seeds give distinct streams.
        assert_ne!(Rng::seed_from_u64(1).next_u64(), first[0]);
    }

    #[test]
    fn identical_sequences_across_runs_and_threads() {
        // The determinism contract: a seed fully determines the stream no
        // matter which thread produces it or how many run concurrently.
        let reference: Vec<u64> = {
            let mut rng = Rng::seed_from_u64(0xDEC0DE);
            (0..4096).map(|_| rng.next_u64()).collect()
        };
        for threads in [1usize, 2, 8] {
            let sequences: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut rng = Rng::seed_from_u64(0xDEC0DE);
                            (0..4096).map(|_| rng.next_u64()).collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for seq in sequences {
                assert_eq!(seq, reference, "{threads} threads");
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn geometric_has_the_right_mean() {
        let mut rng = Rng::seed_from_u64(5);
        let p = 0.2;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expected = (1.0 - p) / p; // 4.0
        assert!((mean - expected).abs() < 0.2, "mean {mean}");
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(9).shuffle(&mut a);
        Rng::seed_from_u64(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..100).collect();
        Rng::seed_from_u64(10).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent_a = Rng::seed_from_u64(21);
        let mut parent_b = Rng::seed_from_u64(21);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        for _ in 0..100 {
            assert_eq!(child_a.next_u64(), child_b.next_u64());
        }
        // Parent streams continue identically after the fork.
        assert_eq!(parent_a.next_u64(), parent_b.next_u64());
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = Rng::seed_from_u64(2);
        let items = [10u32, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        assert_eq!(rng.choose::<u32>(&[]), None);
    }
}
