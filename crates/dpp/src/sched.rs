//! Launch scheduling: how a grid of virtual threads is carved into units of
//! work and handed to the executor's OS workers.
//!
//! The paper's kernels are highly skewed per virtual thread — a count/emit
//! entry's work is proportional to its candidate-list length and vertex
//! degree — so the executor's historical mapping (one static contiguous
//! chunk per worker) lets a single heavy chunk serialise a whole launch.
//! [`Schedule`] adds *morsel-driven* dynamic modes: the grid is decomposed
//! into a fixed, worker-count-independent set of contiguous morsels, and
//! idle workers claim morsel indices from a shared atomic cursor.
//!
//! Two invariants make this safe for a solver that promises bit-identical
//! output across worker counts and fault replays:
//!
//! * **Decomposition is deterministic.** Morsel boundaries are a pure
//!   function of `(n, grain)` — or of `(n, grain, costs)` for weighted
//!   launches — never of the worker count or of timing. Only the
//!   *assignment* of morsels to workers is dynamic.
//! * **Kernels write disjoint index ranges.** Every launch body in this
//!   repo writes only locations owned by its index, so executing the same
//!   index set under any morsel-to-worker assignment produces identical
//!   memory contents at the launch's closing barrier.
//!
//! Note that [`Executor::for_each_chunk`] is *not* scheduled: primitives
//! built on it (the two-phase and decoupled look-back scans) index their
//! partials by chunk id and — for the look-back scan — spin on predecessor
//! chunks, which requires all chunks resident on distinct workers at once.
//! Chunked launches always keep the static one-chunk-per-worker mapping.
//!
//! [`Executor::for_each_chunk`]: crate::Executor::for_each_chunk

/// Default morsel size (indices) for [`Schedule::Morsel`] when no grain is
/// given (`GMC_SCHED=morsel`). Small enough that a skewed 10k-entry grid
/// decomposes into ~10 claimable units, large enough that the shared-cursor
/// `fetch_add` amortises to noise for any kernel worth pooling.
pub const DEFAULT_MORSEL_GRAIN: usize = 1024;

/// Upper bound on morsels per launch: caps claim-cursor traffic on huge
/// grids (a 100M-entry launch still decomposes into at most this many
/// units, each ≥ 24k indices). Worker-count independent by construction.
pub const MAX_MORSELS: usize = 4096;

/// Guided decomposition carves `remaining / GUIDED_DIVISOR` indices per
/// morsel: early morsels are big (low claim traffic), late morsels shrink
/// geometrically so stragglers level out. The divisor is fixed — *not*
/// derived from the worker count — to keep boundaries machine-independent.
const GUIDED_DIVISOR: usize = 16;

/// Floor for guided morsel sizes: once `remaining / GUIDED_DIVISOR` drops
/// below this, the tail is carved into flat `GUIDED_MIN_GRAIN` morsels.
const GUIDED_MIN_GRAIN: usize = 256;

/// How an [`Executor`](crate::Executor) maps a launch's virtual threads
/// onto its worker pool. Selected per executor via
/// [`Executor::set_schedule`](crate::Executor::set_schedule), at
/// construction via the `GMC_SCHED` environment variable, or per solve via
/// `SolverConfig::schedule` in `gmc-mce`.
///
/// Output is bit-identical across all variants and worker counts; the
/// variants trade dispatch overhead against load balance on skewed grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// One contiguous chunk per worker (the historical mapping). Zero
    /// scheduling overhead; a single heavy chunk serialises the launch.
    Static,
    /// Fixed-size morsels of `grain` indices claimed dynamically by idle
    /// workers from a shared atomic cursor. `GMC_SCHED=morsel` or
    /// `GMC_SCHED=morsel:<grain>`.
    Morsel {
        /// Morsel size in indices (defaults to [`DEFAULT_MORSEL_GRAIN`]).
        grain: usize,
    },
    /// Decreasing-size morsels (OpenMP-`guided`-style, but with a fixed
    /// divisor so the decomposition stays worker-count independent): big
    /// head morsels amortise claim traffic, geometrically shrinking tail
    /// morsels level out stragglers.
    Guided,
    /// The default policy: *weighted* launches — where the caller supplied
    /// per-entry cost hints — use cost-balanced morsel claiming, while
    /// unweighted launches keep the static mapping (no cost information
    /// means no reason to pay claim traffic). `GMC_SCHED=auto`.
    #[default]
    Auto,
}

impl Schedule {
    /// Reads `GMC_SCHED` (`static`/`morsel[:grain]`/`guided`/`auto`),
    /// defaulting to [`Auto`](Schedule::Auto) when unset and panicking
    /// loudly on a typo (fail-loud policy of [`gmc_trace::env`]).
    pub fn from_env() -> Self {
        gmc_trace::env::parse_or("GMC_SCHED", Schedule::Auto)
    }

    /// The morsel grain this schedule implies (dynamic modes only).
    pub(crate) fn grain(self) -> usize {
        match self {
            Schedule::Morsel { grain } => grain.max(1),
            _ => DEFAULT_MORSEL_GRAIN,
        }
    }
}

impl std::str::FromStr for Schedule {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "static" => Ok(Schedule::Static),
            "morsel" => Ok(Schedule::Morsel {
                grain: DEFAULT_MORSEL_GRAIN,
            }),
            "guided" => Ok(Schedule::Guided),
            "auto" => Ok(Schedule::Auto),
            _ => match lower.strip_prefix("morsel:") {
                Some(grain) => match grain.parse::<usize>() {
                    Ok(grain) if grain > 0 => Ok(Schedule::Morsel { grain }),
                    _ => Err(()),
                },
                None => Err(()),
            },
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Static => f.write_str("static"),
            Schedule::Morsel { grain } => write!(f, "morsel:{grain}"),
            Schedule::Guided => f.write_str("guided"),
            Schedule::Auto => f.write_str("auto"),
        }
    }
}

/// Uniform morsel decomposition of an `n`-index grid at the requested
/// grain: returns `(effective_grain, morsel_count)`. The count is capped at
/// [`MAX_MORSELS`] (the grain grows to compensate) and the result depends
/// only on `(n, grain)` — never on the worker count.
pub(crate) fn uniform_morsels(n: usize, grain: usize) -> (usize, usize) {
    debug_assert!(n > 0);
    let grain = grain.max(1);
    let count = n.div_ceil(grain).clamp(1, MAX_MORSELS);
    let grain = n.div_ceil(count);
    (grain, n.div_ceil(grain))
}

/// Guided decomposition boundaries: `boundaries[m]..boundaries[m + 1]` is
/// morsel `m`. Starts at `0`, ends at `n`, strictly increasing. A pure
/// function of `n`.
pub(crate) fn guided_boundaries(n: usize) -> Vec<usize> {
    debug_assert!(n > 0);
    let mut boundaries = Vec::with_capacity(guided_morsel_count(n) + 1);
    boundaries.push(0usize);
    let mut start = 0usize;
    while start < n {
        let remaining = n - start;
        let size = (remaining / GUIDED_DIVISOR)
            .max(GUIDED_MIN_GRAIN)
            .min(remaining);
        start += size;
        boundaries.push(start);
    }
    boundaries
}

/// Number of morsels [`guided_boundaries`] will produce, without building
/// the vector (used for trace span args on the disabled-allocation path).
pub(crate) fn guided_morsel_count(n: usize) -> usize {
    let mut count = 0usize;
    let mut start = 0usize;
    while start < n {
        let remaining = n - start;
        let size = (remaining / GUIDED_DIVISOR)
            .max(GUIDED_MIN_GRAIN)
            .min(remaining);
        start += size;
        count += 1;
    }
    count
}

/// Exact cost-cut rule shared by the sequential and chunk-parallel weighted
/// planners: boundary `k` (for `k` in `1..morsels`) is the smallest index
/// `i` whose *inclusive* cost prefix satisfies `prefix(i) * morsels >=
/// k * total`. Pure integer arithmetic (`u128` products), so the sequential
/// and parallel planners — and any worker count — agree bit for bit.
///
/// `emit(k, i)` is called exactly once per interior boundary, in increasing
/// `k`, by whichever pass observes the crossing.
#[inline]
pub(crate) fn emit_cost_crossings(
    morsels: usize,
    total: u128,
    prefix_before: u64,
    prefix_after: u64,
    index: usize,
    next_k: &mut usize,
    mut emit: impl FnMut(usize, usize),
) {
    debug_assert!(prefix_after >= prefix_before);
    let m = morsels as u128;
    while *next_k < morsels && u128::from(prefix_after) * m >= (*next_k as u128) * total {
        emit(*next_k, index + 1);
        *next_k += 1;
    }
}

/// First interior boundary `k` a chunk starting at exclusive prefix
/// `prefix_start` is responsible for: the smallest `k ≥ 1` with
/// `k * total > prefix_start * morsels` (crossings at or before the chunk
/// start belong to a predecessor).
#[inline]
pub(crate) fn first_crossing_k(morsels: usize, total: u128, prefix_start: u64) -> usize {
    let scaled = u128::from(prefix_start) * morsels as u128;
    ((scaled / total) as usize + 1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn schedule_parses_and_displays() {
        for (raw, want) in [
            ("static", Schedule::Static),
            ("STATIC", Schedule::Static),
            (
                "morsel",
                Schedule::Morsel {
                    grain: DEFAULT_MORSEL_GRAIN,
                },
            ),
            ("morsel:512", Schedule::Morsel { grain: 512 }),
            ("guided", Schedule::Guided),
            ("auto", Schedule::Auto),
        ] {
            assert_eq!(Schedule::from_str(raw), Ok(want), "{raw}");
            // Display round-trips through FromStr.
            assert_eq!(Schedule::from_str(&want.to_string()), Ok(want));
        }
        for bad in ["banana", "morsel:", "morsel:0", "morsel:x", "guided:4"] {
            assert!(Schedule::from_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn uniform_morsels_cover_and_cap() {
        for (n, grain) in [
            (1usize, 1usize),
            (10, 3),
            (2049, 1024),
            (1 << 20, 64),
            (7, 100),
        ] {
            let (g, count) = uniform_morsels(n, grain);
            assert!((1..=MAX_MORSELS).contains(&count), "n={n} grain={grain}");
            // Morsels tile 0..n exactly.
            assert!(g * count >= n && g * (count - 1) < n, "n={n} grain={grain}");
        }
        // Cap kicks in on huge grids with tiny grains.
        let (g, count) = uniform_morsels(100_000_000, 1);
        assert_eq!(count, MAX_MORSELS);
        assert!(g * count >= 100_000_000);
    }

    #[test]
    fn guided_boundaries_are_strictly_increasing_and_cover() {
        for n in [1usize, 255, 256, 4096, 100_000, 1 << 22] {
            let b = guided_boundaries(n);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), n);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "n={n}");
            assert_eq!(b.len() - 1, guided_morsel_count(n), "n={n}");
            // Sizes never grow as the sweep progresses.
            let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
            assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "n={n}: {sizes:?}");
        }
    }
}
