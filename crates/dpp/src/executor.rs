use crate::cancel::{CancelToken, Cancelled};
use crate::fault::{FaultInjector, LaunchError};
use crate::sched::{self, Schedule};
use crate::stats::{LaunchStats, ScheduleCells, ScheduleStats, StatsCells};
use gmc_trace::{SpanGuard, Tracer};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Kernel name charged for launches issued through the un-named entry
/// points ([`Executor::for_each_indexed`] and friends). Call the `_named`
/// variants to attribute launches in [`LaunchStats::per_kernel`] and traces.
pub const DEFAULT_KERNEL_NAME: &str = "unnamed";

/// Default for [`Executor::sequential_grid_limit`]: launches below this
/// element count run inline on the calling thread. Real GPU launches have a
/// fixed overhead that dwarfs tiny grids; here the analogue is condvar
/// wake-up latency, so small grids are executed sequentially. Results are
/// identical either way. The value was picked from a `micro_primitives`
/// sweep (`GMC_SEQ_GRID` ∈ {512, 1024, 2048, 4096, 8192} over the scan and
/// select groups): dispatch overhead still beats the pool below ~2k elements
/// on the benchmark machine, and larger limits start serialising grids that
/// would profit from workers.
pub const DEFAULT_SEQUENTIAL_GRID_LIMIT: usize = 2048;

/// Initial per-executor limit: the `GMC_SEQ_GRID` environment variable when
/// set, otherwise [`DEFAULT_SEQUENTIAL_GRID_LIMIT`]. An unparsable value
/// panics with a clear message (see [`gmc_trace::env`]) instead of being
/// silently ignored.
fn initial_sequential_grid_limit() -> usize {
    gmc_trace::env::parse_or("GMC_SEQ_GRID", DEFAULT_SEQUENTIAL_GRID_LIMIT)
}

/// A task dispatched to the pool: invoked once per worker with the worker's
/// index. Stored as a raw fat pointer so that borrowed captures are allowed;
/// the launcher blocks until every worker has finished, which keeps the
/// borrow alive for the full execution.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` and the launch protocol guarantees it
// outlives every use (the launching thread blocks until `pending == 0`).
unsafe impl Send for TaskPtr {}

struct PoolState {
    task: Option<TaskPtr>,
    /// Incremented per launch; workers run each generation exactly once.
    generation: u64,
    /// Workers that have not yet finished the current generation.
    pending: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    work_done: Condvar,
    panicked: AtomicBool,
}

impl PoolShared {
    /// Locks the pool state. Worker panics are caught around the task call
    /// (never while the lock is held), so poisoning can only come from a
    /// panic in the launcher's own bookkeeping — recovering the guard is
    /// safe and keeps the pool usable after a propagated kernel panic.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Per-worker balance measurement for one pooled launch: how many work
/// units (static chunks or dynamic morsels) the worker executed and how
/// long it was busy. Written only by the owning worker during a launch and
/// read by the launcher after the closing barrier, so relaxed atomics
/// suffice; slots are reset by the launcher before each pooled launch.
#[derive(Debug, Default)]
struct BalanceSlot {
    claims: AtomicU64,
    busy_ns: AtomicU64,
}

/// Grid size at which the weighted-launch boundary planner switches from a
/// single sequential pass to the chunk-parallel two-phase shape. Both
/// planners implement the same exact integer crossing rule, so the switch
/// (and the worker count) never changes the cut.
const WEIGHT_PLAN_PARALLEL_THRESHOLD: usize = 1 << 16;

/// A launch's morsel decomposition, as consumed by the dynamic claim loop.
/// Uniform decompositions stay implicit (no allocation); guided and
/// cost-cut decompositions carry explicit boundaries where
/// `bounds[m]..bounds[m + 1]` is morsel `m`.
enum Boundaries<'a> {
    Uniform { grain: usize, count: usize },
    Explicit(&'a [usize]),
}

impl Boundaries<'_> {
    #[inline]
    fn count(&self) -> usize {
        match self {
            Boundaries::Uniform { count, .. } => *count,
            Boundaries::Explicit(bounds) => bounds.len() - 1,
        }
    }

    #[inline]
    fn range(&self, m: usize, n: usize) -> std::ops::Range<usize> {
        match self {
            Boundaries::Uniform { grain, .. } => {
                let start = m * grain;
                start..(start + grain).min(n)
            }
            Boundaries::Explicit(bounds) => bounds[m]..bounds[m + 1],
        }
    }
}

/// Encoding of [`Schedule`] into two lock-free cells so the pooled dispatch
/// path pays only relaxed loads (no enum behind a lock).
const SCHED_STATIC: u8 = 0;
const SCHED_MORSEL: u8 = 1;
const SCHED_GUIDED: u8 = 2;
const SCHED_AUTO: u8 = 3;

fn encode_schedule(schedule: Schedule) -> (u8, usize) {
    match schedule {
        Schedule::Static => (SCHED_STATIC, sched::DEFAULT_MORSEL_GRAIN),
        Schedule::Morsel { grain } => (SCHED_MORSEL, grain.max(1)),
        Schedule::Guided => (SCHED_GUIDED, sched::DEFAULT_MORSEL_GRAIN),
        Schedule::Auto => (SCHED_AUTO, sched::DEFAULT_MORSEL_GRAIN),
    }
}

fn decode_schedule(mode: u8, grain: usize) -> Schedule {
    match mode {
        SCHED_STATIC => Schedule::Static,
        SCHED_MORSEL => Schedule::Morsel { grain },
        SCHED_GUIDED => Schedule::Guided,
        _ => Schedule::Auto,
    }
}

struct ExecutorInner {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    num_workers: usize,
    stats: StatsCells,
    /// Active [`Schedule`], split into a mode tag and a morsel grain so the
    /// dispatch fast path is two relaxed loads (see [`Executor::schedule`]).
    schedule_mode: AtomicU8,
    schedule_grain: AtomicUsize,
    /// Scheduling/balance counters (see [`Executor::schedule_stats`]).
    sched_stats: ScheduleCells,
    /// One balance slot per worker, reused across launches (launches never
    /// overlap — `run_on_pool` asserts `pending == 0`).
    balance: Vec<BalanceSlot>,
    /// Simulated fixed cost per launch, in nanoseconds (see
    /// [`Executor::set_launch_overhead`]).
    launch_overhead_ns: std::sync::atomic::AtomicU64,
    /// Grids at or below this size run inline (see
    /// [`Executor::set_sequential_grid_limit`]).
    sequential_grid_limit: AtomicUsize,
    /// Recording handle for launch spans (see [`Executor::set_tracer`]).
    tracer: RwLock<Tracer>,
    /// Cache of "is a live tracer installed": the disabled-tracing fast
    /// path is this one relaxed load and a branch per launch.
    trace_on: AtomicBool,
    /// Armed fault injector (see [`Executor::set_fault_injector`]);
    /// `fault_on` caches whether it can fail launches so the fault-free
    /// path of the `try_*` wrappers is one relaxed load and a branch.
    fault: RwLock<Option<FaultInjector>>,
    fault_on: AtomicBool,
    /// Installed cancellation token (see [`Executor::set_cancel_token`]);
    /// `cancel_on` caches whether one is present so the uncancellable path
    /// of [`Executor::check_cancelled`] is one relaxed load and a branch.
    cancel: RwLock<Option<CancelToken>>,
    cancel_on: AtomicBool,
}

/// Bulk-synchronous parallel executor: the reproduction's stand-in for a GPU.
///
/// Each launch models one CUDA kernel: a grid of `n` virtual threads, each
/// running the same closure on its own index, with an implicit barrier at the
/// end. Virtual threads are mapped onto a persistent pool of OS workers in
/// contiguous chunks, so output is deterministic and independent of the
/// worker count.
///
/// Cloning an `Executor` is cheap and shares the pool.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecutorInner>,
}

impl Executor {
    /// Creates an executor with `num_workers` OS worker threads (minimum 1).
    pub fn new(num_workers: usize) -> Self {
        let num_workers = num_workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                task: None,
                generation: 0,
                pending: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..num_workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gmc-dpp-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("failed to spawn dpp worker thread")
            })
            .collect();
        let initial_schedule = Schedule::from_env();
        Self {
            inner: Arc::new(ExecutorInner {
                shared,
                workers,
                num_workers,
                stats: StatsCells::default(),
                schedule_mode: AtomicU8::new(encode_schedule(initial_schedule).0),
                schedule_grain: AtomicUsize::new(encode_schedule(initial_schedule).1),
                sched_stats: ScheduleCells::default(),
                balance: (0..num_workers).map(|_| BalanceSlot::default()).collect(),
                launch_overhead_ns: std::sync::atomic::AtomicU64::new(0),
                sequential_grid_limit: AtomicUsize::new(initial_sequential_grid_limit()),
                tracer: RwLock::new(Tracer::disabled()),
                trace_on: AtomicBool::new(false),
                fault: RwLock::new(None),
                fault_on: AtomicBool::new(false),
                cancel: RwLock::new(None),
                cancel_on: AtomicBool::new(false),
            }),
        }
    }

    /// Creates an executor sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of OS worker threads backing the pool.
    pub fn num_workers(&self) -> usize {
        self.inner.num_workers
    }

    /// Snapshot of launch counters accumulated so far.
    pub fn stats(&self) -> LaunchStats {
        self.inner.stats.snapshot()
    }

    /// Resets launch counters (including [`Executor::schedule_stats`]) to
    /// zero.
    pub fn reset_stats(&self) {
        self.inner.stats.reset();
        self.inner.sched_stats.reset();
    }

    /// Selects how pooled launches map virtual threads onto workers (see
    /// [`Schedule`]). Defaults to [`Schedule::Auto`], overridable at
    /// executor construction via the `GMC_SCHED` environment variable.
    /// Results are bit-identical under every schedule; this only tunes
    /// load balance versus dispatch overhead.
    ///
    /// Grids at or below [`Executor::sequential_grid_limit`] (and every
    /// launch on a single-worker executor) run inline regardless of the
    /// schedule — the inline check precedes the schedule load, so small
    /// grids never pay any scheduling cost.
    pub fn set_schedule(&self, schedule: Schedule) {
        let (mode, grain) = encode_schedule(schedule);
        self.inner.schedule_mode.store(mode, Ordering::Relaxed);
        self.inner.schedule_grain.store(grain, Ordering::Relaxed);
    }

    /// The active launch schedule — the exact pair of relaxed loads the
    /// pooled dispatch path pays per launch (probed by the
    /// `GMC_PERF_GATE=1` micro bench).
    #[inline]
    pub fn schedule(&self) -> Schedule {
        decode_schedule(
            self.inner.schedule_mode.load(Ordering::Relaxed),
            self.inner.schedule_grain.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of scheduling and load-balance counters accumulated so far
    /// (see [`ScheduleStats`]); reset together with [`Executor::reset_stats`].
    pub fn schedule_stats(&self) -> ScheduleStats {
        self.inner.sched_stats.snapshot()
    }

    /// Installs a tracer: every subsequent launch records one span (kernel
    /// name, grid size, chunk count, inline-vs-pool path) into it. Pass
    /// [`Tracer::disabled`] to stop recording. With no (or a disabled)
    /// tracer installed, the per-launch cost is a single relaxed atomic
    /// load.
    pub fn set_tracer(&self, tracer: Tracer) {
        let on = tracer.is_enabled();
        *self.inner.tracer.write().unwrap() = tracer;
        self.inner.trace_on.store(on, Ordering::Relaxed);
    }

    /// The installed tracer (disabled when none was set). Primitives and
    /// solver phases use this to nest their own spans around launches.
    pub fn tracer(&self) -> Tracer {
        if !self.inner.trace_on.load(Ordering::Relaxed) {
            return Tracer::disabled();
        }
        self.inner.tracer.read().unwrap().clone()
    }

    /// Arms (or with `None` disarms) fault injection for the fallible
    /// `try_*` launch wrappers: each such launch first rolls the injector's
    /// launch fault and returns [`LaunchError`] — without running the
    /// kernel — when it fires. The infallible wrappers never consult the
    /// injector, so unplumbed call sites cannot panic while faults are
    /// armed; fault coverage is exactly the sites converted to `try_*`.
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        let on = injector
            .as_ref()
            .is_some_and(|inj| inj.plan().launch_rate > 0.0);
        *self.inner.fault.write().unwrap() = injector;
        self.inner.fault_on.store(on, Ordering::Relaxed);
    }

    /// The armed fault injector, if any. Pipelines use this to reach the
    /// shared recovery counters without threading the injector by hand.
    pub fn fault_injector(&self) -> Option<FaultInjector> {
        self.inner.fault.read().unwrap().clone()
    }

    /// Whether a launch-faulting injector is armed — the exact relaxed load
    /// the `try_*` wrappers pay per launch when faults are disabled (probed
    /// by the `GMC_PERF_GATE=1` micro bench).
    #[inline]
    pub fn fault_armed(&self) -> bool {
        self.inner.fault_on.load(Ordering::Relaxed)
    }

    /// Installs (or with `None` removes) a cooperative cancellation token.
    /// Pipelines poll it at launch boundaries via
    /// [`Executor::check_cancelled`]; tripping the token makes the next
    /// poll fail with [`Cancelled`], which callers surface as
    /// `DeviceError::Cancelled` and unwind through the same RAII release
    /// path as device faults. With no token installed the poll is one
    /// relaxed load and a branch.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        let on = token.is_some();
        *self.inner.cancel.write().unwrap() = token;
        self.inner.cancel_on.store(on, Ordering::Relaxed);
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        if !self.inner.cancel_on.load(Ordering::Relaxed) {
            return None;
        }
        self.inner.cancel.read().unwrap().clone()
    }

    /// Polls the installed cancellation token; `Err` means the caller must
    /// stop issuing launches and unwind. Pipelines call this at level and
    /// window boundaries — the bulk-synchronous points where control
    /// returns to the host — not inside kernels, mirroring how a host
    /// process can only stop *between* GPU launches.
    #[inline]
    pub fn check_cancelled(&self) -> Result<(), Cancelled> {
        if !self.inner.cancel_on.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.poll_cancel_token()
    }

    /// Token-installed slow path, out of line so the uncancellable poll
    /// stays one relaxed load and a branch.
    #[cold]
    fn poll_cancel_token(&self) -> Result<(), Cancelled> {
        let guard = self.inner.cancel.read().unwrap();
        match guard.as_ref() {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// Rolls one launch fault for `name`; `Err` means the launch must not
    /// run. The disabled path is one relaxed load and a branch. The `try_*`
    /// wrappers call this per launch; composite primitives (scan, select)
    /// call it once up front so a faulted call fails before mutating its
    /// output.
    #[inline]
    pub fn check_launch_fault(&self, name: &'static str) -> Result<(), LaunchError> {
        if !self.inner.fault_on.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.roll_injected_launch(name)
    }

    /// Injected-launch slow path, out of line so the fault-free `try_*`
    /// launch stays one relaxed load and a branch.
    #[cold]
    fn roll_injected_launch(&self, name: &'static str) -> Result<(), LaunchError> {
        let guard = self.inner.fault.read().unwrap();
        let Some(step) = guard.as_ref().and_then(FaultInjector::roll_launch) else {
            return Ok(());
        };
        if self.inner.trace_on.load(Ordering::Relaxed) {
            let tracer = self.inner.tracer.read().unwrap();
            tracer.instant("fault_launch_injected", &[("step", step as i64)]);
        }
        Err(LaunchError { kernel: name, step })
    }

    /// Opens the per-launch span, or `None` on the disabled fast path. The
    /// chunk count is computed lazily so the traced-off path never pays for
    /// a morsel-count computation.
    #[inline]
    fn launch_span(
        &self,
        name: &'static str,
        n: usize,
        chunks: impl FnOnce() -> usize,
    ) -> Option<SpanGuard> {
        if !self.inner.trace_on.load(Ordering::Relaxed) {
            return None;
        }
        let tracer = self.inner.tracer.read().unwrap();
        if !tracer.is_enabled() {
            return None;
        }
        let chunks = chunks();
        Some(tracer.span_with(
            name,
            &[
                ("n", n as i64),
                ("chunks", chunks as i64),
                ("inline", i64::from(chunks == 1)),
            ],
        ))
    }

    /// Number of work units the active schedule will decompose an `n`-index
    /// launch into: `1` on the inline path, the worker count for static
    /// mappings, and the (worker-count-independent) morsel count for
    /// dynamic ones. Trace-span metadata only; [`Executor::num_chunks`]
    /// stays the contract for [`Executor::for_each_chunk`], which is always
    /// static (see the `crate::sched` module docs).
    fn planned_chunks(&self, n: usize, weighted: bool) -> usize {
        if n <= self.sequential_grid_limit() || self.inner.num_workers == 1 {
            return 1;
        }
        let schedule = self.schedule();
        match (schedule, weighted) {
            (Schedule::Static, _) | (Schedule::Auto, false) => self.inner.num_workers,
            (Schedule::Morsel { grain }, _) => sched::uniform_morsels(n, grain).1,
            (Schedule::Guided, false) => sched::guided_morsel_count(n),
            (Schedule::Guided | Schedule::Auto, true) => {
                sched::uniform_morsels(n, schedule.grain()).1
            }
        }
    }

    /// Models a fixed per-launch cost (CUDA kernel launch + synchronisation
    /// latency, typically a handful of microseconds). Zero by default.
    ///
    /// Real GPU programs pay this cost once per kernel; algorithms that
    /// multiply launch counts — like the paper's windowed search, which
    /// reruns the expansion loop per window — feel it directly. The
    /// experiment harness enables this so the windowed-vs-full runtime
    /// trade-off (paper §V-C2) has its physical cause represented.
    pub fn set_launch_overhead(&self, overhead: std::time::Duration) {
        self.inner
            .launch_overhead_ns
            .store(overhead.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Current simulated per-launch overhead.
    pub fn launch_overhead(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.inner.launch_overhead_ns.load(Ordering::Relaxed))
    }

    /// Sets the grid size at or below which launches run inline on the
    /// calling thread instead of being dispatched to the worker pool.
    ///
    /// Defaults to [`DEFAULT_SEQUENTIAL_GRID_LIMIT`], overridable at
    /// executor construction via the `GMC_SEQ_GRID` environment variable.
    /// Results are identical either way; this only tunes dispatch overhead.
    pub fn set_sequential_grid_limit(&self, limit: usize) {
        self.inner
            .sequential_grid_limit
            .store(limit, Ordering::Relaxed);
    }

    /// Grid size at or below which launches run inline (see
    /// [`Executor::set_sequential_grid_limit`]).
    pub fn sequential_grid_limit(&self) -> usize {
        self.inner.sequential_grid_limit.load(Ordering::Relaxed)
    }

    /// Spin-waits the configured per-launch overhead (sleep granularity is
    /// far too coarse for microsecond costs).
    fn pay_launch_overhead(&self) {
        let ns = self.inner.launch_overhead_ns.load(Ordering::Relaxed);
        if ns == 0 {
            return;
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_nanos(ns);
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// Launches a grid of `n` virtual threads; virtual thread `i` runs
    /// `kernel(i)`. Blocks until all virtual threads complete (the kernel
    /// boundary barrier). The launch is attributed to
    /// [`DEFAULT_KERNEL_NAME`]; prefer [`Executor::for_each_indexed_named`]
    /// so stats and traces can tell kernels apart.
    pub fn for_each_indexed<F>(&self, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_indexed_named(DEFAULT_KERNEL_NAME, n, kernel);
    }

    /// [`Executor::for_each_indexed`] with a kernel name for the per-kernel
    /// launch-stats breakdown and the trace span.
    pub fn for_each_indexed_named<F>(&self, name: &'static str, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.inner.stats.record_launch(name, n);
        let _span = self.launch_span(name, n, || self.planned_chunks(n, false));
        self.dispatch_indexed(n, kernel);
    }

    /// Like [`Executor::for_each_indexed`] but records the launch as a
    /// *fused* one in [`LaunchStats::fused_launches`]: a kernel that folds
    /// the work of several logical pipeline stages (e.g. count + emit) into
    /// a single launch. Dispatch semantics are identical.
    pub fn for_each_indexed_fused<F>(&self, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_indexed_fused_named(DEFAULT_KERNEL_NAME, n, kernel);
    }

    /// [`Executor::for_each_indexed_fused`] with a kernel name for the
    /// per-kernel launch-stats breakdown and the trace span.
    pub fn for_each_indexed_fused_named<F>(&self, name: &'static str, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.inner.stats.record_fused_launch(name, n);
        let _span = self.launch_span(name, n, || self.planned_chunks(n, false));
        self.dispatch_indexed(n, kernel);
    }

    /// Fallible [`Executor::for_each_indexed_named`]: rolls the armed fault
    /// injector first and returns [`LaunchError`] — with the kernel not run
    /// and nothing recorded — when it fires. Production pipeline launch
    /// sites call this so injected launch faults surface as errors the
    /// solver recovers from instead of panics.
    pub fn try_for_each_indexed_named<F>(
        &self,
        name: &'static str,
        n: usize,
        kernel: F,
    ) -> Result<(), LaunchError>
    where
        F: Fn(usize) + Sync,
    {
        self.check_launch_fault(name)?;
        self.for_each_indexed_named(name, n, kernel);
        Ok(())
    }

    /// Fallible [`Executor::for_each_indexed_fused_named`]; see
    /// [`Executor::try_for_each_indexed_named`].
    pub fn try_for_each_indexed_fused_named<F>(
        &self,
        name: &'static str,
        n: usize,
        kernel: F,
    ) -> Result<(), LaunchError>
    where
        F: Fn(usize) + Sync,
    {
        self.check_launch_fault(name)?;
        self.for_each_indexed_fused_named(name, n, kernel);
        Ok(())
    }

    /// Fallible [`Executor::for_each_chunk_named`]; see
    /// [`Executor::try_for_each_indexed_named`].
    pub fn try_for_each_chunk_named<F>(
        &self,
        name: &'static str,
        n: usize,
        body: F,
    ) -> Result<(), LaunchError>
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        self.check_launch_fault(name)?;
        self.for_each_chunk_named(name, n, body);
        Ok(())
    }

    /// Fallible [`Executor::fill_indexed_named`]; see
    /// [`Executor::try_for_each_indexed_named`]. On `Err` the output slice
    /// is untouched.
    pub fn try_fill_indexed_named<T, F>(
        &self,
        name: &'static str,
        out: &mut [T],
        kernel: F,
    ) -> Result<(), LaunchError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.check_launch_fault(name)?;
        self.fill_indexed_named(name, out, kernel);
        Ok(())
    }

    /// Fallible [`Executor::map_indexed_named`]; see
    /// [`Executor::try_for_each_indexed_named`].
    pub fn try_map_indexed_named<T, F>(
        &self,
        name: &'static str,
        n: usize,
        kernel: F,
    ) -> Result<Vec<T>, LaunchError>
    where
        T: Send + Copy + Default,
        F: Fn(usize) -> T + Sync,
    {
        self.check_launch_fault(name)?;
        Ok(self.map_indexed_named(name, n, kernel))
    }

    /// [`Executor::for_each_indexed`] with per-entry cost hints: under a
    /// dynamic [`Schedule`] (including the default [`Schedule::Auto`]),
    /// morsel boundaries are cut where the summed cost crosses equal
    /// fractions of the total, so one expensive stretch of indices spreads
    /// over many claimable morsels instead of serialising one worker.
    ///
    /// `cost(i)` is a *hint* for virtual thread `i`'s relative expense
    /// (candidate-list length, CSR degree, …); it may be called more than
    /// once per index and must be cheap and pure. Results are bit-identical
    /// to the unweighted launch under every schedule and worker count — the
    /// decomposition is a pure function of `(n, grain, costs)`.
    pub fn for_each_weighted<C, F>(&self, n: usize, cost: C, kernel: F)
    where
        C: Fn(usize) -> u64 + Sync,
        F: Fn(usize) + Sync,
    {
        self.for_each_weighted_named(DEFAULT_KERNEL_NAME, n, cost, kernel);
    }

    /// [`Executor::for_each_weighted`] with a kernel name for the
    /// per-kernel launch-stats breakdown and the trace span.
    pub fn for_each_weighted_named<C, F>(&self, name: &'static str, n: usize, cost: C, kernel: F)
    where
        C: Fn(usize) -> u64 + Sync,
        F: Fn(usize) + Sync,
    {
        self.inner.stats.record_launch(name, n);
        let _span = self.launch_span(name, n, || self.planned_chunks(n, true));
        self.dispatch_weighted(n, &cost, kernel);
    }

    /// Fused-kernel variant of [`Executor::for_each_weighted_named`] (see
    /// [`Executor::for_each_indexed_fused`] for what "fused" counts).
    pub fn for_each_weighted_fused_named<C, F>(
        &self,
        name: &'static str,
        n: usize,
        cost: C,
        kernel: F,
    ) where
        C: Fn(usize) -> u64 + Sync,
        F: Fn(usize) + Sync,
    {
        self.inner.stats.record_fused_launch(name, n);
        let _span = self.launch_span(name, n, || self.planned_chunks(n, true));
        self.dispatch_weighted(n, &cost, kernel);
    }

    /// Fallible [`Executor::for_each_weighted_named`]; see
    /// [`Executor::try_for_each_indexed_named`]. Rolls the fault injector
    /// exactly once, before any planning pass runs — weighted launches
    /// consume the same number of fault steps as unweighted ones.
    pub fn try_for_each_weighted_named<C, F>(
        &self,
        name: &'static str,
        n: usize,
        cost: C,
        kernel: F,
    ) -> Result<(), LaunchError>
    where
        C: Fn(usize) -> u64 + Sync,
        F: Fn(usize) + Sync,
    {
        self.check_launch_fault(name)?;
        self.for_each_weighted_named(name, n, cost, kernel);
        Ok(())
    }

    /// Fallible [`Executor::for_each_weighted_fused_named`]; see
    /// [`Executor::try_for_each_weighted_named`].
    pub fn try_for_each_weighted_fused_named<C, F>(
        &self,
        name: &'static str,
        n: usize,
        cost: C,
        kernel: F,
    ) -> Result<(), LaunchError>
    where
        C: Fn(usize) -> u64 + Sync,
        F: Fn(usize) + Sync,
    {
        self.check_launch_fault(name)?;
        self.for_each_weighted_fused_named(name, n, cost, kernel);
        Ok(())
    }

    /// [`Executor::for_each_weighted_named`] over a CSR-style segmented
    /// layout: launches `offsets.len() - 1` virtual threads where entry
    /// `i`'s cost is its segment length `offsets[i + 1] - offsets[i]`.
    pub fn for_each_segmented_cost_named<F>(&self, name: &'static str, offsets: &[usize], kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        let n = offsets.len().saturating_sub(1);
        self.for_each_weighted_named(name, n, |i| (offsets[i + 1] - offsets[i]) as u64, kernel);
    }

    /// Fallible [`Executor::for_each_segmented_cost_named`]; see
    /// [`Executor::try_for_each_weighted_named`].
    pub fn try_for_each_segmented_cost_named<F>(
        &self,
        name: &'static str,
        offsets: &[usize],
        kernel: F,
    ) -> Result<(), LaunchError>
    where
        F: Fn(usize) + Sync,
    {
        self.check_launch_fault(name)?;
        self.for_each_segmented_cost_named(name, offsets, kernel);
        Ok(())
    }

    fn dispatch_indexed<F>(&self, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.pay_launch_overhead();
        if n == 0 {
            return;
        }
        // The inline check runs before the schedule is even loaded: grids
        // at or below the sequential limit pay zero scheduling cost no
        // matter which `Schedule` is active.
        if n <= self.sequential_grid_limit() || self.inner.num_workers == 1 {
            for i in 0..n {
                kernel(i);
            }
            return;
        }
        match self.schedule() {
            // `Auto` without cost hints has no reason to pay claim traffic.
            Schedule::Static | Schedule::Auto => self.run_static(n, &kernel),
            Schedule::Morsel { grain } => {
                let (grain, count) = sched::uniform_morsels(n, grain);
                self.run_dynamic(n, Boundaries::Uniform { grain, count }, false, &kernel);
            }
            Schedule::Guided => {
                let bounds = sched::guided_boundaries(n);
                self.run_dynamic(n, Boundaries::Explicit(&bounds), false, &kernel);
            }
        }
    }

    fn dispatch_weighted<F, C>(&self, n: usize, cost: &C, kernel: F)
    where
        F: Fn(usize) + Sync,
        C: Fn(usize) -> u64 + Sync,
    {
        self.pay_launch_overhead();
        if n == 0 {
            return;
        }
        if n <= self.sequential_grid_limit() || self.inner.num_workers == 1 {
            for i in 0..n {
                kernel(i);
            }
            return;
        }
        let schedule = self.schedule();
        if schedule == Schedule::Static {
            // Static ignores cost hints entirely (the ablation baseline).
            self.run_static(n, &kernel);
            return;
        }
        // Every dynamic mode — `Auto` included — cuts morsel boundaries at
        // approximately equal cost, with the morsel *count* taken from the
        // uniform decomposition at the schedule's grain so it stays a pure
        // function of `(n, grain)`.
        let (grain, count) = sched::uniform_morsels(n, schedule.grain());
        match self.cost_boundaries(n, count, cost) {
            Some(bounds) => self.run_dynamic(n, Boundaries::Explicit(&bounds), true, &kernel),
            // All-zero costs carry no balance information: fall back to the
            // uniform decomposition at the same grain.
            None => self.run_dynamic(n, Boundaries::Uniform { grain, count }, true, &kernel),
        }
    }

    /// The historical one-contiguous-chunk-per-worker mapping, plus the
    /// per-worker balance measurement every pooled launch records.
    fn run_static<F>(&self, n: usize, kernel: &F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.inner.num_workers;
        let chunk = n.div_ceil(workers);
        self.reset_balance();
        self.run_on_pool(&|worker_id: usize| {
            let start = worker_id * chunk;
            if start >= n {
                return;
            }
            let began = Instant::now();
            let end = (start + chunk).min(n);
            for i in start..end {
                kernel(i);
            }
            let slot = &self.inner.balance[worker_id];
            slot.claims.store(1, Ordering::Relaxed);
            slot.busy_ns
                .store(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
        });
        self.record_balance(false, false, n.div_ceil(chunk));
    }

    /// Dynamic morsel claiming: workers pull morsel indices from a shared
    /// cursor until it runs past the (deterministic, worker-count
    /// independent) decomposition. Kernels write disjoint index ranges, so
    /// any claim order produces identical memory at the closing barrier.
    fn run_dynamic<F>(&self, n: usize, boundaries: Boundaries<'_>, weighted: bool, kernel: &F)
    where
        F: Fn(usize) + Sync,
    {
        let count = boundaries.count();
        let cursor = AtomicUsize::new(0);
        self.reset_balance();
        self.run_on_pool(&|worker_id: usize| {
            let began = Instant::now();
            let mut claims = 0u64;
            loop {
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= count {
                    break;
                }
                claims += 1;
                for i in boundaries.range(m, n) {
                    kernel(i);
                }
            }
            if claims > 0 {
                let slot = &self.inner.balance[worker_id];
                slot.claims.store(claims, Ordering::Relaxed);
                slot.busy_ns
                    .store(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        });
        self.record_balance(true, weighted, count);
    }

    /// Clears the per-worker balance slots before a pooled launch (launches
    /// never overlap, so the slots are safely reused).
    fn reset_balance(&self) {
        for slot in &self.inner.balance {
            slot.claims.store(0, Ordering::Relaxed);
            slot.busy_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Aggregates the balance slots of the launch that just completed into
    /// [`ScheduleStats`] and — when tracing — a `sched_balance` instant plus
    /// a `sched_imbalance_x100` counter track.
    fn record_balance(&self, dynamic: bool, weighted: bool, morsels: usize) {
        let mut max_claims = 0u64;
        let mut makespan = 0u64;
        let mut busy_total = 0u64;
        let mut engaged = 0u64;
        for slot in &self.inner.balance {
            let claims = slot.claims.load(Ordering::Relaxed);
            if claims == 0 {
                continue;
            }
            let busy = slot.busy_ns.load(Ordering::Relaxed);
            max_claims = max_claims.max(claims);
            makespan = makespan.max(busy);
            busy_total += busy;
            engaged += 1;
        }
        let mean = busy_total.checked_div(engaged).unwrap_or(0);
        self.inner.sched_stats.record(
            dynamic,
            weighted,
            morsels as u64,
            max_claims,
            makespan,
            mean,
        );
        if self.inner.trace_on.load(Ordering::Relaxed) {
            let tracer = self.inner.tracer.read().unwrap();
            if tracer.is_enabled() {
                tracer.instant(
                    "sched_balance",
                    &[
                        ("morsels", morsels as i64),
                        ("max_worker_morsels", max_claims as i64),
                        ("makespan_ns", makespan as i64),
                        ("mean_chunk_ns", mean as i64),
                        ("dynamic", i64::from(dynamic)),
                    ],
                );
                if let Some(imbalance) = makespan.saturating_mul(100).checked_div(mean) {
                    tracer.counter("sched_imbalance_x100", imbalance as i64);
                }
            }
        }
    }

    /// Cuts `morsels` boundaries over `0..n` at approximately equal summed
    /// cost: boundary `k` is the smallest index whose inclusive cost prefix
    /// reaches `k/morsels` of the total (exact integer rule — see
    /// [`sched::emit_cost_crossings`]). Returns `None` when the costs sum
    /// to zero. The result is a pure function of `(n, morsels, costs)`:
    /// the sequential planner and the chunk-parallel planner (used past
    /// [`WEIGHT_PLAN_PARALLEL_THRESHOLD`]) produce bit-identical cuts for
    /// every worker count.
    ///
    /// The planner passes run through raw [`Executor::run_on_pool`]: they
    /// are internal to the launch, so they record no stats, open no spans,
    /// and never roll fault injection — `GMC_FAULTS` step counting is
    /// identical under every schedule.
    fn cost_boundaries<C>(&self, n: usize, morsels: usize, cost: &C) -> Option<Vec<usize>>
    where
        C: Fn(usize) -> u64 + Sync,
    {
        if morsels <= 1 {
            return None;
        }
        if n < WEIGHT_PLAN_PARALLEL_THRESHOLD {
            // Sequential planner: one summing pass, one crossing walk.
            let mut total = 0u64;
            for i in 0..n {
                total = total.saturating_add(cost(i));
            }
            if total == 0 {
                return None;
            }
            let mut bounds = vec![0usize; morsels + 1];
            bounds[morsels] = n;
            let total_wide = u128::from(total);
            let mut prefix = 0u64;
            let mut next_k = 1usize;
            for i in 0..n {
                let after = prefix.saturating_add(cost(i));
                sched::emit_cost_crossings(
                    morsels,
                    total_wide,
                    prefix,
                    after,
                    i,
                    &mut next_k,
                    |k, b| {
                        bounds[k] = b;
                    },
                );
                prefix = after;
            }
            return Some(bounds);
        }
        // Chunk-parallel planner (the executor's two-phase scan shape):
        // per-chunk partial sums, a host exclusive scan over them, then a
        // per-chunk crossing walk. Interior boundary `k` is written by
        // exactly one chunk (the one whose prefix range straddles
        // `k/morsels` of the total), so the writes are disjoint.
        let workers = self.inner.num_workers;
        let chunk = n.div_ceil(workers);
        let chunks = n.div_ceil(chunk);
        let mut partials = vec![0u64; chunks];
        {
            let shared = crate::SharedSlice::new(&mut partials);
            self.run_on_pool(&|worker_id: usize| {
                let start = worker_id * chunk;
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                let mut sum = 0u64;
                for i in start..end {
                    sum = sum.saturating_add(cost(i));
                }
                // SAFETY: each worker writes exactly its own chunk slot.
                unsafe { shared.write(worker_id, sum) };
            });
        }
        let mut chunk_prefix = vec![0u64; chunks];
        let mut total = 0u64;
        for (slot, partial) in chunk_prefix.iter_mut().zip(&partials) {
            *slot = total;
            total = total.saturating_add(*partial);
        }
        if total == 0 {
            return None;
        }
        let mut bounds = vec![0usize; morsels + 1];
        bounds[morsels] = n;
        {
            let shared = crate::SharedSlice::new(&mut bounds);
            let total_wide = u128::from(total);
            self.run_on_pool(&|worker_id: usize| {
                let start = worker_id * chunk;
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                let mut prefix = chunk_prefix[worker_id];
                let mut next_k = sched::first_crossing_k(morsels, total_wide, prefix);
                for i in start..end {
                    if next_k >= morsels {
                        break;
                    }
                    let after = prefix.saturating_add(cost(i));
                    sched::emit_cost_crossings(
                        morsels,
                        total_wide,
                        prefix,
                        after,
                        i,
                        &mut next_k,
                        // SAFETY: crossing `k` straddles exactly one chunk's
                        // prefix range, so each slot has a single writer.
                        |k, b| unsafe { shared.write(k, b) },
                    );
                    prefix = after;
                }
            });
        }
        Some(bounds)
    }

    /// Partitions `0..n` into one contiguous range per worker and runs
    /// `body(range)` on each. Used by primitives that need per-chunk partial
    /// results; `num_chunks(n)` gives the number of ranges produced.
    pub fn for_each_chunk<F>(&self, n: usize, body: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        self.for_each_chunk_named(DEFAULT_KERNEL_NAME, n, body);
    }

    /// [`Executor::for_each_chunk`] with a kernel name for the per-kernel
    /// launch-stats breakdown and the trace span.
    pub fn for_each_chunk_named<F>(&self, name: &'static str, n: usize, body: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        self.inner.stats.record_launch(name, n);
        let _span = self.launch_span(name, n, || self.num_chunks(n));
        self.pay_launch_overhead();
        if n == 0 {
            return;
        }
        let chunks = self.num_chunks(n);
        if chunks == 1 {
            body(0, 0..n);
            return;
        }
        let chunk = n.div_ceil(chunks);
        self.run_on_pool(&|worker_id: usize| {
            let start = worker_id * chunk;
            if start < n {
                let end = (start + chunk).min(n);
                body(worker_id, start..end);
            }
        });
    }

    /// The number of chunks [`Executor::for_each_chunk`] will produce for an
    /// `n`-element problem.
    pub fn num_chunks(&self, n: usize) -> usize {
        if n <= self.sequential_grid_limit() || self.inner.num_workers == 1 {
            1
        } else {
            self.inner.num_workers
        }
    }

    /// Fills `out[i] = kernel(i)` for every `i`.
    pub fn fill_indexed<T, F>(&self, out: &mut [T], kernel: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.fill_indexed_named(DEFAULT_KERNEL_NAME, out, kernel);
    }

    /// [`Executor::fill_indexed`] with a kernel name for the per-kernel
    /// launch-stats breakdown and the trace span.
    pub fn fill_indexed_named<T, F>(&self, name: &'static str, out: &mut [T], kernel: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let shared = crate::SharedSlice::new(out);
        self.for_each_indexed_named(name, shared.len(), |i| {
            // SAFETY: each virtual thread writes exactly its own index.
            unsafe { shared.write(i, kernel(i)) };
        });
    }

    /// Allocates a vector of length `n` with `v[i] = kernel(i)`.
    pub fn map_indexed<T, F>(&self, n: usize, kernel: F) -> Vec<T>
    where
        T: Send + Copy + Default,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indexed_named(DEFAULT_KERNEL_NAME, n, kernel)
    }

    /// [`Executor::map_indexed`] with a kernel name for the per-kernel
    /// launch-stats breakdown and the trace span.
    pub fn map_indexed_named<T, F>(&self, name: &'static str, n: usize, kernel: F) -> Vec<T>
    where
        T: Send + Copy + Default,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); n];
        self.fill_indexed_named(name, &mut out, kernel);
        out
    }

    fn run_on_pool(&self, task: &(dyn Fn(usize) + Sync)) {
        let shared = &self.inner.shared;
        // SAFETY: the lifetime is erased here, but this function does not
        // return until every worker has finished running the task, so the
        // borrow outlives all uses.
        let ptr = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task)
        });
        {
            let mut st = shared.lock_state();
            debug_assert_eq!(st.pending, 0, "overlapping launches are not allowed");
            st.task = Some(ptr);
            st.generation += 1;
            st.pending = self.inner.num_workers;
            shared.work_ready.notify_all();
            while st.pending > 0 {
                st = shared
                    .work_done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.task = None;
        }
        if shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("a gmc-dpp worker thread panicked during a launch");
        }
    }
}

impl Drop for ExecutorInner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("num_workers", &self.inner.num_workers)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared, worker_id: usize) {
    let mut last_generation = 0u64;
    loop {
        let task = {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(task) = st.task {
                    if st.generation != last_generation {
                        last_generation = st.generation;
                        break task;
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: the launcher keeps the task alive until `pending == 0`,
        // which we only signal after the call returns.
        let call = AssertUnwindSafe(|| unsafe { (*task.0)(worker_id) });
        if std::panic::catch_unwind(call).is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        let mut st = shared.lock_state();
        st.pending -= 1;
        if st.pending == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_every_index_once() {
        let exec = Executor::new(4);
        let n = 100_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        exec.for_each_indexed(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let exec = Executor::new(3);
        let out = exec.map_indexed(50_000, |i| (i * i) as u64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn small_grids_run_inline() {
        let exec = Executor::new(8);
        let before = exec.stats();
        let out = exec.map_indexed(10, |i| i as u32);
        assert_eq!(out, (0..10u32).collect::<Vec<_>>());
        let after = exec.stats();
        assert_eq!(after.since(&before).launches, 1);
        assert_eq!(after.since(&before).virtual_threads, 10);
    }

    #[test]
    fn repeated_launches_are_stable() {
        let exec = Executor::new(4);
        for round in 0..50 {
            let out = exec.map_indexed(10_000, |i| (i + round) as u64);
            assert_eq!(out[0], round as u64);
            assert_eq!(out[9999], (9999 + round) as u64);
        }
    }

    #[test]
    fn single_worker_executor_works() {
        let exec = Executor::new(1);
        let out = exec.map_indexed(5000, |i| i as u32 * 2);
        assert_eq!(out[4999], 9998);
    }

    #[test]
    fn chunks_cover_range_disjointly() {
        let exec = Executor::new(4);
        let n = 100_000;
        let covered: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        exec.for_each_chunk(n, |_, range| {
            for i in range {
                covered[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(covered.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn executor_clone_shares_stats() {
        let exec = Executor::new(2);
        let clone = exec.clone();
        exec.for_each_indexed(10, |_| {});
        assert_eq!(clone.stats().launches, 1);
    }

    #[test]
    fn launch_overhead_is_paid_per_launch() {
        let exec = Executor::new(1);
        exec.set_launch_overhead(std::time::Duration::from_micros(200));
        assert_eq!(
            exec.launch_overhead(),
            std::time::Duration::from_micros(200)
        );
        let start = std::time::Instant::now();
        for _ in 0..50 {
            exec.for_each_indexed(1, |_| {});
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(10),
            "50 launches at 200µs each should take ≥ 10ms, took {elapsed:?}"
        );
        exec.set_launch_overhead(std::time::Duration::ZERO);
    }

    #[test]
    fn launch_boundaries_are_barriers() {
        // The kernel-boundary contract `for_each_indexed` guarantees: every
        // write from launch k is visible to every virtual thread of launch
        // k+1, no matter how virtual threads map onto workers. A ping-pong
        // chain of dependent launches detects any missing barrier — a
        // single stale read would corrupt all subsequent iterations.
        let n = 50_000;
        for workers in [1, 2, 4, 7] {
            let exec = Executor::new(workers);
            let mut a: Vec<u64> = (0..n as u64).collect();
            let mut b = vec![0u64; n];
            for _ in 0..8 {
                let src = crate::SharedSlice::new(&mut a);
                let dst = crate::SharedSlice::new(&mut b);
                exec.for_each_indexed(n, |i| {
                    // Each element reads two locations written by the
                    // *previous* launch.
                    let left = unsafe { src.read(i) };
                    let right = unsafe { src.read((i + 1) % n) };
                    unsafe { dst.write(i, left.wrapping_add(right)) };
                });
                std::mem::swap(&mut a, &mut b);
            }
            // Reference: the same chain run sequentially.
            let mut ra: Vec<u64> = (0..n as u64).collect();
            let mut rb = vec![0u64; n];
            for _ in 0..8 {
                for i in 0..n {
                    rb[i] = ra[i].wrapping_add(ra[(i + 1) % n]);
                }
                std::mem::swap(&mut ra, &mut rb);
            }
            assert_eq!(a, ra, "workers {workers}: a launch boundary leaked");
        }
    }

    #[test]
    fn pool_matches_scoped_thread_execution() {
        // The pool's chunked dispatch must be observationally identical to
        // running the same contiguous chunks on plain `std::thread::scope`
        // threads — the scoped-thread semantics the executor stands in for.
        let n = 60_000;
        let exec = Executor::new(4);
        let pool_out = exec.map_indexed(n, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));

        let mut scoped_out = vec![0u64; n];
        let chunk = n.div_ceil(4);
        std::thread::scope(|scope| {
            for (w, slot) in scoped_out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (k, out) in slot.iter_mut().enumerate() {
                        let i = w * chunk + k;
                        *out = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    }
                });
            }
        });
        assert_eq!(pool_out, scoped_out);
    }

    #[test]
    fn sequential_grid_limit_is_tunable() {
        let exec = Executor::new(4);
        assert_eq!(exec.sequential_grid_limit(), DEFAULT_SEQUENTIAL_GRID_LIMIT);
        assert_eq!(exec.num_chunks(DEFAULT_SEQUENTIAL_GRID_LIMIT + 1), 4);
        exec.set_sequential_grid_limit(0);
        assert_eq!(exec.sequential_grid_limit(), 0);
        assert_eq!(exec.num_chunks(1), 4);
        exec.set_sequential_grid_limit(usize::MAX);
        assert_eq!(exec.num_chunks(1 << 20), 1);
        // Results stay correct at both extremes.
        for limit in [0, usize::MAX] {
            exec.set_sequential_grid_limit(limit);
            let out = exec.map_indexed(10_000, |i| i as u32 + 1);
            assert_eq!(out[9999], 10_000);
        }
    }

    #[test]
    fn fused_launches_are_counted_separately() {
        let exec = Executor::new(2);
        let before = exec.stats();
        exec.for_each_indexed(100, |_| {});
        exec.for_each_indexed_fused(100, |_| {});
        exec.for_each_indexed_fused(100, |_| {});
        let delta = exec.stats().since(&before);
        assert_eq!(delta.launches, 3);
        assert_eq!(delta.fused_launches, 2);
        assert_eq!(delta.virtual_threads, 300);
    }

    #[test]
    fn named_launches_break_down_per_kernel() {
        let exec = Executor::new(2);
        let before = exec.stats();
        exec.for_each_indexed_named("alpha", 100, |_| {});
        exec.for_each_indexed_fused_named("beta", 50, |_| {});
        exec.for_each_indexed(25, |_| {});
        let delta = exec.stats().since(&before);
        assert_eq!(delta.kernel("alpha").launches, 1);
        assert_eq!(delta.kernel("alpha").virtual_threads, 100);
        assert_eq!(delta.kernel("beta").fused_launches, 1);
        assert_eq!(delta.kernel(DEFAULT_KERNEL_NAME).virtual_threads, 25);
    }

    #[test]
    fn launches_emit_spans_when_a_tracer_is_installed() {
        let session = gmc_trace::TraceSession::new();
        let exec = Executor::new(2);
        exec.set_tracer(session.tracer());
        exec.for_each_indexed_named("traced_kernel", 100, |_| {});
        exec.for_each_indexed_named("traced_kernel", 1 << 14, |_| {});
        exec.set_tracer(Tracer::disabled());
        exec.for_each_indexed_named("untraced_kernel", 10, |_| {});
        let timeline = session.finish();
        let spans: Vec<_> = timeline
            .spans
            .iter()
            .filter(|s| s.name == "traced_kernel")
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].args.contains(&("n", 100)));
        assert!(
            spans[0].args.contains(&("inline", 1)),
            "small grid is inline"
        );
        assert!(spans[1].args.contains(&("chunks", 2)));
        assert!(
            spans[1].args.contains(&("inline", 0)),
            "big grid uses the pool"
        );
        assert!(
            !timeline.spans.iter().any(|s| s.name == "untraced_kernel"),
            "no spans after the tracer is removed"
        );
    }

    #[test]
    fn fused_dispatch_matches_plain_dispatch() {
        let exec = Executor::new(4);
        let n = 50_000;
        let mut out = vec![0u64; n];
        let shared = crate::SharedSlice::new(&mut out);
        exec.for_each_indexed_fused(n, |i| unsafe { shared.write(i, (i * 3) as u64) });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * 3) as u64);
        }
    }

    #[test]
    fn armed_try_launches_fail_without_running_or_recording() {
        let exec = Executor::new(2);
        let plan: crate::fault::FaultPlan = "launch=1".parse().unwrap();
        let injector = crate::fault::FaultInjector::new(plan);
        exec.set_fault_injector(Some(injector.clone()));
        assert!(exec.fault_armed());
        let before = exec.stats();
        let ran = AtomicU64::new(0);
        let err = exec
            .try_for_each_indexed_named("faulted_kernel", 100, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(err.kernel, "faulted_kernel");
        assert_eq!(ran.load(Ordering::Relaxed), 0, "kernel must not run");
        assert_eq!(
            exec.stats().since(&before).launches,
            0,
            "a failed launch is not a launch"
        );
        assert_eq!(injector.stats().injected_launches, 1);
        exec.set_fault_injector(None);
        assert!(!exec.fault_armed());
        assert!(exec.try_for_each_indexed_named("ok", 10, |_| {}).is_ok());
    }

    #[test]
    fn unarmed_try_launches_match_infallible_ones() {
        let exec = Executor::new(3);
        let mapped = exec
            .try_map_indexed_named("try_map", 10_000, |i| i as u64 * 3)
            .unwrap();
        assert_eq!(mapped[9999], 29_997);
        let mut filled = vec![0u32; 5000];
        exec.try_fill_indexed_named("try_fill", &mut filled, |i| i as u32)
            .unwrap();
        assert_eq!(filled[4999], 4999);
        let hits: Vec<AtomicU64> = (0..5000).map(|_| AtomicU64::new(0)).collect();
        exec.try_for_each_chunk_named("try_chunk", 5000, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        exec.try_for_each_indexed_fused_named("try_fused", 100, |_| {})
            .unwrap();
    }

    #[test]
    fn alloc_only_plans_do_not_arm_the_executor() {
        let exec = Executor::new(2);
        let plan: crate::fault::FaultPlan = "alloc=1".parse().unwrap();
        exec.set_fault_injector(Some(crate::fault::FaultInjector::new(plan)));
        assert!(!exec.fault_armed());
        for _ in 0..50 {
            assert!(exec
                .try_for_each_indexed_named("never_fails", 8, |_| {})
                .is_ok());
        }
        assert!(
            exec.fault_injector().is_some(),
            "injector is still reachable"
        );
    }

    #[test]
    fn schedule_round_trips_through_accessor() {
        let exec = Executor::new(2);
        for schedule in [
            Schedule::Static,
            Schedule::Morsel { grain: 512 },
            Schedule::Morsel {
                grain: sched::DEFAULT_MORSEL_GRAIN,
            },
            Schedule::Guided,
            Schedule::Auto,
        ] {
            exec.set_schedule(schedule);
            assert_eq!(exec.schedule(), schedule);
        }
        exec.set_schedule(Schedule::Auto);
    }

    #[test]
    fn every_schedule_visits_every_index_once() {
        let n = 100_000;
        for workers in [1, 2, 8] {
            let exec = Executor::new(workers);
            for schedule in [
                Schedule::Static,
                Schedule::Morsel { grain: 777 },
                Schedule::Guided,
                Schedule::Auto,
            ] {
                exec.set_schedule(schedule);
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                exec.for_each_indexed(n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "workers {workers}, schedule {schedule}"
                );
            }
        }
    }

    #[test]
    fn weighted_launches_visit_every_index_once_under_every_schedule() {
        let n = 60_000;
        // Adversarial skew: one stretch of indices carries almost all cost.
        let cost = |i: usize| if i < 500 { 10_000u64 } else { 1 };
        for workers in [1, 2, 8] {
            let exec = Executor::new(workers);
            for schedule in [
                Schedule::Static,
                Schedule::Morsel { grain: 1024 },
                Schedule::Guided,
                Schedule::Auto,
            ] {
                exec.set_schedule(schedule);
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                exec.for_each_weighted(n, cost, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "workers {workers}, schedule {schedule}"
                );
            }
        }
    }

    #[test]
    fn zero_and_degenerate_cost_weighted_launches_cover_the_grid() {
        let exec = Executor::new(4);
        exec.set_schedule(Schedule::Morsel { grain: 512 });
        for cost_fn in [
            (|_| 0u64) as fn(usize) -> u64,
            |_| u64::MAX,
            |i| i as u64 % 3,
        ] {
            let n = 50_000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            exec.for_each_weighted(n, cost_fn, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn cost_boundaries_are_identical_across_worker_counts() {
        // Both planner shapes (sequential below the threshold, chunked
        // above) and every worker count must produce the same cut: the
        // boundary rule is a pure function of `(n, morsels, costs)`.
        let cost = |i: usize| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 56) + 1;
        for n in [10_000usize, WEIGHT_PLAN_PARALLEL_THRESHOLD + 12_345] {
            let morsels = 64;
            // Reference: the crossing rule evaluated naively.
            let total: u128 = (0..n).map(|i| u128::from(cost(i))).sum();
            let mut reference = vec![0usize; morsels + 1];
            reference[morsels] = n;
            let mut prefix: u128 = 0;
            let mut k = 1;
            for i in 0..n {
                prefix += u128::from(cost(i));
                while k < morsels && prefix * morsels as u128 >= k as u128 * total {
                    reference[k] = i + 1;
                    k += 1;
                }
            }
            for workers in [2, 3, 8] {
                let exec = Executor::new(workers);
                let bounds = exec.cost_boundaries(n, morsels, &cost).unwrap();
                assert_eq!(bounds, reference, "workers {workers}, n {n}");
            }
        }
    }

    #[test]
    fn dynamic_schedules_take_the_inline_path_on_small_grids() {
        let exec = Executor::new(8);
        exec.set_schedule(Schedule::Morsel { grain: 16 });
        let before = exec.schedule_stats();
        let out = exec.map_indexed(DEFAULT_SEQUENTIAL_GRID_LIMIT, |i| i as u32);
        assert_eq!(out[100], 100);
        exec.for_each_weighted(64, |_| 1, |_| {});
        let delta = exec.schedule_stats().since(&before);
        assert_eq!(delta.pool_launches, 0, "small grids never touch the pool");
        exec.set_schedule(Schedule::Auto);
    }

    #[test]
    fn schedule_stats_classify_launches() {
        let n = 100_000;
        let exec = Executor::new(4);
        exec.set_schedule(Schedule::Static);
        let before = exec.schedule_stats();
        exec.for_each_indexed(n, |_| {});
        let after_static = exec.schedule_stats().since(&before);
        assert_eq!(after_static.pool_launches, 1);
        assert_eq!(after_static.dynamic_launches, 0);
        assert_eq!(after_static.morsels, 4, "one chunk per worker");

        exec.set_schedule(Schedule::Morsel { grain: 1024 });
        let before = exec.schedule_stats();
        exec.for_each_indexed(n, |_| {});
        let dynamic = exec.schedule_stats().since(&before);
        assert_eq!(dynamic.pool_launches, 1);
        assert_eq!(dynamic.dynamic_launches, 1);
        assert_eq!(dynamic.weighted_launches, 0);
        assert_eq!(
            dynamic.morsels, 98,
            "100k at grain 1024, worker-independent"
        );
        assert!(dynamic.max_worker_morsels >= dynamic.morsels.div_ceil(4));
        assert!(dynamic.makespan_ns >= dynamic.mean_chunk_ns);
        assert!(dynamic.imbalance() >= 1.0);

        let before = exec.schedule_stats();
        exec.for_each_weighted(n, |i| i as u64, |_| {});
        let weighted = exec.schedule_stats().since(&before);
        assert_eq!(weighted.dynamic_launches, 1);
        assert_eq!(weighted.weighted_launches, 1);
        assert_eq!(weighted.morsels, 98, "cost cut keeps the uniform count");

        exec.reset_stats();
        assert_eq!(exec.schedule_stats(), ScheduleStats::default());
        exec.set_schedule(Schedule::Auto);
    }

    #[test]
    fn auto_schedule_is_static_for_unweighted_and_dynamic_for_weighted() {
        let n = 100_000;
        let exec = Executor::new(4);
        assert_eq!(exec.schedule(), Schedule::Auto);
        let before = exec.schedule_stats();
        exec.for_each_indexed(n, |_| {});
        exec.for_each_weighted(n, |_| 1, |_| {});
        let delta = exec.schedule_stats().since(&before);
        assert_eq!(delta.pool_launches, 2);
        assert_eq!(delta.dynamic_launches, 1, "only the weighted launch claims");
        assert_eq!(delta.weighted_launches, 1);
    }

    #[test]
    fn armed_weighted_try_launches_roll_exactly_one_fault_step() {
        let exec = Executor::new(2);
        let plan: crate::fault::FaultPlan = "launch=1".parse().unwrap();
        let injector = crate::fault::FaultInjector::new(plan);
        exec.set_fault_injector(Some(injector.clone()));
        let ran = AtomicU64::new(0);
        let err = exec
            .try_for_each_weighted_named(
                "weighted_faulted",
                100_000,
                |_| 1,
                |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap_err();
        assert_eq!(err.kernel, "weighted_faulted");
        assert_eq!(ran.load(Ordering::Relaxed), 0, "kernel must not run");
        assert_eq!(injector.stats().injected_launches, 1);
        // The cost planner never rolls: an unarmed-rate injector sees the
        // same step count whether the launch is weighted or not.
        exec.set_fault_injector(None);
        exec.try_for_each_weighted_named("weighted_ok", 100_000, |i| i as u64, |_| {})
            .unwrap();
        exec.try_for_each_segmented_cost_named("seg_ok", &[0, 4, 9, 9, 20], |_| {})
            .unwrap();
    }

    #[test]
    fn segmented_cost_launch_covers_all_segments() {
        let exec = Executor::new(3);
        exec.set_schedule(Schedule::Morsel { grain: 64 });
        exec.set_sequential_grid_limit(0);
        let n = 10_000usize;
        // Skewed CSR-style offsets: segment i has length i % 17.
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + i % 17;
        }
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        exec.for_each_segmented_cost_named("segments", &offsets, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        exec.set_sequential_grid_limit(DEFAULT_SEQUENTIAL_GRID_LIMIT);
        exec.set_schedule(Schedule::Auto);
    }

    #[test]
    fn worker_panic_propagates() {
        let exec = Executor::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.for_each_indexed(100_000, |i| {
                assert!(i < 50_000, "boom");
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let out = exec.map_indexed(10_000, |i| i as u32);
        assert_eq!(out[123], 123);
    }
}
