//! # gmc-dpp: virtual-GPU data-parallel primitives
//!
//! This crate is the execution substrate for the GPU maximum clique
//! reproduction. The paper's implementation is a sequence of CUDA kernel
//! launches interleaved with calls into NVIDIA's CUB library (scan, select,
//! segmented reduce, sort). Here the same execution model is provided on the
//! CPU:
//!
//! * [`Executor`] — a bulk-synchronous parallel executor backed by a
//!   persistent worker pool. Each [`Executor::for_each_indexed`] call is the
//!   analogue of one kernel launch: one *virtual thread* per element, a
//!   barrier at the end, and deterministic results regardless of worker
//!   count.
//! * [`exclusive_scan`], [`select_if`], [`segmented_argmax_by_key`],
//!   [`sort_pairs_u32`], [`histogram_u32`], [`run_length_encode`] — the
//!   CUB-style primitives the paper's Algorithms 1 and 2 are built from.
//! * [`DeviceMemory`] / [`DeviceBuffer`] — a capacity-bounded accounting
//!   allocator standing in for the GPU's on-board RAM. Exhausting it yields
//!   [`DeviceOom`], which is how the reproduction models the paper's
//!   out-of-memory outcomes (Table I, Fig. 6).
//! * [`rng`] — a deterministic SplitMix64-seeded xoshiro256** generator
//!   behind every seeded graph generator, corpus dataset and shuffle in the
//!   repo (no external `rand`).
//! * [`bits`] — word-level bitmask helpers (suffix masks, masked-suffix
//!   popcount, funnel-shift word reads) behind the 64-wide sublist-bitmap
//!   intersections in the expansion kernels.
//! * [`prop`] — a seeded property-testing harness (case generation plus
//!   bounded shrinking) behind the repo's property suites (no external
//!   `proptest`).
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`] that
//!   fails device-memory charges and `try_*` launches at a configured rate,
//!   so the solver's recovery paths are continuously exercised
//!   (`GMC_FAULTS`, chaos CI).
//! * [`Schedule`] — cost-aware launch scheduling: dynamic morsel
//!   work-claiming and weighted launches
//!   ([`Executor::for_each_weighted`]) that cut morsel boundaries at equal
//!   summed cost, so skewed grids no longer serialise on one worker
//!   (`GMC_SCHED`, [`ScheduleStats`]).
//!
//! Determinism: every primitive in this crate returns byte-identical output
//! for a given input regardless of how many workers the executor has; all
//! parallel reductions combine partial results in chunk order.

#![warn(missing_docs)]

pub mod bits;
mod cancel;
mod executor;
pub mod fault;
mod histogram;
mod memory;
pub mod prop;
mod rle;
pub mod rng;
mod scan;
mod sched;
mod segmented;
mod select;
mod shared;
mod sort;
mod stats;

pub use cancel::{CancelToken, Cancelled};
pub use executor::{Executor, DEFAULT_KERNEL_NAME, DEFAULT_SEQUENTIAL_GRID_LIMIT};
pub use fault::{DeviceError, FaultInjector, FaultPlan, FaultStats, LaunchError};
pub use histogram::histogram_u32;
pub use memory::{DeviceBuffer, DeviceMemory, DeviceOom, MemoryGuard};
pub use rle::{run_length_encode, run_starts, try_run_starts};
pub use rng::Rng;
pub use scan::{
    exclusive_scan, exclusive_scan_by, exclusive_scan_by_into, exclusive_scan_into, inclusive_scan,
    reduce, reduce_by, try_exclusive_scan, try_exclusive_scan_into,
};
pub use sched::{Schedule, DEFAULT_MORSEL_GRAIN, MAX_MORSELS};
pub use segmented::{
    remove_empty_segments, segment_lengths, segmented_argmax_by_key, segmented_sum,
};
pub use select::{
    select_count, select_flagged, select_if, select_if_into, select_indices, try_select_indices,
};
pub use shared::{SharedSlice, UninitSlice};
pub use sort::{sort_pairs_u32, sort_u32, sort_u32_desc};
pub use stats::{KernelStats, LaunchStats, ScheduleStats};

// Re-exported so executor users can install tracers without naming the
// trace crate (`exec.set_tracer(...)`, `memory.set_tracer(...)`).
pub use gmc_trace::{TraceSession, Tracer};

/// Bundles an executor with a device-memory budget: the "device" everything
/// in the reproduction runs on. Cloning shares both.
#[derive(Clone)]
pub struct Device {
    exec: Executor,
    memory: DeviceMemory,
}

impl Device {
    /// A device with `workers` parallel workers and `capacity_bytes` of
    /// accountable memory.
    pub fn new(workers: usize, capacity_bytes: usize) -> Self {
        Self {
            exec: Executor::new(workers),
            memory: DeviceMemory::new(capacity_bytes),
        }
    }

    /// A device with default parallelism and effectively unlimited memory.
    pub fn unlimited() -> Self {
        Self {
            exec: Executor::with_default_parallelism(),
            memory: DeviceMemory::unlimited(),
        }
    }

    /// A device with default parallelism and the given memory budget.
    pub fn with_memory_budget(capacity_bytes: usize) -> Self {
        Self {
            exec: Executor::with_default_parallelism(),
            memory: DeviceMemory::new(capacity_bytes),
        }
    }

    /// Assembles a device from an existing executor and memory accountant —
    /// how a service builds its pool: one executor plus one
    /// [`DeviceMemory::partition`] share per pool slot.
    pub fn from_parts(exec: Executor, memory: DeviceMemory) -> Self {
        Self { exec, memory }
    }

    /// The bulk-synchronous executor.
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// The device memory accountant.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Arms (or with `None` disarms) fault injection on both halves of the
    /// device: the memory accountant rolls allocation faults, the executor
    /// rolls launch faults, and both share the injector's step counter and
    /// recovery tallies.
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        self.memory.set_fault_injector(injector.clone());
        self.exec.set_fault_injector(injector);
    }

    /// Installs (or with `None` removes) a cooperative cancellation token
    /// on the executor (see [`Executor::set_cancel_token`]). Pipelines poll
    /// it at launch boundaries; a tripped token unwinds the solve with
    /// `DeviceError::Cancelled`, releasing every charge via RAII.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        self.exec.set_cancel_token(token);
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("workers", &self.exec.num_workers())
            .field("memory_capacity", &self.memory.capacity())
            .finish()
    }
}
