//! Run-length encoding (CUB `DeviceRunLengthEncode` analogue).
//!
//! The clique list's *sublists* are runs of equal `sublist_id` values, so
//! run detection is how GPU code finds sublist boundaries (the paper's
//! window-snapping kernel is a run-boundary scan with an `atomicMin`).

use crate::executor::Executor;
use crate::fault::LaunchError;
use crate::select::{select_indices, try_select_indices};

/// Start index of every maximal run of equal adjacent values, in order.
/// Empty input yields no runs.
pub fn run_starts(exec: &Executor, values: &[u32]) -> Vec<usize> {
    select_indices(exec, values, |i, v| i == 0 || values[i - 1] != v)
}

/// Fallible [`run_starts`]: returns [`LaunchError`] — with no work
/// performed — when the executor's armed fault injector fires.
pub fn try_run_starts(exec: &Executor, values: &[u32]) -> Result<Vec<usize>, LaunchError> {
    try_select_indices(exec, values, |i, v| i == 0 || values[i - 1] != v)
}

/// Run-length encodes `values`: returns `(unique_values, run_lengths)` in
/// order of appearance.
pub fn run_length_encode(exec: &Executor, values: &[u32]) -> (Vec<u32>, Vec<usize>) {
    let starts = run_starts(exec, values);
    let uniques: Vec<u32> =
        exec.map_indexed_named("rle_uniques", starts.len(), |r| values[starts[r]]);
    let lengths: Vec<usize> = exec.map_indexed_named("rle_lengths", starts.len(), |r| {
        let end = starts.get(r + 1).copied().unwrap_or(values.len());
        end - starts[r]
    });
    (uniques, lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_small_runs() {
        let exec = Executor::new(2);
        let values = [5u32, 5, 5, 7, 7, 2, 5];
        assert_eq!(run_starts(&exec, &values), vec![0, 3, 5, 6]);
        let (uniques, lengths) = run_length_encode(&exec, &values);
        assert_eq!(uniques, vec![5, 7, 2, 5]);
        assert_eq!(lengths, vec![3, 2, 1, 1]);
    }

    #[test]
    fn empty_and_singleton() {
        let exec = Executor::new(2);
        assert!(run_starts(&exec, &[]).is_empty());
        let (u, l) = run_length_encode(&exec, &[9]);
        assert_eq!(u, vec![9]);
        assert_eq!(l, vec![1]);
    }

    #[test]
    fn constant_input_is_one_run() {
        let exec = Executor::new(4);
        let values = vec![3u32; 100_000];
        let (u, l) = run_length_encode(&exec, &values);
        assert_eq!(u, vec![3]);
        assert_eq!(l, vec![100_000]);
    }

    #[test]
    fn lengths_sum_to_input_length() {
        let exec = Executor::new(4);
        let values: Vec<u32> = (0..50_000).map(|i| (i / 7) as u32 % 13).collect();
        let (uniques, lengths) = run_length_encode(&exec, &values);
        assert_eq!(lengths.iter().sum::<usize>(), values.len());
        // Adjacent uniques differ (maximal runs).
        assert!(uniques.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let values: Vec<u32> = (0..80_000).map(|i| (i / 31) as u32 % 5).collect();
        let baseline = run_length_encode(&Executor::new(1), &values);
        assert_eq!(run_length_encode(&Executor::new(6), &values), baseline);
    }
}
