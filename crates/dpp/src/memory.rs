use crate::fault::FaultInjector;
use gmc_trace::Tracer;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Error returned when a device allocation would exceed the configured
/// capacity — the reproduction's analogue of a CUDA `cudaErrorMemoryAllocation`.
///
/// The paper reports per-dataset OOM outcomes (Table I) and peak-memory
/// comparisons (Fig. 6); both are driven by this accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceOom {
    /// Bytes the failed allocation requested.
    pub requested: usize,
    /// Bytes live at the time of the failure.
    pub live: usize,
    /// Configured device capacity in bytes.
    pub capacity: usize,
    /// Whether the failure was produced by the fault injector rather than a
    /// genuine capacity exhaustion. Injected failures are retryable.
    pub injected: bool,
}

impl std::fmt::Display for DeviceOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B live of {} B capacity",
            self.requested, self.live, self.capacity
        )
    }
}

impl std::error::Error for DeviceOom {}

struct MemoryCells {
    capacity: usize,
    live: AtomicUsize,
    peak: AtomicUsize,
    /// Successful charges since creation — lets fault-injection harnesses
    /// calibrate an allocation fault rate against the real charge count.
    charges: AtomicUsize,
    /// Recording handle for the allocation counter track (see
    /// [`DeviceMemory::set_tracer`]); `trace_on` caches whether it is live
    /// so untraced charges pay one relaxed load.
    tracer: RwLock<Tracer>,
    trace_on: AtomicBool,
    /// Armed fault injector (see [`DeviceMemory::set_fault_injector`]);
    /// `fault_on` caches whether it is live so the fault-free path pays one
    /// relaxed load and branch per charge.
    fault: RwLock<Option<FaultInjector>>,
    fault_on: AtomicBool,
}

impl MemoryCells {
    /// Samples the live/peak counter tracks after a charge or release.
    fn trace_sample(&self) {
        if !self.trace_on.load(Ordering::Relaxed) {
            return;
        }
        let tracer = self.tracer.read().unwrap();
        tracer.counter(
            "device_live_bytes",
            self.live.load(Ordering::Relaxed) as i64,
        );
        tracer.counter(
            "device_peak_bytes",
            self.peak.load(Ordering::Relaxed) as i64,
        );
    }
}

/// Capacity-bounded accounting allocator modelling GPU on-board RAM.
///
/// No real memory is reserved; instead every buffer that would live in GPU
/// global memory in the paper's implementation charges its byte size here and
/// releases it on drop. Exceeding the capacity fails the charge with
/// [`DeviceOom`]. Peak usage is tracked so experiments can report
/// paper-style memory curves.
///
/// Cloning shares the accountant.
#[derive(Clone)]
pub struct DeviceMemory {
    cells: Arc<MemoryCells>,
}

impl DeviceMemory {
    /// An accountant with the given capacity in bytes.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            cells: Arc::new(MemoryCells {
                capacity: capacity_bytes,
                live: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                charges: AtomicUsize::new(0),
                tracer: RwLock::new(Tracer::disabled()),
                trace_on: AtomicBool::new(false),
                fault: RwLock::new(None),
                fault_on: AtomicBool::new(false),
            }),
        }
    }

    /// An accountant that never reports OOM.
    pub fn unlimited() -> Self {
        Self::new(usize::MAX)
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cells.capacity
    }

    /// Splits the budget into `parts` *independent* accountants of
    /// `capacity / parts` bytes each (unlimited stays unlimited). The
    /// partitions do not share live/peak counters with `self` or each
    /// other — the model is a device whose RAM is statically divided
    /// between tenants, so one tenant's allocations can never fail
    /// another's. Tracers and fault injectors are not inherited; install
    /// them per partition.
    pub fn partition(&self, parts: usize) -> Vec<DeviceMemory> {
        let parts = parts.max(1);
        let per_part = if self.cells.capacity == usize::MAX {
            usize::MAX
        } else {
            self.cells.capacity / parts
        };
        (0..parts).map(|_| DeviceMemory::new(per_part)).collect()
    }

    /// Bytes currently charged.
    pub fn live(&self) -> usize {
        self.cells.live.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes since creation or the last
    /// [`DeviceMemory::reset_peak`].
    pub fn peak(&self) -> usize {
        self.cells.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live total.
    pub fn reset_peak(&self) {
        self.cells.peak.store(self.live(), Ordering::Relaxed);
    }

    /// Number of successful charges since creation. Each charge is one
    /// potential allocation-fault site, so this is the roll count a
    /// fault-injection harness should calibrate `alloc_rate` against.
    pub fn charge_count(&self) -> usize {
        self.cells.charges.load(Ordering::Relaxed)
    }

    /// Installs a tracer: every charge and release then samples the
    /// `device_live_bytes` / `device_peak_bytes` counter tracks. Pass
    /// [`Tracer::disabled`] to stop recording.
    pub fn set_tracer(&self, tracer: Tracer) {
        let on = tracer.is_enabled();
        *self.cells.tracer.write().unwrap() = tracer;
        self.cells.trace_on.store(on, Ordering::Relaxed);
    }

    /// Arms (or with `None` disarms) fault injection: every subsequent
    /// charge first rolls the injector's allocation fault and fails with an
    /// `injected` [`DeviceOom`] when it fires — without touching the
    /// live/peak accounting, exactly like a real allocator that rejects a
    /// request it never performed.
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        let on = injector
            .as_ref()
            .is_some_and(|inj| inj.plan().alloc_rate > 0.0);
        *self.cells.fault.write().unwrap() = injector;
        self.cells.fault_on.store(on, Ordering::Relaxed);
    }

    /// Injected-alloc slow path, out of line so the fault-free charge stays
    /// one relaxed load and branch.
    #[cold]
    fn roll_injected_alloc(&self, bytes: usize) -> Option<DeviceOom> {
        let guard = self.cells.fault.read().unwrap();
        let injector = guard.as_ref()?;
        injector.roll_alloc()?;
        if self.cells.trace_on.load(Ordering::Relaxed) {
            let tracer = self.cells.tracer.read().unwrap();
            tracer.instant("fault_alloc_injected", &[("bytes", bytes as i64)]);
        }
        Some(DeviceOom {
            requested: bytes,
            live: self.live(),
            capacity: self.cells.capacity,
            injected: true,
        })
    }

    /// Attempts to charge `bytes`, returning a guard that releases the charge
    /// when dropped.
    pub fn try_charge(&self, bytes: usize) -> Result<MemoryGuard, DeviceOom> {
        if self.cells.fault_on.load(Ordering::Relaxed) {
            if let Some(oom) = self.roll_injected_alloc(bytes) {
                return Err(oom);
            }
        }
        let prev = self.cells.live.fetch_add(bytes, Ordering::Relaxed);
        let new_live = prev.saturating_add(bytes);
        if new_live > self.cells.capacity {
            self.cells.live.fetch_sub(bytes, Ordering::Relaxed);
            return Err(DeviceOom {
                requested: bytes,
                live: prev,
                capacity: self.cells.capacity,
                injected: false,
            });
        }
        self.cells.peak.fetch_max(new_live, Ordering::Relaxed);
        self.cells.charges.fetch_add(1, Ordering::Relaxed);
        self.cells.trace_sample();
        Ok(MemoryGuard {
            cells: Arc::clone(&self.cells),
            bytes,
        })
    }
}

impl std::fmt::Debug for DeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceMemory")
            .field("capacity", &self.capacity())
            .field("live", &self.live())
            .field("peak", &self.peak())
            .finish()
    }
}

/// RAII guard for a device-memory charge; releases the bytes on drop.
pub struct MemoryGuard {
    cells: Arc<MemoryCells>,
    bytes: usize,
}

impl MemoryGuard {
    /// The number of bytes this guard holds.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemoryGuard {
    fn drop(&mut self) {
        self.cells.live.fetch_sub(self.bytes, Ordering::Relaxed);
        self.cells.trace_sample();
    }
}

impl std::fmt::Debug for MemoryGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGuard")
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// A host vector whose byte footprint is charged against a [`DeviceMemory`]
/// budget, standing in for an array in GPU global memory.
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    _guard: MemoryGuard,
}

impl<T> DeviceBuffer<T> {
    /// Wraps `data`, charging `data.len() * size_of::<T>()` bytes.
    pub fn from_vec(memory: &DeviceMemory, data: Vec<T>) -> Result<Self, DeviceOom> {
        let guard = memory.try_charge(std::mem::size_of_val(data.as_slice()))?;
        Ok(Self {
            data,
            _guard: guard,
        })
    }

    /// Allocates a zero-initialised buffer of `len` elements.
    pub fn zeroed(memory: &DeviceMemory, len: usize) -> Result<Self, DeviceOom>
    where
        T: Default + Clone,
    {
        let guard = memory.try_charge(len * std::mem::size_of::<T>())?;
        Ok(Self {
            data: vec![T::default(); len],
            _guard: guard,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the buffer, releasing the charge and returning the host data.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .finish()
    }
}

impl<T> std::ops::Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let mem = DeviceMemory::new(1000);
        let g = mem.try_charge(600).unwrap();
        assert_eq!(mem.live(), 600);
        assert_eq!(mem.peak(), 600);
        drop(g);
        assert_eq!(mem.live(), 0);
        assert_eq!(mem.peak(), 600, "peak survives release");
    }

    #[test]
    fn oom_when_over_capacity() {
        let mem = DeviceMemory::new(1000);
        let _g = mem.try_charge(800).unwrap();
        let err = mem.try_charge(300).unwrap_err();
        assert_eq!(err.requested, 300);
        assert_eq!(err.live, 800);
        assert_eq!(err.capacity, 1000);
        // The failed charge must not leak accounting.
        assert_eq!(mem.live(), 800);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mem = DeviceMemory::new(10_000);
        let a = mem.try_charge(4000).unwrap();
        let b = mem.try_charge(5000).unwrap();
        drop(a);
        let _c = mem.try_charge(1000).unwrap();
        assert_eq!(mem.peak(), 9000);
        drop(b);
        mem.reset_peak();
        assert_eq!(mem.peak(), mem.live());
    }

    #[test]
    fn device_buffer_charges_by_bytes() {
        let mem = DeviceMemory::new(64);
        let buf = DeviceBuffer::from_vec(&mem, vec![0u32; 16]).unwrap();
        assert_eq!(mem.live(), 64);
        assert!(DeviceBuffer::from_vec(&mem, vec![0u8; 1]).is_err());
        drop(buf);
        assert_eq!(mem.live(), 0);
    }

    #[test]
    fn zeroed_buffer() {
        let mem = DeviceMemory::unlimited();
        let buf: DeviceBuffer<u32> = DeviceBuffer::zeroed(&mem, 8).unwrap();
        assert_eq!(buf.as_slice(), &[0u32; 8]);
    }

    #[test]
    fn unlimited_never_ooms() {
        let mem = DeviceMemory::unlimited();
        let _g = mem.try_charge(1 << 40).unwrap();
        assert!(mem.try_charge(1 << 40).is_ok());
    }

    #[test]
    fn partitions_are_independent_equal_shares() {
        let mem = DeviceMemory::new(1000);
        let parts = mem.partition(4);
        assert_eq!(parts.len(), 4);
        for part in &parts {
            assert_eq!(part.capacity(), 250);
        }
        let _g = parts[0].try_charge(250).unwrap();
        assert!(parts[0].try_charge(1).is_err(), "partition budget is hard");
        assert_eq!(parts[1].live(), 0, "siblings are unaffected");
        assert!(parts[1].try_charge(250).is_ok());
        assert_eq!(mem.live(), 0, "the parent accountant is untouched");

        let unlimited = DeviceMemory::unlimited().partition(3);
        assert!(unlimited.iter().all(|p| p.capacity() == usize::MAX));
        assert_eq!(DeviceMemory::new(100).partition(0).len(), 1);
    }

    #[test]
    fn injected_alloc_faults_bypass_accounting_and_are_retryable() {
        let mem = DeviceMemory::new(1000);
        let plan: crate::fault::FaultPlan = "alloc=1".parse().unwrap();
        let injector = crate::fault::FaultInjector::new(plan);
        mem.set_fault_injector(Some(injector.clone()));
        let err = mem.try_charge(100).unwrap_err();
        assert!(err.injected);
        assert_eq!(err.requested, 100);
        assert_eq!(mem.live(), 0, "failed injected charge leaves no residue");
        assert_eq!(mem.peak(), 0);
        assert_eq!(injector.stats().injected_allocs, 1);
        mem.set_fault_injector(None);
        assert!(mem.try_charge(100).is_ok(), "disarmed memory charges again");
    }

    #[test]
    fn zero_alloc_rate_injector_never_arms_the_fast_path() {
        let mem = DeviceMemory::new(1000);
        let plan: crate::fault::FaultPlan = "launch=1".parse().unwrap();
        mem.set_fault_injector(Some(crate::fault::FaultInjector::new(plan)));
        let guards: Vec<_> = (0..50).map(|_| mem.try_charge(1).unwrap()).collect();
        assert_eq!(mem.live(), 50);
        drop(guards);
        assert_eq!(mem.live(), 0);
    }

    #[test]
    fn tracer_samples_live_and_peak_counter_tracks() {
        let session = gmc_trace::TraceSession::new();
        let mem = DeviceMemory::new(10_000);
        mem.set_tracer(session.tracer());
        let a = mem.try_charge(4000).unwrap();
        let _b = mem.try_charge(2000).unwrap();
        drop(a);
        let timeline = session.finish();
        let live: Vec<i64> = timeline
            .counters
            .iter()
            .filter(|c| c.name == "device_live_bytes")
            .map(|c| c.value)
            .collect();
        assert_eq!(live, vec![4000, 6000, 2000]);
        let peak: Vec<i64> = timeline
            .counters
            .iter()
            .filter(|c| c.name == "device_peak_bytes")
            .map(|c| c.value)
            .collect();
        assert_eq!(peak, vec![4000, 6000, 6000]);
    }
}
