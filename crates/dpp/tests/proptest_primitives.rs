//! Property tests: every data-parallel primitive agrees with a sequential
//! reference on arbitrary inputs and worker counts.

use gmc_dpp::Executor;
use proptest::prelude::*;

fn executor_counts() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(3), Just(7)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exclusive_scan_matches_reference(
        input in proptest::collection::vec(0usize..1000, 0..3000),
        workers in executor_counts(),
    ) {
        let exec = Executor::new(workers);
        let (scanned, total) = gmc_dpp::exclusive_scan(&exec, &input);
        let mut acc = 0usize;
        for (i, &v) in input.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_scan_matches_reference(
        input in proptest::collection::vec(0usize..1000, 0..2000),
    ) {
        let exec = Executor::new(4);
        let scanned = gmc_dpp::inclusive_scan(&exec, &input);
        let mut acc = 0usize;
        for (i, &v) in input.iter().enumerate() {
            acc += v;
            prop_assert_eq!(scanned[i], acc);
        }
    }

    #[test]
    fn select_is_stable_and_complete(
        input in proptest::collection::vec(0u32..100, 0..2500),
        threshold in 0u32..100,
        workers in executor_counts(),
    ) {
        let exec = Executor::new(workers);
        let selected = gmc_dpp::select_if(&exec, &input, |_, v| v < threshold);
        let expected: Vec<u32> = input.iter().copied().filter(|&v| v < threshold).collect();
        prop_assert_eq!(selected, expected);
    }

    #[test]
    fn select_indices_are_sorted_and_correct(
        input in proptest::collection::vec(0u32..50, 0..2000),
    ) {
        let exec = Executor::new(3);
        let indices = gmc_dpp::select_indices(&exec, &input, |_, v| v % 3 == 0);
        prop_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        for &i in &indices {
            prop_assert_eq!(input[i] % 3, 0);
        }
        let count = input.iter().filter(|&&v| v % 3 == 0).count();
        prop_assert_eq!(indices.len(), count);
    }

    #[test]
    fn sort_matches_std(
        input in proptest::collection::vec(any::<u32>(), 0..3000),
        workers in executor_counts(),
    ) {
        let exec = Executor::new(workers);
        let sorted = gmc_dpp::sort_u32(&exec, &input);
        let mut expected = input.clone();
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    #[test]
    fn pair_sort_is_a_stable_permutation(
        keys in proptest::collection::vec(0u32..64, 0..2000),
    ) {
        let exec = Executor::new(4);
        let values: Vec<u32> = (0..keys.len() as u32).collect();
        let (sorted_keys, sorted_values) = gmc_dpp::sort_pairs_u32(&exec, &keys, &values);
        // Keys ascending.
        prop_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        // Values are a permutation and stable within equal keys.
        let mut seen = vec![false; keys.len()];
        for w in sorted_values.windows(2) {
            if keys[w[0] as usize] == keys[w[1] as usize] {
                prop_assert!(w[0] < w[1]);
            }
        }
        for (&k, &v) in sorted_keys.iter().zip(&sorted_values) {
            prop_assert_eq!(k, keys[v as usize]);
            prop_assert!(!std::mem::replace(&mut seen[v as usize], true));
        }
    }

    #[test]
    fn reduce_matches_sum(input in proptest::collection::vec(0usize..10_000, 0..2000)) {
        let exec = Executor::new(4);
        prop_assert_eq!(gmc_dpp::reduce(&exec, &input), input.iter().sum::<usize>());
    }

    #[test]
    fn segmented_argmax_matches_reference(
        lengths in proptest::collection::vec(0usize..20, 1..100),
    ) {
        let exec = Executor::new(3);
        let mut offsets = vec![0usize];
        for &l in &lengths {
            offsets.push(offsets.last().unwrap() + l);
        }
        let total = *offsets.last().unwrap();
        let values: Vec<u32> = (0..total as u32).map(|i| i.wrapping_mul(2654435761) % 97).collect();
        let result = gmc_dpp::segmented_argmax_by_key(&exec, total, &offsets, |i| values[i]);
        for (s, r) in result.iter().enumerate() {
            let segment = &values[offsets[s]..offsets[s + 1]];
            match r {
                None => prop_assert!(segment.is_empty()),
                Some(idx) => {
                    prop_assert_eq!(values[*idx], *segment.iter().max().unwrap());
                    // Earliest index on ties.
                    let local = idx - offsets[s];
                    prop_assert!(segment[..local].iter().all(|&v| v < values[*idx]));
                }
            }
        }
    }

    #[test]
    fn histogram_counts_everything(
        input in proptest::collection::vec(0u32..32, 0..2000),
    ) {
        let exec = Executor::new(4);
        let hist = gmc_dpp::histogram_u32(&exec, &input, 32);
        prop_assert_eq!(hist.iter().sum::<u64>() as usize, input.len());
        for (bin, &count) in hist.iter().enumerate() {
            let expected = input.iter().filter(|&&v| v as usize == bin).count() as u64;
            prop_assert_eq!(count, expected);
        }
    }

    #[test]
    fn remove_empty_segments_preserves_content(
        lengths in proptest::collection::vec(0usize..10, 1..200),
    ) {
        let exec = Executor::new(2);
        let mut offsets = vec![0usize];
        for &l in &lengths {
            offsets.push(offsets.last().unwrap() + l);
        }
        let (new_offsets, survivors) = gmc_dpp::remove_empty_segments(&exec, &offsets);
        // Survivors are exactly the non-empty segments, in order.
        let expected: Vec<usize> =
            (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
        prop_assert_eq!(&survivors, &expected);
        // New offsets describe the same lengths.
        for (new_idx, &old_idx) in survivors.iter().enumerate() {
            prop_assert_eq!(
                new_offsets[new_idx + 1] - new_offsets[new_idx],
                lengths[old_idx]
            );
        }
    }

    #[test]
    fn memory_accounting_balances(
        charges in proptest::collection::vec(1usize..10_000, 0..50),
    ) {
        let memory = gmc_dpp::DeviceMemory::new(usize::MAX);
        let total: usize = charges.iter().sum();
        {
            let guards: Vec<_> = charges
                .iter()
                .map(|&c| memory.try_charge(c).unwrap())
                .collect();
            prop_assert_eq!(memory.live(), total);
            drop(guards);
        }
        prop_assert_eq!(memory.live(), 0);
        prop_assert_eq!(memory.peak(), total);
    }
}
