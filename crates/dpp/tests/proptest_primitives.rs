//! Property tests: every data-parallel primitive agrees with a sequential
//! reference on arbitrary inputs and worker counts. Runs on the in-tree
//! seeded harness (`gmc_dpp::prop`); failures replay via `GMC_PROP_SEED`.

use gmc_dpp::prop::{self, gens, shrinks};
use gmc_dpp::{prop_assert, prop_assert_eq, Executor};

fn executor_count(rng: &mut gmc_dpp::Rng) -> usize {
    gens::one_of(rng, &[1usize, 2, 3, 7])
}

#[test]
fn exclusive_scan_matches_reference() {
    prop::check(
        "exclusive_scan_matches_reference",
        |rng| (gens::vec_usize(rng, 0..3000, 0..1000), executor_count(rng)),
        shrinks::pair(shrinks::vec, shrinks::none),
        |(input, workers)| {
            let exec = Executor::new(*workers);
            let (scanned, total) = gmc_dpp::exclusive_scan(&exec, input);
            let mut acc = 0usize;
            for (i, &v) in input.iter().enumerate() {
                prop_assert_eq!(scanned[i], acc);
                acc += v;
            }
            prop_assert_eq!(total, acc);
            Ok(())
        },
    );
}

#[test]
fn inclusive_scan_matches_reference() {
    prop::check(
        "inclusive_scan_matches_reference",
        |rng| gens::vec_usize(rng, 0..2000, 0..1000),
        shrinks::vec,
        |input| {
            let exec = Executor::new(4);
            let scanned = gmc_dpp::inclusive_scan(&exec, input);
            let mut acc = 0usize;
            for (i, &v) in input.iter().enumerate() {
                acc += v;
                prop_assert_eq!(scanned[i], acc);
            }
            Ok(())
        },
    );
}

#[test]
fn select_is_stable_and_complete() {
    prop::check(
        "select_is_stable_and_complete",
        |rng| {
            (
                gens::vec_u32(rng, 0..2500, 0..100),
                rng.gen_range(0u32..100),
                executor_count(rng),
            )
        },
        |(input, threshold, workers)| {
            shrinks::vec(input)
                .into_iter()
                .map(|v| (v, *threshold, *workers))
                .collect()
        },
        |(input, threshold, workers)| {
            let exec = Executor::new(*workers);
            let selected = gmc_dpp::select_if(&exec, input, |_, v| v < *threshold);
            let expected: Vec<u32> = input.iter().copied().filter(|v| v < threshold).collect();
            prop_assert_eq!(selected, expected);
            Ok(())
        },
    );
}

#[test]
fn select_indices_are_sorted_and_correct() {
    prop::check(
        "select_indices_are_sorted_and_correct",
        |rng| gens::vec_u32(rng, 0..2000, 0..50),
        shrinks::vec,
        |input| {
            let exec = Executor::new(3);
            let indices = gmc_dpp::select_indices(&exec, input, |_, v| v % 3 == 0);
            prop_assert!(indices.windows(2).all(|w| w[0] < w[1]));
            for &i in &indices {
                prop_assert_eq!(input[i] % 3, 0);
            }
            let count = input.iter().filter(|&&v| v % 3 == 0).count();
            prop_assert_eq!(indices.len(), count);
            Ok(())
        },
    );
}

#[test]
fn sort_matches_std() {
    prop::check(
        "sort_matches_std",
        |rng| (gens::vec_any_u32(rng, 0..3000), executor_count(rng)),
        shrinks::pair(shrinks::vec, shrinks::none),
        |(input, workers)| {
            let exec = Executor::new(*workers);
            let sorted = gmc_dpp::sort_u32(&exec, input);
            let mut expected = input.clone();
            expected.sort_unstable();
            prop_assert_eq!(sorted, expected);
            Ok(())
        },
    );
}

#[test]
fn pair_sort_is_a_stable_permutation() {
    prop::check(
        "pair_sort_is_a_stable_permutation",
        |rng| gens::vec_u32(rng, 0..2000, 0..64),
        shrinks::vec,
        |keys| {
            let exec = Executor::new(4);
            let values: Vec<u32> = (0..keys.len() as u32).collect();
            let (sorted_keys, sorted_values) = gmc_dpp::sort_pairs_u32(&exec, keys, &values);
            // Keys ascending.
            prop_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
            // Values are a permutation and stable within equal keys.
            let mut seen = vec![false; keys.len()];
            for w in sorted_values.windows(2) {
                if keys[w[0] as usize] == keys[w[1] as usize] {
                    prop_assert!(w[0] < w[1]);
                }
            }
            for (&k, &v) in sorted_keys.iter().zip(&sorted_values) {
                prop_assert_eq!(k, keys[v as usize]);
                prop_assert!(!std::mem::replace(&mut seen[v as usize], true));
            }
            Ok(())
        },
    );
}

#[test]
fn reduce_matches_sum() {
    prop::check(
        "reduce_matches_sum",
        |rng| gens::vec_usize(rng, 0..2000, 0..10_000),
        shrinks::vec,
        |input| {
            let exec = Executor::new(4);
            prop_assert_eq!(gmc_dpp::reduce(&exec, input), input.iter().sum::<usize>());
            Ok(())
        },
    );
}

#[test]
fn segmented_argmax_matches_reference() {
    prop::check(
        "segmented_argmax_matches_reference",
        |rng| gens::vec_usize(rng, 1..100, 0..20),
        shrinks::vec,
        |lengths| {
            if lengths.is_empty() {
                return Ok(()); // shrinking may drop below the 1-segment floor
            }
            let exec = Executor::new(3);
            let mut offsets = vec![0usize];
            for &l in lengths {
                offsets.push(offsets.last().unwrap() + l);
            }
            let total = *offsets.last().unwrap();
            let values: Vec<u32> = (0..total as u32)
                .map(|i| i.wrapping_mul(2654435761) % 97)
                .collect();
            let result = gmc_dpp::segmented_argmax_by_key(&exec, total, &offsets, |i| values[i]);
            for (s, r) in result.iter().enumerate() {
                let segment = &values[offsets[s]..offsets[s + 1]];
                match r {
                    None => prop_assert!(segment.is_empty()),
                    Some(idx) => {
                        prop_assert_eq!(values[*idx], *segment.iter().max().unwrap());
                        // Earliest index on ties.
                        let local = idx - offsets[s];
                        prop_assert!(segment[..local].iter().all(|&v| v < values[*idx]));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn histogram_counts_everything() {
    prop::check(
        "histogram_counts_everything",
        |rng| gens::vec_u32(rng, 0..2000, 0..32),
        shrinks::vec,
        |input| {
            let exec = Executor::new(4);
            let hist = gmc_dpp::histogram_u32(&exec, input, 32);
            prop_assert_eq!(hist.iter().sum::<u64>() as usize, input.len());
            for (bin, &count) in hist.iter().enumerate() {
                let expected = input.iter().filter(|&&v| v as usize == bin).count() as u64;
                prop_assert_eq!(count, expected);
            }
            Ok(())
        },
    );
}

#[test]
fn remove_empty_segments_preserves_content() {
    prop::check(
        "remove_empty_segments_preserves_content",
        |rng| gens::vec_usize(rng, 1..200, 0..10),
        shrinks::vec,
        |lengths| {
            if lengths.is_empty() {
                return Ok(());
            }
            let exec = Executor::new(2);
            let mut offsets = vec![0usize];
            for &l in lengths {
                offsets.push(offsets.last().unwrap() + l);
            }
            let (new_offsets, survivors) = gmc_dpp::remove_empty_segments(&exec, &offsets);
            // Survivors are exactly the non-empty segments, in order.
            let expected: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
            prop_assert_eq!(&survivors, &expected);
            // New offsets describe the same lengths.
            for (new_idx, &old_idx) in survivors.iter().enumerate() {
                prop_assert_eq!(
                    new_offsets[new_idx + 1] - new_offsets[new_idx],
                    lengths[old_idx]
                );
            }
            Ok(())
        },
    );
}

#[test]
fn memory_accounting_balances() {
    prop::check(
        "memory_accounting_balances",
        |rng| gens::vec_usize(rng, 0..50, 1..10_000),
        shrinks::vec,
        |charges| {
            let memory = gmc_dpp::DeviceMemory::new(usize::MAX);
            let total: usize = charges.iter().sum();
            {
                let guards: Vec<_> = charges
                    .iter()
                    .map(|&c| memory.try_charge(c).unwrap())
                    .collect();
                prop_assert_eq!(memory.live(), total);
                drop(guards);
            }
            prop_assert_eq!(memory.live(), 0);
            prop_assert_eq!(memory.peak(), total);
            Ok(())
        },
    );
}
