//! # gmc-heuristic: greedy lower-bound heuristics (paper §IV-A)
//!
//! Before the exact breadth-first search, a greedy heuristic establishes a
//! lower bound `ω̄` on the maximum clique size. The bound drives all of the
//! paper's pruning: vertices whose degree (or core number) + 1 is below `ω̄`
//! are discarded, and candidate sublists that cannot reach `ω̄` are cut.
//! Because a breadth-first search never improves its bound mid-run, the
//! initial bound's quality decides whether the candidate lists fit in device
//! memory at all (Table I).
//!
//! Four variants are provided, exactly the four the paper evaluates:
//!
//! * [`HeuristicKind::SingleDegree`] / [`HeuristicKind::SingleCore`] — one
//!   greedy pass from the highest-degree (or highest-core) vertex, filtering
//!   the candidate list with a parallel select each step (§IV-A1).
//! * [`HeuristicKind::MultiDegree`] / [`HeuristicKind::MultiCore`] — `h`
//!   greedy instances run simultaneously as segments of one data-parallel
//!   computation (§IV-A2, Algorithm 1), seeded by the `h` best vertices.
//!
//! All variants return a *witness clique*, not just a size, so callers can
//! verify the bound and emit the clique directly when the exact search
//! confirms it is optimal. An optional [`polish_clique`] pass applies
//! (1,2)-interchange local search on top of any witness — the next rung of
//! the preprocessing-vs-quality ladder the paper describes in §II-B1.

#![warn(missing_docs)]

mod local_search;
mod multi;
mod single;

pub use local_search::polish_clique;
pub use multi::multi_run;
pub use single::single_run;

use gmc_dpp::{Device, DeviceOom};
use gmc_graph::{kcore, Csr};
use std::time::Duration;

/// Which lower-bound heuristic to run before the exact search. The five
/// values correspond to the five rows of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HeuristicKind {
    /// No heuristic: the search starts with a trivial bound and relies on
    /// structural pruning only.
    None,
    /// One greedy run ordered by vertex degree.
    SingleDegree,
    /// One greedy run ordered by core number (requires a k-core pass).
    SingleCore,
    /// `h` parallel greedy runs ordered by degree — the paper's recommended
    /// default for unknown datasets (§V-B4).
    #[default]
    MultiDegree,
    /// `h` parallel greedy runs ordered by core number.
    MultiCore,
}

impl HeuristicKind {
    /// Whether this heuristic needs the k-core decomposition.
    pub fn uses_core_numbers(self) -> bool {
        matches!(self, HeuristicKind::SingleCore | HeuristicKind::MultiCore)
    }

    /// Whether this heuristic runs multiple seeded instances.
    pub fn is_multi_run(self) -> bool {
        matches!(self, HeuristicKind::MultiDegree | HeuristicKind::MultiCore)
    }

    /// Short stable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::None => "none",
            HeuristicKind::SingleDegree => "single-degree",
            HeuristicKind::SingleCore => "single-core",
            HeuristicKind::MultiDegree => "multi-degree",
            HeuristicKind::MultiCore => "multi-core",
        }
    }

    /// All five variants in the paper's simplest-to-most-complex order.
    pub fn all() -> [HeuristicKind; 5] {
        [
            HeuristicKind::None,
            HeuristicKind::SingleDegree,
            HeuristicKind::SingleCore,
            HeuristicKind::MultiDegree,
            HeuristicKind::MultiCore,
        ]
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of a heuristic run.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// Which heuristic produced this result.
    pub kind: HeuristicKind,
    /// The witness clique found (empty for [`HeuristicKind::None`]).
    pub clique: Vec<u32>,
    /// Core numbers, when the heuristic computed them; the solver reuses
    /// these for its own pruning instead of running k-core twice.
    pub core_numbers: Option<Vec<u32>>,
    /// Total heuristic wall time, including any k-core pass.
    pub total_time: Duration,
    /// Portion of `total_time` spent in the k-core decomposition.
    pub core_time: Duration,
}

impl HeuristicResult {
    /// The lower bound `ω̄` this heuristic establishes.
    pub fn lower_bound(&self) -> u32 {
        self.clique.len() as u32
    }
}

/// Runs `kind` on `graph`. `h` caps the number of seeds for the multi-run
/// variants (`None` means all vertices, the paper's experimental setting).
///
/// ```
/// use gmc_dpp::Device;
/// use gmc_graph::generators;
/// use gmc_heuristic::{run_heuristic, HeuristicKind};
///
/// let graph = generators::complete(5);
/// let result = run_heuristic(&Device::unlimited(), &graph, HeuristicKind::MultiDegree, None)
///     .unwrap();
/// assert_eq!(result.lower_bound(), 5); // the greedy bound is exact on K5
/// assert!(graph.is_clique(&result.clique));
/// ```
///
/// The returned witness is always verified to be a clique; heuristic
/// buffers are charged against the device budget, so a pathological graph
/// can surface [`DeviceOom`] here rather than in the exact phase.
pub fn run_heuristic(
    device: &Device,
    graph: &Csr,
    kind: HeuristicKind,
    h: Option<usize>,
) -> Result<HeuristicResult, DeviceOom> {
    let start = std::time::Instant::now();
    let mut core_time = Duration::ZERO;
    let mut core_numbers = None;

    let tracer = device.exec().tracer();
    let mut run_span = tracer
        .is_enabled()
        .then(|| tracer.span_with("heuristic_run", &[("seeds", h.map_or(-1, |h| h as i64))]));
    let clique = match kind {
        HeuristicKind::None => Vec::new(),
        _ => {
            let ordering_keys: Vec<u32> = if kind.uses_core_numbers() {
                let core_start = std::time::Instant::now();
                let _kcore_span = tracer.is_enabled().then(|| tracer.span("kcore"));
                let cores = kcore::core_numbers_parallel(device.exec(), graph);
                drop(_kcore_span);
                core_time = core_start.elapsed();
                // Core numbers tie heavily (whole subgraphs share one core),
                // so break ties by degree: same greedy *bound* semantics,
                // much better pick quality on near-regular-core graphs.
                let exec = device.exec();
                let n = graph.num_vertices();
                let keys = exec.map_indexed_named("heuristic_core_keys", n, |v| {
                    (cores[v].min(0xF_FFFF) << 12) | (graph.degree(v as u32) as u32).min(0xFFF)
                });
                core_numbers = Some(cores);
                keys
            } else {
                graph.degrees()
            };
            if kind.is_multi_run() {
                let h = h.unwrap_or(graph.num_vertices());
                multi_run(device, graph, &ordering_keys, h)?
            } else {
                single_run(device, graph, &ordering_keys)
            }
        }
    };
    debug_assert!(graph.is_clique(&clique), "heuristic returned a non-clique");
    if let Some(span) = run_span.as_mut() {
        span.arg("lower_bound", clique.len() as i64);
    }
    drop(run_span);
    Ok(HeuristicResult {
        kind,
        clique,
        core_numbers,
        total_time: start.elapsed(),
        core_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    #[test]
    fn kind_metadata() {
        assert!(HeuristicKind::SingleCore.uses_core_numbers());
        assert!(!HeuristicKind::MultiDegree.uses_core_numbers());
        assert!(HeuristicKind::MultiCore.is_multi_run());
        assert!(!HeuristicKind::SingleDegree.is_multi_run());
        assert_eq!(HeuristicKind::all().len(), 5);
        assert_eq!(HeuristicKind::default(), HeuristicKind::MultiDegree);
    }

    #[test]
    fn none_heuristic_gives_zero_bound() {
        let device = Device::unlimited();
        let g = generators::complete(4);
        let r = run_heuristic(&device, &g, HeuristicKind::None, None).unwrap();
        assert_eq!(r.lower_bound(), 0);
        assert!(r.clique.is_empty());
        assert!(r.core_numbers.is_none());
    }

    #[test]
    fn all_heuristics_find_complete_graph() {
        let device = Device::unlimited();
        let g = generators::complete(7);
        for kind in [
            HeuristicKind::SingleDegree,
            HeuristicKind::SingleCore,
            HeuristicKind::MultiDegree,
            HeuristicKind::MultiCore,
        ] {
            let r = run_heuristic(&device, &g, kind, None).unwrap();
            assert_eq!(r.lower_bound(), 7, "{kind}");
            assert!(g.is_clique(&r.clique));
            assert_eq!(r.core_numbers.is_some(), kind.uses_core_numbers());
        }
    }

    #[test]
    fn planted_clique_found_by_multi_run() {
        let device = Device::unlimited();
        let base = generators::gnp(300, 0.03, 5);
        let (g, members) = generators::plant_clique(&base, 10, 6);
        let r = run_heuristic(&device, &g, HeuristicKind::MultiDegree, None).unwrap();
        assert!(
            r.lower_bound() >= members.len() as u32,
            "multi-run should find the planted clique, got {}",
            r.lower_bound()
        );
    }

    #[test]
    fn multi_run_at_least_as_good_as_single_run() {
        let device = Device::unlimited();
        for seed in 0..5 {
            let g = generators::gnp(200, 0.1, seed);
            let single = run_heuristic(&device, &g, HeuristicKind::SingleDegree, None).unwrap();
            let multi = run_heuristic(&device, &g, HeuristicKind::MultiDegree, None).unwrap();
            assert!(
                multi.lower_bound() >= single.lower_bound(),
                "seed {seed}: multi {} < single {}",
                multi.lower_bound(),
                single.lower_bound()
            );
        }
    }

    #[test]
    fn core_time_is_recorded() {
        let device = Device::unlimited();
        let g = generators::gnp(500, 0.05, 1);
        let r = run_heuristic(&device, &g, HeuristicKind::MultiCore, None).unwrap();
        assert!(r.core_time <= r.total_time);
        assert!(r.core_numbers.is_some());
    }

    #[test]
    fn empty_graph_handled() {
        let device = Device::unlimited();
        let g = gmc_graph::Csr::empty(0);
        for kind in HeuristicKind::all() {
            let r = run_heuristic(&device, &g, kind, None).unwrap();
            assert_eq!(r.lower_bound(), 0, "{kind}");
        }
    }

    #[test]
    fn isolated_vertices_give_singleton_clique() {
        let device = Device::unlimited();
        let g = gmc_graph::Csr::empty(5);
        let r = run_heuristic(&device, &g, HeuristicKind::MultiDegree, None).unwrap();
        assert_eq!(r.lower_bound(), 1);
    }
}
