//! The single-run greedy heuristic (paper §IV-A1).

use gmc_dpp::Device;
use gmc_graph::Csr;

/// One greedy pass: repeatedly take the highest-threshold candidate, add it
/// to the clique-in-progress, and filter the remaining candidates to its
/// neighbors with a parallel select. The filtered list shrinks to empty in
/// exactly `|clique|` iterations.
///
/// `thresholds[v]` is the ordering key for vertex `v` (degree or core
/// number); ties break toward the lower vertex id. Returns the witness
/// clique in pick order.
pub fn single_run(device: &Device, graph: &Csr, thresholds: &[u32]) -> Vec<u32> {
    let exec = device.exec();
    let n = graph.num_vertices();
    assert_eq!(thresholds.len(), n, "one threshold per vertex");
    if n == 0 {
        return Vec::new();
    }

    // Sort all vertices by descending threshold. The radix sort is stable,
    // so equal thresholds keep ascending-id order.
    let keys: Vec<u32> = exec.map_indexed_named("heuristic_sort_keys", n, |v| !thresholds[v]);
    let ids: Vec<u32> = exec.map_indexed_named("heuristic_iota", n, |v| v as u32);
    let (_, mut candidates) = gmc_dpp::sort_pairs_u32(exec, &keys, &ids);

    let mut clique = Vec::new();
    while let Some((&v, rest)) = candidates.split_first() {
        clique.push(v);
        candidates = gmc_dpp::select_if(exec, rest, |_, u| graph.has_edge(u, v));
    }
    clique
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    #[test]
    fn finds_triangle() {
        let device = Device::unlimited();
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let clique = single_run(&device, &g, &g.degrees());
        // Starts at vertex 2 (degree 3) and grows the triangle.
        assert_eq!(clique.len(), 3);
        assert!(g.is_clique(&clique));
    }

    #[test]
    fn result_is_always_a_maximal_clique() {
        let device = Device::unlimited();
        for seed in 0..10 {
            let g = generators::gnp(150, 0.08, seed);
            let clique = single_run(&device, &g, &g.degrees());
            assert!(g.is_clique(&clique), "seed {seed}");
            // Maximality: no vertex extends the clique.
            for v in 0..g.num_vertices() as u32 {
                if clique.contains(&v) {
                    continue;
                }
                let extends = clique.iter().all(|&c| g.has_edge(v, c));
                assert!(
                    !extends,
                    "seed {seed}: vertex {v} extends the greedy clique"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let device = Device::unlimited();
        assert!(single_run(&device, &Csr::empty(0), &[]).is_empty());
        let one = Csr::empty(1);
        assert_eq!(single_run(&device, &one, &[0]), vec![0]);
    }

    #[test]
    fn respects_threshold_ordering() {
        let device = Device::unlimited();
        // Two disjoint triangles; thresholds force a start in the second.
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let mut thresholds = vec![0u32; 6];
        thresholds[4] = 10;
        let clique = single_run(&device, &g, &thresholds);
        assert!(clique.contains(&4));
        assert_eq!(clique.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one threshold per vertex")]
    fn wrong_threshold_length_panics() {
        let device = Device::unlimited();
        let g = Csr::empty(3);
        single_run(&device, &g, &[1, 2]);
    }
}
