//! Local-search polish for heuristic witnesses.
//!
//! The paper notes that "there is a substantial body of previous work on a
//! wide variety of heuristics" trading preprocessing effort against bound
//! quality (§II-B1) and deliberately picks cheap greedy variants. This
//! module adds the next rung of that ladder as an optional polish pass: the
//! classic (1,2)-interchange — repeatedly grow the clique directly when
//! possible, otherwise try swapping one member out for two non-members —
//! which strictly increases the witness size until a local optimum.

use gmc_graph::Csr;

/// Improves `clique` in place with greedy growth and (1,2)-interchanges
/// until neither applies; returns the number of vertices gained. The input
/// must be a clique; the output remains one.
pub fn polish_clique(graph: &Csr, clique: &mut Vec<u32>) -> usize {
    debug_assert!(graph.is_clique(clique));
    let before = clique.len();
    if clique.is_empty() {
        return 0;
    }
    loop {
        if try_grow(graph, clique) {
            continue;
        }
        if try_swap_1_2(graph, clique) {
            continue;
        }
        break;
    }
    debug_assert!(graph.is_clique(clique));
    clique.len() - before
}

/// Adds any vertex adjacent to every member (greedy growth to maximality).
fn try_grow(graph: &Csr, clique: &mut Vec<u32>) -> bool {
    let probe = *clique
        .iter()
        .min_by_key(|&&v| graph.degree(v))
        .expect("non-empty clique");
    for &candidate in graph.neighbors(probe) {
        if clique.contains(&candidate) {
            continue;
        }
        if clique.iter().all(|&m| graph.has_edge(candidate, m)) {
            clique.push(candidate);
            return true;
        }
    }
    false
}

/// Tries to remove one member and add two new vertices: for each member
/// `m`, collect the vertices adjacent to every *other* member; if two of
/// them are adjacent to each other, the exchange nets +1.
fn try_swap_1_2(graph: &Csr, clique: &mut Vec<u32>) -> bool {
    for drop_idx in 0..clique.len() {
        let dropped = clique[drop_idx];
        let rest: Vec<u32> = clique.iter().copied().filter(|&v| v != dropped).collect();
        if rest.is_empty() {
            continue;
        }
        // Candidates adjacent to everything in `rest` but outside the clique.
        let probe = *rest
            .iter()
            .min_by_key(|&&v| graph.degree(v))
            .expect("non-empty rest");
        let additions: Vec<u32> = graph
            .neighbors(probe)
            .iter()
            .copied()
            .filter(|&c| c != dropped && !rest.contains(&c))
            .filter(|&c| rest.iter().all(|&m| graph.has_edge(c, m)))
            .collect();
        for (i, &a) in additions.iter().enumerate() {
            for &b in &additions[i + 1..] {
                if graph.has_edge(a, b) {
                    clique.remove(drop_idx);
                    clique.push(a);
                    clique.push(b);
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    #[test]
    fn grows_non_maximal_cliques() {
        let g = generators::complete(6);
        let mut clique = vec![0, 1];
        let gained = polish_clique(&g, &mut clique);
        assert_eq!(gained, 4);
        assert_eq!(clique.len(), 6);
        assert!(g.is_clique(&clique));
    }

    #[test]
    fn swap_escapes_a_local_maximum() {
        // Vertices {0} ∪ {1,2,3}: 0 is adjacent to 4 and 5 only; {4,5,1,2,3}
        // wait — construct explicitly: maximal clique {0,1} vs larger clique
        // {2,3,4} reachable by dropping 0 and adding 2 more after swap:
        // build: clique {a,b} maximal; {b,c,d} a triangle sharing b.
        // (1,2)-swap: drop a, add c,d.
        let g = gmc_graph::Csr::from_edges(
            5,
            &[
                (0, 1), // the starting 2-clique {0,1}
                (1, 2),
                (1, 3),
                (2, 3), // triangle {1,2,3}
            ],
        );
        let mut clique = vec![0, 1];
        // {0,1} is maximal (nothing adjacent to both) but not maximum.
        let gained = polish_clique(&g, &mut clique);
        assert_eq!(gained, 1);
        let mut sorted = clique.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn never_shrinks_or_breaks_cliques() {
        for seed in 0..10 {
            let g = generators::gnp(80, 0.2, seed);
            // Start from each single vertex.
            for v in (0..80u32).step_by(17) {
                let mut clique = vec![v];
                let before = clique.len();
                polish_clique(&g, &mut clique);
                assert!(clique.len() >= before);
                assert!(g.is_clique(&clique), "seed {seed} start {v}");
            }
        }
    }

    #[test]
    fn polished_witness_is_still_a_sound_lower_bound() {
        use gmc_dpp::Device;
        let device = Device::unlimited();
        for seed in 0..5 {
            let base = generators::gnp(120, 0.08, seed);
            let (g, _) = generators::plant_clique(&base, 8, seed + 40);
            let h = crate::run_heuristic(&device, &g, crate::HeuristicKind::SingleDegree, None)
                .unwrap();
            let mut polished = h.clique.clone();
            let gained = polish_clique(&g, &mut polished);
            assert!(polished.len() == h.clique.len() + gained);
            assert!(g.is_clique(&polished));
        }
    }

    #[test]
    fn empty_clique_is_a_no_op() {
        let g = generators::complete(3);
        let mut clique = Vec::new();
        assert_eq!(polish_clique(&g, &mut clique), 0);
        assert!(clique.is_empty());
    }
}
