//! The multi-run greedy heuristic (paper §IV-A2, Algorithm 1).
//!
//! `h` instances of the greedy heuristic run simultaneously, one per seed
//! vertex, as segments of a single data-parallel computation:
//!
//! 1. Seed segments with each seed's neighborhood (`SETUPNEIGHBORTHRESHOLDS`).
//! 2. Each iteration: a segmented arg-max picks the best candidate per
//!    segment, a per-segment kernel flags candidates connected to the pick
//!    (`CHECKCONNECTIONS`), a stable select compacts survivors, and empty
//!    segments are removed with a second select plus an offset-rebuilding
//!    scan.
//! 3. Iterate until every segment is empty; the best clique across all runs
//!    is the bound (the paper tracks only the iteration count — the size —
//!    whereas we also track the witness vertices per segment).

use gmc_dpp::{Device, DeviceOom, SharedSlice};
use gmc_graph::Csr;

/// Runs `h` parallel greedy instances seeded by the `h` highest-threshold
/// vertices. Returns the largest witness clique found across all instances
/// (ties broken toward the better-seeded instance).
pub fn multi_run(
    device: &Device,
    graph: &Csr,
    thresholds: &[u32],
    h: usize,
) -> Result<Vec<u32>, DeviceOom> {
    let exec = device.exec();
    let n = graph.num_vertices();
    assert_eq!(thresholds.len(), n, "one threshold per vertex");
    if n == 0 {
        return Ok(Vec::new());
    }
    let h = h.clamp(1, n);

    // Seeds: the h vertices with the highest thresholds (stable sort keeps
    // ascending-id order within ties).
    let keys: Vec<u32> = exec.map_indexed_named("heuristic_sort_keys", n, |v| !thresholds[v]);
    let ids: Vec<u32> = exec.map_indexed_named("heuristic_iota", n, |v| v as u32);
    let (_, sorted) = gmc_dpp::sort_pairs_u32(exec, &keys, &ids);
    let seeds = &sorted[..h];

    // GETNEIGHBORCOUNTS + scan: segment layout.
    let counts: Vec<usize> =
        exec.map_indexed_named("heuristic_seed_degrees", h, |s| graph.degree(seeds[s]));
    let (mut offsets, total) = gmc_dpp::exclusive_scan(exec, &counts);
    offsets.push(total);

    // The neighbor and threshold arrays live in device memory for the whole
    // run; later iterations only shrink, so charging the initial footprint
    // covers the peak.
    let _charge = device
        .memory()
        .try_charge(total * 2 * std::mem::size_of::<u32>())?;

    // SETUPNEIGHBORTHRESHOLDS: one virtual thread per seed fills its segment.
    let mut neighbors = vec![0u32; total];
    let mut nbr_thresholds = vec![0u32; total];
    {
        let neighbors_shared = SharedSlice::new(&mut neighbors);
        let thresholds_shared = SharedSlice::new(&mut nbr_thresholds);
        // Segment lengths are the seeds' degrees — exactly the skew a
        // degree-sorted seed list maximises.
        exec.for_each_segmented_cost_named("heuristic_neighbor_thresholds", &offsets, |s| {
            for (offset, &u) in graph.neighbors(seeds[s]).iter().enumerate() {
                // SAFETY: segments are disjoint spans of the output arrays.
                unsafe {
                    neighbors_shared.write(offsets[s] + offset, u);
                    thresholds_shared.write(offsets[s] + offset, thresholds[u as usize]);
                }
            }
        });
    }

    // Per-instance cliques-in-progress, indexed by seed position. A
    // segment's clique keeps growing until the segment dies; the final
    // answer is the longest.
    let mut cliques: Vec<Vec<u32>> = seeds.iter().map(|&s| vec![s]).collect();
    // seg_owner[s] = which instance current segment s belongs to.
    let (mut offsets, survivors) = gmc_dpp::remove_empty_segments(exec, &offsets);
    let mut seg_owner: Vec<usize> = survivors;
    // Compact the value arrays to match (initially empty segments hold no
    // values, so the arrays are unchanged; this keeps the invariant simple).

    while offsets.len() > 1 {
        let num_segments = offsets.len() - 1;

        // Segmented arg-max over candidate thresholds.
        let arg = gmc_dpp::segmented_argmax_by_key(exec, neighbors.len(), &offsets, |i| {
            nbr_thresholds[i]
        });
        let chosen: Vec<u32> = exec.map_indexed_named("heuristic_pick_argmax", num_segments, |s| {
            neighbors[arg[s].expect("segments are non-empty")]
        });
        for s in 0..num_segments {
            cliques[seg_owner[s]].push(chosen[s]);
        }

        // CHECKCONNECTIONS: one virtual thread per segment flags candidates
        // adjacent to the segment's pick. The pick itself is never adjacent
        // to itself, so it drops out automatically.
        let mut flags = vec![false; neighbors.len()];
        {
            let flags_shared = SharedSlice::new(&mut flags);
            exec.for_each_segmented_cost_named("heuristic_check_connections", &offsets, |s| {
                let v = chosen[s];
                for (i, &u) in neighbors[offsets[s]..offsets[s + 1]].iter().enumerate() {
                    // SAFETY: segments are disjoint spans.
                    unsafe { flags_shared.write(offsets[s] + i, graph.has_edge(u, v)) };
                }
            });
        }

        // Per-segment survivor counts, then stable compaction of both value
        // arrays (stability keeps segments contiguous).
        let counts: Vec<usize> =
            exec.map_indexed_named("heuristic_survivor_counts", num_segments, |s| {
                flags[offsets[s]..offsets[s + 1]]
                    .iter()
                    .filter(|&&f| f)
                    .count()
            });
        neighbors = gmc_dpp::select_flagged(exec, &neighbors, &flags);
        nbr_thresholds = gmc_dpp::select_flagged(exec, &nbr_thresholds, &flags);

        // Rebuild offsets and drop dead segments.
        let (mut new_offsets, total) = gmc_dpp::exclusive_scan(exec, &counts);
        new_offsets.push(total);
        let (compacted_offsets, survivors) = gmc_dpp::remove_empty_segments(exec, &new_offsets);
        seg_owner = survivors.iter().map(|&s| seg_owner[s]).collect();
        offsets = compacted_offsets;
    }

    let best = cliques.into_iter().max_by_key(Vec::len).unwrap_or_default();
    debug_assert!(graph.is_clique(&best));
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_run;
    use gmc_graph::generators;

    #[test]
    fn finds_planted_clique_from_any_seed() {
        let device = Device::unlimited();
        let base = generators::gnp(120, 0.05, 1);
        let (g, members) = generators::plant_clique(&base, 9, 2);
        let clique = multi_run(&device, &g, &g.degrees(), g.num_vertices()).unwrap();
        assert!(clique.len() >= members.len());
        assert!(g.is_clique(&clique));
    }

    #[test]
    fn h_one_equals_single_run() {
        let device = Device::unlimited();
        for seed in 0..5 {
            let g = generators::gnp(100, 0.1, seed);
            let degrees = g.degrees();
            let single = single_run(&device, &g, &degrees);
            let multi = multi_run(&device, &g, &degrees, 1).unwrap();
            assert_eq!(single, multi, "seed {seed}");
        }
    }

    #[test]
    fn dominates_single_run_on_random_graphs() {
        let device = Device::unlimited();
        for seed in 0..8 {
            let g = generators::gnp(150, 0.15, seed);
            let degrees = g.degrees();
            let single = single_run(&device, &g, &degrees).len();
            let multi = multi_run(&device, &g, &degrees, g.num_vertices())
                .unwrap()
                .len();
            assert!(multi >= single, "seed {seed}: {multi} < {single}");
        }
    }

    #[test]
    fn respects_memory_budget() {
        // A budget too small for the neighbor arrays must fail, not panic.
        let device = Device::with_memory_budget(16);
        let g = generators::complete(20);
        let err = multi_run(&device, &g, &g.degrees(), 20).unwrap_err();
        assert!(err.capacity == 16);
        // And the failed run must not leak charges.
        assert_eq!(device.memory().live(), 0);
    }

    #[test]
    fn disconnected_components_all_reached() {
        let device = Device::unlimited();
        // Triangle {0,1,2} and K4 {3,4,5,6}, disconnected.
        let mut edges = vec![(0u32, 1u32), (1, 2), (0, 2)];
        for u in 3..7u32 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        let g = Csr::from_edges(7, &edges);
        let clique = multi_run(&device, &g, &g.degrees(), g.num_vertices()).unwrap();
        assert_eq!(clique.len(), 4);
        assert!(clique.iter().all(|&v| v >= 3));
    }

    #[test]
    fn deterministic() {
        let device_a = Device::new(1, usize::MAX);
        let device_b = Device::new(6, usize::MAX);
        let g = generators::gnp(200, 0.1, 9);
        let a = multi_run(&device_a, &g, &g.degrees(), 200).unwrap();
        let b = multi_run(&device_b, &g, &g.degrees(), 200).unwrap();
        assert_eq!(a, b, "worker count must not change the result");
    }

    #[test]
    fn isolated_seed_yields_singleton() {
        let device = Device::unlimited();
        let g = Csr::empty(3);
        let clique = multi_run(&device, &g, &g.degrees(), 3).unwrap();
        assert_eq!(clique.len(), 1);
    }
}
