//! Alternative edge-membership structures (paper §III-3).
//!
//! The choice of graph data structure determines the speed of the set
//! intersections at the heart of the search. The paper weighs three options
//! and picks CSR + binary search for its memory economy on large graphs:
//!
//! * **Bitset adjacency matrix** — O(1) lookups via bitwise ops, but
//!   `n²/8` bytes ("very space-inefficient"); the choice of
//!   VanCompernolle et al. and several CPU solvers.
//! * **CSR with sorted adjacency + binary search** — `O(log d)` lookups at
//!   `O(|E|)` space; the paper's choice ([`Csr::has_edge`]).
//! * **Hash tables** — near-O(1) expected lookups at `O(|E|)` space with a
//!   constant-factor overhead; the choice of Lessley et al.
//!
//! All three implement [`EdgeOracle`], so the solver can be parameterised
//! over the lookup strategy and the trade-off measured (see the `ablations`
//! bench target).

use crate::Csr;

/// Edge-membership oracle: the single operation the expansion kernels need.
pub trait EdgeOracle: Sync {
    /// Whether the undirected edge `{u, v}` exists.
    fn connected(&self, u: u32, v: u32) -> bool;

    /// Approximate device-memory footprint of the structure, in bytes
    /// (charged by the solver when it builds one).
    fn footprint_bytes(&self) -> usize;
}

impl EdgeOracle for Csr {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        self.has_edge(u, v)
    }

    fn footprint_bytes(&self) -> usize {
        // Offsets plus neighbor array (already resident for the CSR).
        std::mem::size_of_val(self.offsets()) + std::mem::size_of_val(self.neighbor_array())
    }
}

/// Dense bitset adjacency matrix: one bit per ordered pair.
///
/// `n²/8` bytes — quadratic, so only sensible for graphs up to a few tens
/// of thousands of vertices, but lookups are a single shift/mask.
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Builds the matrix from a CSR graph.
    pub fn build(graph: &Csr) -> Self {
        let n = graph.num_vertices();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for v in 0..n as u32 {
            let row = v as usize * words_per_row;
            for &u in graph.neighbors(v) {
                bits[row + (u as usize >> 6)] |= 1 << (u as usize & 63);
            }
        }
        Self {
            n,
            words_per_row,
            bits,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of common neighbors of `u` and `v` via word-wise AND +
    /// popcount — the "fastest intersections use bitwise operations" path
    /// the paper cites.
    pub fn intersection_size(&self, u: u32, v: u32) -> usize {
        let ru = u as usize * self.words_per_row;
        let rv = v as usize * self.words_per_row;
        let mut count = 0usize;
        for w in 0..self.words_per_row {
            count += (self.bits[ru + w] & self.bits[rv + w]).count_ones() as usize;
        }
        count
    }
}

impl EdgeOracle for BitMatrix {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        let row = u as usize * self.words_per_row;
        (self.bits[row + (v as usize >> 6)] >> (v as usize & 63)) & 1 == 1
    }

    fn footprint_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }
}

/// Open-addressing hash set of edges, keyed on the ordered pair.
///
/// A single flat table of 64-bit keys (`(min << 32) | max`), linear
/// probing, ~50% load factor. Space `O(|E|)` like the CSR, lookups O(1)
/// expected without the `log d` factor.
pub struct HashAdjacency {
    mask: usize,
    table: Vec<u64>,
}

/// Sentinel for an empty slot (no valid edge encodes to all-ones: that
/// would need two vertices equal to `u32::MAX`, which [`Csr`] cannot hold
/// as a loop-free pair).
const EMPTY: u64 = u64::MAX;

impl HashAdjacency {
    /// Builds the table from a CSR graph.
    pub fn build(graph: &Csr) -> Self {
        let edges = graph.num_edges();
        let capacity = (edges.max(1) * 2).next_power_of_two();
        let mask = capacity - 1;
        let mut table = vec![EMPTY; capacity];
        for v in 0..graph.num_vertices() as u32 {
            for &u in graph.neighbors(v) {
                if v < u {
                    let key = Self::key(v, u);
                    let mut slot = Self::hash(key) & mask;
                    while table[slot] != EMPTY {
                        slot = (slot + 1) & mask;
                    }
                    table[slot] = key;
                }
            }
        }
        Self { mask, table }
    }

    #[inline]
    fn key(u: u32, v: u32) -> u64 {
        ((u.min(v) as u64) << 32) | u.max(v) as u64
    }

    /// Fibonacci multiplicative hash — fast and adequate for edge keys.
    #[inline]
    fn hash(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize
    }
}

impl EdgeOracle for HashAdjacency {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let key = Self::key(u, v);
        let mut slot = Self::hash(key) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == key {
                return true;
            }
            if entry == EMPTY {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn oracles_agree(graph: &Csr) {
        let bits = BitMatrix::build(graph);
        let hash = HashAdjacency::build(graph);
        let n = graph.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                let expected = graph.has_edge(u, v);
                assert_eq!(bits.connected(u, v), expected, "bitset ({u},{v})");
                assert_eq!(hash.connected(u, v), expected, "hash ({u},{v})");
            }
        }
    }

    #[test]
    fn all_oracles_agree_on_random_graphs() {
        for seed in 0..5 {
            oracles_agree(&generators::gnp(60, 0.2, seed));
        }
    }

    #[test]
    fn all_oracles_agree_on_structured_graphs() {
        oracles_agree(&generators::complete(20));
        oracles_agree(&Csr::empty(10));
        oracles_agree(&Csr::from_edges(2, &[(0, 1)]));
        oracles_agree(&generators::road_mesh(8, 8, 0.9, 0.1, 3));
    }

    #[test]
    fn bitmatrix_intersections() {
        // K4: any two vertices share the other two.
        let g = generators::complete(4);
        let bits = BitMatrix::build(&g);
        assert_eq!(bits.intersection_size(0, 1), 2);
        // Path 0-1-2: endpoints share the middle.
        let p = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let bits = BitMatrix::build(&p);
        assert_eq!(bits.intersection_size(0, 2), 1);
        assert_eq!(bits.intersection_size(0, 1), 0);
    }

    #[test]
    fn footprints_have_expected_shape() {
        let g = generators::gnp(256, 0.1, 7);
        let csr_bytes = g.footprint_bytes();
        let bits = BitMatrix::build(&g).footprint_bytes();
        let hash = HashAdjacency::build(&g).footprint_bytes();
        // Bitset is n²/8 = 8 KiB regardless of density.
        assert_eq!(bits, 256 * 4 * 8);
        // Hash ~ 2|E| slots of 8 bytes, power of two.
        assert!(hash >= g.num_edges() * 16);
        assert!(csr_bytes > 0);
    }

    #[test]
    fn hash_handles_collision_chains() {
        // A star forces many keys sharing the low vertex.
        let mut edges = Vec::new();
        for v in 1..500u32 {
            edges.push((0, v));
        }
        let g = Csr::from_edges(500, &edges);
        let hash = HashAdjacency::build(&g);
        for v in 1..500u32 {
            assert!(hash.connected(0, v));
            assert!(hash.connected(v, 0));
        }
        assert!(!hash.connected(1, 2));
        assert!(!hash.connected(0, 0));
    }

    #[test]
    fn empty_graph_oracles() {
        let g = Csr::empty(4);
        let hash = HashAdjacency::build(&g);
        assert!(!hash.connected(0, 1));
        let bits = BitMatrix::build(&g);
        assert!(!bits.connected(2, 3));
    }
}
