//! Alternative edge-membership structures (paper §III-3).
//!
//! The choice of graph data structure determines the speed of the set
//! intersections at the heart of the search. The paper weighs three options
//! and picks CSR + binary search for its memory economy on large graphs:
//!
//! * **Bitset adjacency matrix** — O(1) lookups via bitwise ops, but
//!   `n²/8` bytes ("very space-inefficient"); the choice of
//!   VanCompernolle et al. and several CPU solvers.
//! * **CSR with sorted adjacency + binary search** — `O(log d)` lookups at
//!   `O(|E|)` space; the paper's choice ([`Csr::has_edge`]).
//! * **Hash tables** — near-O(1) expected lookups at `O(|E|)` space with a
//!   constant-factor overhead; the choice of Lessley et al.
//!
//! All three implement [`EdgeOracle`], so the solver can be parameterised
//! over the lookup strategy and the trade-off measured (see the `ablations`
//! bench target).
//!
//! A fourth structure sits between the global bitset and the per-pair
//! oracles: the *sublist-local* adjacency bitmap ([`LocalBitmap`] /
//! [`local_row_intersect`]) the fused expansion kernels build per BFS
//! sublist, turning the tail intersection into word-wise shifts and
//! popcounts without ever materialising the `n²` matrix.

use crate::Csr;
use gmc_dpp::{DeviceError, Executor, SharedSlice, UninitSlice};

/// Edge-membership oracle: the single operation the expansion kernels need.
pub trait EdgeOracle: Sync {
    /// Whether the undirected edge `{u, v}` exists.
    fn connected(&self, u: u32, v: u32) -> bool;

    /// Approximate device-memory footprint of the structure, in bytes
    /// (charged by the solver when it builds one).
    fn footprint_bytes(&self) -> usize;
}

impl EdgeOracle for Csr {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        self.has_edge(u, v)
    }

    fn footprint_bytes(&self) -> usize {
        // Offsets plus neighbor array (already resident for the CSR).
        std::mem::size_of_val(self.offsets()) + std::mem::size_of_val(self.neighbor_array())
    }
}

/// Dense bitset adjacency matrix: one bit per ordered pair.
///
/// `n²/8` bytes — quadratic, so only sensible for graphs up to a few tens
/// of thousands of vertices, but lookups are a single shift/mask.
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Builds the matrix from a CSR graph as one executor launch: a virtual
    /// thread per row streams that vertex's sorted adjacency list into
    /// packed words (each word written exactly once), so the quadratic
    /// setup cost lands on the device and in traces like every other
    /// kernel.
    pub fn build(exec: &Executor, graph: &Csr) -> Self {
        let n = graph.num_vertices();
        let words_per_row = n.div_ceil(64);
        let mut bits = Vec::new();
        {
            let dst = UninitSlice::for_vec(&mut bits, n * words_per_row);
            // Cost hint: a row streams its adjacency list plus the row's
            // zero-fill, so degree skew maps straight onto launch skew.
            let row_cost = |v: usize| (graph.degree(v as u32) + words_per_row) as u64;
            exec.for_each_weighted_named("bitmatrix_build_rows", n, row_cost, |v| {
                let row = v * words_per_row;
                let mut word = 0u64;
                let mut cur = 0usize;
                for &u in graph.neighbors(v as u32) {
                    let w = u as usize >> 6;
                    while cur < w {
                        // SAFETY: row `v` owns words `row..row + words_per_row`;
                        // the cursor visits each exactly once.
                        unsafe { dst.write(row + cur, word) };
                        word = 0;
                        cur += 1;
                    }
                    word |= 1 << (u as usize & 63);
                }
                for w in cur..words_per_row {
                    // SAFETY: completes the row — the partial word, then
                    // zeros — one write per slot.
                    unsafe { dst.write(row + w, if w == cur { word } else { 0 }) };
                }
            });
        }
        // SAFETY: the launch wrote every word of every row.
        unsafe { bits.set_len(n * words_per_row) };
        Self {
            n,
            words_per_row,
            bits,
        }
    }

    /// Device footprint of a matrix over `n` vertices, computable *before*
    /// building (so OOM can fail fast without materialising `n²/8` bytes).
    pub fn footprint_for(n: usize) -> usize {
        n * n.div_ceil(64) * std::mem::size_of::<u64>()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of common neighbors of `u` and `v` via word-wise AND +
    /// popcount — the "fastest intersections use bitwise operations" path
    /// the paper cites.
    pub fn intersection_size(&self, u: u32, v: u32) -> usize {
        let ru = u as usize * self.words_per_row;
        let rv = v as usize * self.words_per_row;
        let mut count = 0usize;
        for w in 0..self.words_per_row {
            count += (self.bits[ru + w] & self.bits[rv + w]).count_ones() as usize;
        }
        count
    }
}

impl EdgeOracle for BitMatrix {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        let row = u as usize * self.words_per_row;
        (self.bits[row + (v as usize >> 6)] >> (v as usize & 63)) & 1 == 1
    }

    fn footprint_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }
}

/// Sentinel in [`CoreBitmap`]'s renumber table for a vertex removed by the
/// setup phase's core pruning.
const PRUNED: u32 = u32::MAX;

/// A *persistent* core-graph adjacency bitmap: the dense bitset matrix of
/// the subgraph induced by the vertices that survive k-core pruning,
/// renumbered into a degeneracy-ordered dense ID space.
///
/// The GPU clique literature (Almasri et al.) materialises a binary-encoded
/// induced subgraph once after preprocessing and probes it for the rest of
/// the search. This is the same move: core pruning typically discards the
/// long sparse tail of a power-law graph, so `n_core² / 8` bytes is often
/// affordable where `n² / 8` is not, and every successor-adjacency probe
/// for the rest of the solve becomes a single word test — no per-level
/// rebuild, no [`EdgeOracle`] binary search on the hot path.
///
/// Probes take *original* vertex ids and translate through the renumber
/// table; both endpoints must have survived pruning (the solver's 2-clique
/// list only carries survivors, so this holds on the hot path by
/// construction).
pub struct CoreBitmap {
    /// `new_of_old[old_id]` — dense degeneracy-ordered id, or [`PRUNED`].
    new_of_old: Vec<u32>,
    /// `n_core × n_core` adjacency over the dense id space.
    matrix: BitMatrix,
}

impl CoreBitmap {
    /// Device footprint of a bitmap over `n_core` surviving vertices of an
    /// `n_total`-vertex graph, computable *before* building: the dense
    /// matrix plus the `u32` renumber table.
    pub fn footprint_for(n_core: usize, n_total: usize) -> usize {
        BitMatrix::footprint_for(n_core) + n_total * std::mem::size_of::<u32>()
    }

    /// Builds the bitmap for the vertices with `keep[v] == true`, as two
    /// executor launches: a renumber scatter (one virtual thread per
    /// survivor) and a weighted row build (one virtual thread per row,
    /// cost-hinted by degree). Both are `try_` launches, so injected
    /// faults and deadline cancellation surface here instead of aborting —
    /// the caller degrades to per-level bitmaps or unwinds its charge.
    pub fn try_build(exec: &Executor, graph: &Csr, keep: &[bool]) -> Result<Self, DeviceError> {
        assert_eq!(keep.len(), graph.num_vertices(), "keep mask length");
        exec.check_cancelled()?;
        // Degeneracy order over the full graph, filtered to the survivors:
        // the dense ID space inherits the orientation the search uses.
        let (order, _) = crate::kcore::degeneracy_order(graph);
        let old_of_new: Vec<u32> = order.into_iter().filter(|&v| keep[v as usize]).collect();
        let n_core = old_of_new.len();
        let mut new_of_old = vec![PRUNED; graph.num_vertices()];
        {
            let dst = SharedSlice::new(&mut new_of_old);
            let ids = &old_of_new;
            exec.try_for_each_indexed_named("corebits_renumber", n_core, |i| {
                // SAFETY: `old_of_new` entries are distinct, so each slot
                // has exactly one writer.
                unsafe { dst.write(ids[i] as usize, i as u32) };
            })?;
        }
        let words_per_row = n_core.div_ceil(64);
        let mut bits = vec![0u64; n_core * words_per_row];
        {
            let dst = SharedSlice::new(&mut bits);
            let remap = &new_of_old;
            let ids = &old_of_new;
            let row_cost = |r: usize| (graph.degree(ids[r]) + words_per_row) as u64;
            exec.try_for_each_weighted_named("corebits_build_rows", n_core, row_cost, |r| {
                let row = r * words_per_row;
                for &u in graph.neighbors(ids[r]) {
                    let c = remap[u as usize];
                    if c != PRUNED {
                        let slot = row + (c as usize >> 6);
                        // SAFETY: row `r` owns words `row..row +
                        // words_per_row`; read-modify-write by the
                        // exclusive owner is allowed by the contract.
                        unsafe { dst.write(slot, dst.read(slot) | 1 << (c & 63)) };
                    }
                }
            })?;
        }
        Ok(Self {
            new_of_old,
            matrix: BitMatrix {
                n: n_core,
                words_per_row,
                bits,
            },
        })
    }

    /// Number of vertices that survived pruning (matrix dimension).
    pub fn num_core_vertices(&self) -> usize {
        self.matrix.n
    }

    /// Whether original-id vertex `v` survived pruning (i.e. is probeable).
    pub fn covers(&self, v: u32) -> bool {
        self.new_of_old[v as usize] != PRUNED
    }

    /// The dense matrix over the renumbered id space.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// Whether original-id vertices `u` and `v` are adjacent: two table
    /// reads and one word test. Both endpoints must have survived pruning.
    #[inline]
    pub fn probe(&self, u: u32, v: u32) -> bool {
        let nu = self.new_of_old[u as usize];
        let nv = self.new_of_old[v as usize];
        debug_assert!(
            nu != PRUNED && nv != PRUNED,
            "persistent probe on a pruned vertex ({u}, {v})"
        );
        self.matrix.connected(nu, nv)
    }
}

impl EdgeOracle for CoreBitmap {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        self.probe(u, v)
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes() + std::mem::size_of_val(self.new_of_old.as_slice())
    }
}

/// Packs a sublist member for the local-bitmap builder: the vertex id in
/// the high 32 bits — so sorting packed keys sorts by vertex — and the
/// member's position within the sublist in the low 32 bits.
#[inline]
pub fn pack_member(vertex: u32, pos: u32) -> u64 {
    (u64::from(vertex) << 32) | u64::from(pos)
}

/// The vertex id of a packed member key.
#[inline]
pub fn member_vertex(packed: u64) -> u32 {
    (packed >> 32) as u32
}

/// The sublist position of a packed member key.
#[inline]
pub fn member_pos(packed: u64) -> u32 {
    packed as u32
}

/// Threshold at which the row intersection switches from linear merge to
/// galloping: when one side outnumbers the other by this factor, binary
/// probes into the long side beat stepping through it.
const GALLOP_RATIO: usize = 16;

/// Fills one row of a sublist-local adjacency bitmap: calls `set(pos)` for
/// every sublist member adjacent to the row's vertex. `neighbors` is the
/// vertex's sorted CSR adjacency list; `members` is the sublist packed by
/// [`pack_member`] and sorted (i.e. sorted by vertex id). The merge gallops
/// whichever side is much longer, so a hub vertex costs
/// `O(m log(d / m))` instead of `O(d)` — and makes **no** [`EdgeOracle`]
/// probes at all.
pub fn local_row_intersect(neighbors: &[u32], members: &[u64], mut set: impl FnMut(u32)) {
    let mut i = 0usize; // cursor into neighbors
    let mut j = 0usize; // cursor into members
    while i < neighbors.len() && j < members.len() {
        let rest_n = neighbors.len() - i;
        let rest_m = members.len() - j;
        if rest_n > GALLOP_RATIO * rest_m {
            let v = member_vertex(members[j]);
            i += gallop(&neighbors[i..], v, |&u| u);
            if i < neighbors.len() && neighbors[i] == v {
                set(member_pos(members[j]));
                i += 1;
            }
            j += 1;
        } else if rest_m > GALLOP_RATIO * rest_n {
            let u = neighbors[i];
            j += gallop(&members[j..], u, |&p| member_vertex(p));
            if j < members.len() && member_vertex(members[j]) == u {
                set(member_pos(members[j]));
                j += 1;
            }
            i += 1;
        } else {
            let u = neighbors[i];
            let v = member_vertex(members[j]);
            match u.cmp(&v) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    set(member_pos(members[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Exponential search: the first index of `slice` whose key is `>= target`.
fn gallop<T>(slice: &[T], target: u32, key: impl Fn(&T) -> u32) -> usize {
    let mut bound = 1usize;
    while bound < slice.len() && key(&slice[bound - 1]) < target {
        bound *= 2;
    }
    let lo = bound / 2;
    let hi = bound.min(slice.len());
    lo + slice[lo..hi].partition_point(|x| key(x) < target)
}

/// A sublist-local adjacency bitmap: one `m`-bit row per sublist member,
/// rows packed into `m.div_ceil(64)` words each. Row `r`, bit `c` is set
/// iff members `r` and `c` are adjacent (the diagonal stays clear).
///
/// This owning builder is the reference form; the fused expansion kernels
/// build the same rows directly into arena scratch via
/// [`local_row_intersect`], one virtual thread per row.
pub struct LocalBitmap {
    m: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl LocalBitmap {
    /// Builds the bitmap for `members` (distinct vertices, any order) from
    /// the graph's sorted adjacency lists.
    pub fn build(graph: &Csr, members: &[u32]) -> Self {
        let m = members.len();
        let words_per_row = m.div_ceil(64);
        let mut packed: Vec<u64> = members
            .iter()
            .enumerate()
            .map(|(pos, &v)| pack_member(v, pos as u32))
            .collect();
        packed.sort_unstable();
        let mut words = vec![0u64; m * words_per_row];
        for (r, &v) in members.iter().enumerate() {
            let row = &mut words[r * words_per_row..(r + 1) * words_per_row];
            local_row_intersect(graph.neighbors(v), &packed, |pos| {
                row[pos as usize / 64] |= 1 << (pos % 64);
            });
        }
        Self {
            m,
            words_per_row,
            words,
        }
    }

    /// Number of members (bits per row).
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the sublist is empty.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Whether members `r` and `c` are adjacent.
    pub fn bit(&self, r: usize, c: usize) -> bool {
        (self.row(r)[c / 64] >> (c % 64)) & 1 == 1
    }
}

/// Open-addressing hash set of edges, keyed on the ordered pair.
///
/// A single flat table of 64-bit keys (`(min << 32) | max`), linear
/// probing, ~50% load factor. Space `O(|E|)` like the CSR, lookups O(1)
/// expected without the `log d` factor.
pub struct HashAdjacency {
    mask: usize,
    table: Vec<u64>,
}

/// Sentinel for an empty slot (no valid edge encodes to all-ones: that
/// would need two vertices equal to `u32::MAX`, which [`Csr`] cannot hold
/// as a loop-free pair).
const EMPTY: u64 = u64::MAX;

impl HashAdjacency {
    /// Device footprint of a table over `num_edges` edges, computable
    /// *before* building (so OOM can fail fast).
    pub fn footprint_for(num_edges: usize) -> usize {
        (num_edges.max(1) * 2).next_power_of_two() * std::mem::size_of::<u64>()
    }

    /// Builds the table from a CSR graph.
    pub fn build(graph: &Csr) -> Self {
        let edges = graph.num_edges();
        let capacity = Self::footprint_for(edges) / std::mem::size_of::<u64>();
        let mask = capacity - 1;
        let mut table = vec![EMPTY; capacity];
        for v in 0..graph.num_vertices() as u32 {
            for &u in graph.neighbors(v) {
                if v < u {
                    let key = Self::key(v, u);
                    let mut slot = Self::hash(key) & mask;
                    while table[slot] != EMPTY {
                        slot = (slot + 1) & mask;
                    }
                    table[slot] = key;
                }
            }
        }
        Self { mask, table }
    }

    #[inline]
    fn key(u: u32, v: u32) -> u64 {
        ((u.min(v) as u64) << 32) | u.max(v) as u64
    }

    /// Fibonacci multiplicative hash — fast and adequate for edge keys.
    #[inline]
    fn hash(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize
    }
}

impl EdgeOracle for HashAdjacency {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let key = Self::key(u, v);
        let mut slot = Self::hash(key) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == key {
                return true;
            }
            if entry == EMPTY {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn exec() -> Executor {
        Executor::new(2)
    }

    fn oracles_agree(graph: &Csr) {
        let bits = BitMatrix::build(&exec(), graph);
        let hash = HashAdjacency::build(graph);
        let n = graph.num_vertices() as u32;
        for u in 0..n {
            for v in 0..n {
                let expected = graph.has_edge(u, v);
                assert_eq!(bits.connected(u, v), expected, "bitset ({u},{v})");
                assert_eq!(hash.connected(u, v), expected, "hash ({u},{v})");
            }
        }
    }

    #[test]
    fn all_oracles_agree_on_random_graphs() {
        for seed in 0..5 {
            oracles_agree(&generators::gnp(60, 0.2, seed));
        }
    }

    #[test]
    fn all_oracles_agree_on_structured_graphs() {
        oracles_agree(&generators::complete(20));
        oracles_agree(&Csr::empty(10));
        oracles_agree(&Csr::from_edges(2, &[(0, 1)]));
        oracles_agree(&generators::road_mesh(8, 8, 0.9, 0.1, 3));
    }

    #[test]
    fn bitmatrix_intersections() {
        // K4: any two vertices share the other two.
        let g = generators::complete(4);
        let bits = BitMatrix::build(&exec(), &g);
        assert_eq!(bits.intersection_size(0, 1), 2);
        // Path 0-1-2: endpoints share the middle.
        let p = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let bits = BitMatrix::build(&exec(), &p);
        assert_eq!(bits.intersection_size(0, 2), 1);
        assert_eq!(bits.intersection_size(0, 1), 0);
    }

    #[test]
    fn footprints_have_expected_shape() {
        let g = generators::gnp(256, 0.1, 7);
        let csr_bytes = g.footprint_bytes();
        let bits = BitMatrix::build(&exec(), &g).footprint_bytes();
        let hash = HashAdjacency::build(&g).footprint_bytes();
        // Bitset is n²/8 = 8 KiB regardless of density.
        assert_eq!(bits, 256 * 4 * 8);
        // Hash ~ 2|E| slots of 8 bytes, power of two.
        assert!(hash >= g.num_edges() * 16);
        assert!(csr_bytes > 0);
        // The pre-build footprint formulas match what building charges.
        assert_eq!(BitMatrix::footprint_for(g.num_vertices()), bits);
        assert_eq!(HashAdjacency::footprint_for(g.num_edges()), hash);
    }

    #[test]
    fn hash_handles_collision_chains() {
        // A star forces many keys sharing the low vertex.
        let mut edges = Vec::new();
        for v in 1..500u32 {
            edges.push((0, v));
        }
        let g = Csr::from_edges(500, &edges);
        let hash = HashAdjacency::build(&g);
        for v in 1..500u32 {
            assert!(hash.connected(0, v));
            assert!(hash.connected(v, 0));
        }
        assert!(!hash.connected(1, 2));
        assert!(!hash.connected(0, 0));
    }

    #[test]
    fn empty_graph_oracles() {
        let g = Csr::empty(4);
        let hash = HashAdjacency::build(&g);
        assert!(!hash.connected(0, 1));
        let bits = BitMatrix::build(&exec(), &g);
        assert!(!bits.connected(2, 3));
    }

    #[test]
    fn parallel_bitmatrix_is_worker_count_invariant() {
        let g = generators::gnp(130, 0.15, 9);
        let reference = BitMatrix::build(&Executor::new(1), &g);
        for workers in [2, 8] {
            let bits = BitMatrix::build(&Executor::new(workers), &g);
            assert_eq!(bits.bits, reference.bits, "workers {workers}");
        }
    }

    #[test]
    fn local_bitmap_matches_oracle_on_arbitrary_member_sets() {
        let g = generators::gnp(80, 0.25, 11);
        // Unsorted member slice, as deeper BFS levels produce.
        let members: Vec<u32> = vec![17, 3, 42, 8, 77, 21, 5, 60, 33];
        let local = LocalBitmap::build(&g, &members);
        assert_eq!(local.len(), members.len());
        for (r, &u) in members.iter().enumerate() {
            for (c, &v) in members.iter().enumerate() {
                assert_eq!(local.bit(r, c), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn local_bitmap_spans_multiple_words() {
        // 70 members of a complete graph: rows are 2 words, every off-
        // diagonal bit set.
        let g = generators::complete(70);
        let members: Vec<u32> = (0..70).collect();
        let local = LocalBitmap::build(&g, &members);
        assert_eq!(local.words_per_row(), 2);
        for r in 0..70 {
            for c in 0..70 {
                assert_eq!(local.bit(r, c), r != c, "({r},{c})");
            }
        }
        assert!(LocalBitmap::build(&g, &[]).is_empty());
    }

    #[test]
    fn galloping_intersect_agrees_with_linear_merge() {
        // A hub whose adjacency list dwarfs the member slice, and vice
        // versa, so both galloping arms execute.
        let mut edges: Vec<(u32, u32)> = (1..2000).map(|v| (0, v)).collect();
        edges.push((3, 7));
        let g = Csr::from_edges(2000, &edges);
        let members = [0u32, 3, 7, 500, 1999];
        let local = LocalBitmap::build(&g, &members);
        for (r, &u) in members.iter().enumerate() {
            for (c, &v) in members.iter().enumerate() {
                assert_eq!(local.bit(r, c), g.has_edge(u, v), "({u},{v})");
            }
        }
        // Members far longer than a short adjacency list.
        let many: Vec<u32> = (0..1500).collect();
        let local = LocalBitmap::build(&g, &many);
        for c in 1..1500 {
            assert_eq!(local.bit(3, c), g.has_edge(3, c as u32), "(3,{c})");
        }
    }

    #[test]
    fn core_bitmap_agrees_with_graph_on_kept_pairs() {
        let g = generators::gnp(120, 0.12, 17);
        // Keep roughly two thirds of the vertices, scattered.
        let keep: Vec<bool> = (0..g.num_vertices()).map(|v| v % 3 != 1).collect();
        let core = CoreBitmap::try_build(&exec(), &g, &keep).expect("fault-free build");
        let kept: Vec<u32> = (0..g.num_vertices() as u32)
            .filter(|&v| keep[v as usize])
            .collect();
        assert_eq!(core.num_core_vertices(), kept.len());
        for &v in &kept {
            assert!(core.covers(v));
        }
        assert!(!core.covers(1));
        for &u in &kept {
            for &v in &kept {
                assert_eq!(core.probe(u, v), g.has_edge(u, v), "({u},{v})");
                assert_eq!(core.connected(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
        // Footprint formula matches what building would charge.
        assert_eq!(
            CoreBitmap::footprint_for(kept.len(), g.num_vertices()),
            core.footprint_bytes()
        );
    }

    #[test]
    fn core_bitmap_is_worker_count_invariant_and_handles_edges_to_pruned() {
        // A hub star plus a triangle; prune the hub so rows must skip
        // neighbors that map to the sentinel.
        let mut edges: Vec<(u32, u32)> = (1..40u32).map(|v| (0, v)).collect();
        edges.push((1, 2));
        edges.push((2, 3));
        edges.push((1, 3));
        let g = Csr::from_edges(40, &edges);
        let mut keep = vec![true; 40];
        keep[0] = false;
        let reference = CoreBitmap::try_build(&Executor::new(1), &g, &keep).unwrap();
        assert!(reference.probe(1, 2) && reference.probe(2, 3) && reference.probe(1, 3));
        assert!(!reference.probe(4, 5));
        for workers in [2, 8] {
            let core = CoreBitmap::try_build(&Executor::new(workers), &g, &keep).unwrap();
            assert_eq!(
                core.matrix().bits,
                reference.matrix().bits,
                "workers {workers}"
            );
            assert_eq!(core.new_of_old, reference.new_of_old, "workers {workers}");
        }
        // Empty keep mask: a zero-dimension matrix, nothing covered.
        let none = CoreBitmap::try_build(&exec(), &g, &[false; 40]).unwrap();
        assert_eq!(none.num_core_vertices(), 0);
        assert!(!none.covers(0));
    }

    #[test]
    fn core_bitmap_observes_cancellation() {
        let g = generators::gnp(30, 0.2, 3);
        let exec = exec();
        let token = gmc_dpp::CancelToken::new();
        exec.set_cancel_token(Some(token.clone()));
        token.cancel();
        let err = match CoreBitmap::try_build(&exec, &g, &[true; 30]) {
            Err(err) => err,
            Ok(_) => panic!("cancelled build must not succeed"),
        };
        assert!(matches!(err, DeviceError::Cancelled(_)));
        exec.set_cancel_token(None);
    }

    #[test]
    fn member_packing_round_trips() {
        let p = pack_member(0xDEAD_BEEF, 42);
        assert_eq!(member_vertex(p), 0xDEAD_BEEF);
        assert_eq!(member_pos(p), 42);
        // Sorting packed keys sorts by vertex id.
        let mut keys = [pack_member(9, 0), pack_member(2, 1), pack_member(5, 2)];
        keys.sort_unstable();
        let order: Vec<u32> = keys.iter().map(|&k| member_vertex(k)).collect();
        assert_eq!(order, [2, 5, 9]);
    }
}
