//! Extremal clique bounds used for sizing and sanity checks.

use crate::Csr;

/// Moon–Moser bound: the maximum possible number of maximal cliques in any
/// graph on `n` vertices (`3^(n/3)` with small residue-class corrections).
/// Wei et al. — whose windowing strategy the paper builds on — use this to
/// bound GPU subtree sizes; the auto window sizer does the same. Saturates
/// at `usize::MAX`.
pub fn moon_moser_bound(n: usize) -> usize {
    let (factor, exponent) = match n % 3 {
        0 => (1usize, n / 3),
        1 if n >= 4 => (4, (n - 4) / 3),
        1 => (1, 0),
        _ => (2, (n - 2) / 3),
    };
    let mut bound = factor;
    for _ in 0..exponent {
        bound = bound.saturating_mul(3);
    }
    bound.max(1)
}

/// Turán-type lower bound on the clique number: `ω ≥ n / (n − d̄)` where
/// `d̄` is the average degree (tight for Turán graphs). A free, if weak,
/// companion to the heuristic lower bounds.
pub fn turan_lower_bound(graph: &Csr) -> u32 {
    let n = graph.num_vertices() as f64;
    if n == 0.0 {
        return 0;
    }
    let d = graph.avg_degree();
    if d >= n - 1.0 {
        return n as u32;
    }
    (n / (n - d)).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn moon_moser_known_values() {
        assert_eq!(moon_moser_bound(0), 1);
        assert_eq!(moon_moser_bound(1), 1);
        assert_eq!(moon_moser_bound(2), 2);
        assert_eq!(moon_moser_bound(3), 3);
        assert_eq!(moon_moser_bound(4), 4);
        assert_eq!(moon_moser_bound(5), 6);
        assert_eq!(moon_moser_bound(6), 9);
        assert_eq!(moon_moser_bound(7), 12);
        assert_eq!(moon_moser_bound(9), 27);
        assert_eq!(moon_moser_bound(10), 36);
        assert_eq!(moon_moser_bound(10_000), usize::MAX);
    }

    #[test]
    fn turan_bound_on_known_graphs() {
        // Complete graph: bound equals n.
        assert_eq!(turan_lower_bound(&generators::complete(6)), 6);
        // Empty graph: every vertex is a 1-clique.
        assert_eq!(turan_lower_bound(&crate::Csr::empty(5)), 1);
        assert_eq!(turan_lower_bound(&crate::Csr::empty(0)), 0);
        // C5: avg degree 2, bound = ceil(5/3) = 2 = ω.
        let c5 = crate::Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(turan_lower_bound(&c5), 2);
    }

    #[test]
    fn turan_is_a_true_lower_bound_on_random_graphs() {
        // Cross-check against brute force on small graphs.
        let mut rng = gmc_dpp::Rng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(3usize..12);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        edges.push((u, v));
                    }
                }
            }
            let g = crate::Csr::from_edges(n, &edges);
            let bound = turan_lower_bound(&g);
            // Brute-force ω.
            let mut omega = 0;
            for mask in 1u32..(1 << n) {
                let members: Vec<u32> = (0..n as u32).filter(|v| mask & (1 << v) != 0).collect();
                if g.is_clique(&members) {
                    omega = omega.max(members.len() as u32);
                }
            }
            assert!(bound <= omega, "Turán bound {bound} exceeds ω {omega}");
        }
    }
}
