//! Seeded synthetic graph generators.
//!
//! The paper evaluates on 58 real-world Network Repository graphs spanning
//! social, web, road, biological, technological and collaboration networks.
//! Those datasets are not redistributable here, so the corpus crate
//! synthesises stand-ins from these generator families, chosen so that each
//! category reproduces the structural property the paper's analysis keys on
//! (average degree vs. clique size, degree skew, prunability). All
//! generators are deterministic in `(parameters, seed)`.

use crate::{Csr, GraphBuilder};
use gmc_dpp::Rng;
use std::collections::HashSet;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The complete multipartite graph with the given part sizes: every pair of
/// vertices in *different* parts is adjacent. With `k` parts the clique
/// number is exactly `k` (one vertex per part) and the number of maximum
/// cliques is the product of the part sizes — for parts of size 3 these are
/// the Moon–Moser extremal graphs whose `3^(n/3)` maximal cliques bound the
/// breadth-first memory worst case.
pub fn complete_multipartite(parts: &[usize]) -> Csr {
    let n: usize = parts.iter().sum();
    let mut part_of = Vec::with_capacity(n);
    for (p, &size) in parts.iter().enumerate() {
        part_of.extend(std::iter::repeat_n(p, size));
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if part_of[u as usize] != part_of[v as usize] {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` via the Batagelj–Brandes geometric-skip method,
/// `O(n + m)` expected time.
pub fn gnp(n: usize, p: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        // Geometric skip over the implicit pair enumeration: the gap until
        // the next present edge is Geometric(p).
        w += 1 + rng.geometric(p) as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            b.add_edge(w as u32, v as u32);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct random edges (capped at the
/// number of possible pairs).
pub fn gnm(n: usize, m: usize, seed: u64) -> Csr {
    let mut rng = Rng::seed_from_u64(seed);
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(possible);
    let mut chosen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let (lo, hi) = (u.min(v), u.max(v));
        if chosen.insert(((lo as u64) << 32) | hi as u64) {
            b.add_edge(lo, hi);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to `m`
/// distinct existing vertices with probability proportional to degree.
/// Produces the heavy-tailed degree distributions typical of social and web
/// graphs.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices than attachments");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Seed: a star on the first m + 1 vertices (connected, minimal bias).
    let mut targets: Vec<u32> = Vec::new(); // repeated-endpoint urn
    for v in 1..=m as u32 {
        b.add_edge(0, v);
        targets.push(0);
        targets.push(v);
    }
    for v in (m + 1)..n {
        // `m` is small, so a Vec with linear membership checks is both
        // faster than a HashSet and — unlike HashSet iteration — keeps the
        // urn updates deterministic.
        let mut picked: Vec<u32> = Vec::with_capacity(m);
        while picked.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(v as u32, t);
            targets.push(v as u32);
            targets.push(t);
        }
    }
    b.build()
}

/// Holme–Kim powerlaw-cluster model: Barabási–Albert plus triad formation.
/// After each preferential attachment, with probability `p_triad` the next
/// link closes a triangle with a neighbor of the previous target. High
/// clustering plus heavy tails — the structure of friendship networks,
/// where sizeable cliques emerge.
pub fn holme_kim(n: usize, m: usize, p_triad: f64, seed: u64) -> Csr {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices than attachments");
    assert!(
        (0.0..=1.0).contains(&p_triad),
        "p_triad must be a probability"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut targets: Vec<u32> = Vec::new();
    let connect = |b: &mut GraphBuilder,
                   adjacency: &mut Vec<Vec<u32>>,
                   targets: &mut Vec<u32>,
                   u: u32,
                   v: u32| {
        b.add_edge(u, v);
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        targets.push(u);
        targets.push(v);
    };
    for v in 1..=m as u32 {
        connect(&mut b, &mut adjacency, &mut targets, 0, v);
    }
    for v in (m + 1)..n {
        let v = v as u32;
        let mut last_target: Option<u32> = None;
        let mut linked: Vec<u32> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut done = false;
            if let Some(prev) = last_target {
                if rng.gen_bool(p_triad) {
                    // Triad step: link to a random neighbor of `prev`.
                    let nbrs = &adjacency[prev as usize];
                    if !nbrs.is_empty() {
                        let w = nbrs[rng.gen_range(0..nbrs.len())];
                        if w != v && !linked.contains(&w) {
                            connect(&mut b, &mut adjacency, &mut targets, v, w);
                            linked.push(w);
                            last_target = Some(w);
                            done = true;
                        }
                    }
                }
            }
            if !done {
                // Preferential attachment step.
                for _ in 0..32 {
                    let t = targets[rng.gen_range(0..targets.len())];
                    if t != v && !linked.contains(&t) {
                        connect(&mut b, &mut adjacency, &mut targets, v, t);
                        linked.push(t);
                        last_target = Some(t);
                        break;
                    }
                }
            }
        }
    }
    b.build()
}

/// Holme–Kim with *mixed* attachment counts: each arriving vertex draws its
/// own `m` uniformly from `m_min..=m_max`. The result keeps the powerlaw
/// hubs and triadic clustering of [`holme_kim`] but spreads core numbers
/// across `m_min..m_max` while degrees range far higher — the
/// degree-vs-core-number gap that makes core-based pruning visibly tighter
/// than degree-based pruning (paper §II-B2 and the multi-core rows of
/// Table I).
pub fn holme_kim_mixed(n: usize, m_min: usize, m_max: usize, p_triad: f64, seed: u64) -> Csr {
    assert!(m_min >= 1 && m_max >= m_min, "need 1 <= m_min <= m_max");
    assert!(n > m_max, "need more vertices than attachments");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut targets: Vec<u32> = Vec::new();
    let connect = |b: &mut GraphBuilder,
                   adjacency: &mut Vec<Vec<u32>>,
                   targets: &mut Vec<u32>,
                   u: u32,
                   v: u32| {
        b.add_edge(u, v);
        adjacency[u as usize].push(v);
        adjacency[v as usize].push(u);
        targets.push(u);
        targets.push(v);
    };
    for v in 1..=m_max as u32 {
        connect(&mut b, &mut adjacency, &mut targets, 0, v);
    }
    for v in (m_max + 1)..n {
        let v = v as u32;
        let m = rng.gen_range(m_min..=m_max);
        let mut last_target: Option<u32> = None;
        let mut linked: Vec<u32> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut done = false;
            if let Some(prev) = last_target {
                if rng.gen_bool(p_triad) {
                    let nbrs = &adjacency[prev as usize];
                    if !nbrs.is_empty() {
                        let w = nbrs[rng.gen_range(0..nbrs.len())];
                        if w != v && !linked.contains(&w) {
                            connect(&mut b, &mut adjacency, &mut targets, v, w);
                            linked.push(w);
                            last_target = Some(w);
                            done = true;
                        }
                    }
                }
            }
            if !done {
                for _ in 0..32 {
                    let t = targets[rng.gen_range(0..targets.len())];
                    if t != v && !linked.contains(&t) {
                        connect(&mut b, &mut adjacency, &mut targets, v, t);
                        linked.push(t);
                        last_target = Some(t);
                        break;
                    }
                }
            }
        }
    }
    b.build()
}

/// Communities with acquaintance fans: `n_communities` disjoint cliques of
/// `community` members, where every member additionally carries `fan`
/// private degree-1 acquaintances.
///
/// Members end up with degree `community − 1 + fan` but core number only
/// `community − 1`: a large degree-vs-core gap on exactly the vertices that
/// drive breadth-first blow-up. With a lower bound above the community
/// size, core-number pruning removes every community outright while degree
/// pruning keeps them all — the paper's "tighter vertex pruning upper
/// bounds from the core numbers" mechanism (§V-B3c) in its purest form.
pub fn fanned_communities(n_communities: usize, community: usize, fan: usize, seed: u64) -> Csr {
    assert!(community >= 2, "communities need at least two members");
    let members = n_communities * community;
    let n = members + members * fan;
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut next_leaf = members as u32;
    for c in 0..n_communities {
        let base = (c * community) as u32;
        for i in 0..community as u32 {
            for j in (i + 1)..community as u32 {
                b.add_edge(base + i, base + j);
            }
        }
        for i in 0..community as u32 {
            for _ in 0..fan {
                b.add_edge(base + i, next_leaf);
                next_leaf += 1;
            }
        }
    }
    // A sprinkle of random member-to-member acquaintances so communities are
    // not perfectly disconnected components.
    for _ in 0..members / 4 {
        let u = rng.gen_range(0..members as u32);
        let v = rng.gen_range(0..members as u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors
/// (rounded down to even), each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Csr {
    assert!(n > k + 1, "need n > k + 1");
    let k = k & !1; // even
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut existing: HashSet<u64> = HashSet::new();
    let key = |u: u32, v: u32| ((u.min(v) as u64) << 32) | u.max(v) as u64;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let (u, v) = (u as u32, v as u32);
            edges.push((u, v));
            existing.insert(key(u, v));
        }
    }
    for edge in edges.iter_mut() {
        if rng.gen_bool(beta) {
            let (u, old_v) = *edge;
            for _ in 0..32 {
                let new_v = rng.gen_range(0..n as u32);
                if new_v != u && !existing.contains(&key(u, new_v)) {
                    existing.remove(&key(u, old_v));
                    existing.insert(key(u, new_v));
                    *edge = (u, new_v);
                    break;
                }
            }
        }
    }
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Random geometric graph: `n` points in the unit square, edges between
/// pairs within `radius`. Bucketed by a cell grid for near-linear
/// construction. Low-diameter local structure akin to sensor/technological
/// networks.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Csr {
    assert!(radius > 0.0, "radius must be positive");
    let mut rng = Rng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_f64(), rng.gen_f64())).collect();
    let cells_per_side = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_of = |x: f64, y: f64| {
        let cx = ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((y * cells_per_side as f64) as usize).min(cells_per_side - 1);
        cy * cells_per_side + cx
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets[cell_of(x, y)].push(i as u32);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for cy in 0..cells_per_side {
        for cx in 0..cells_per_side {
            let here = &buckets[cy * cells_per_side + cx];
            for (idx, &u) in here.iter().enumerate() {
                let (ux, uy) = points[u as usize];
                // Within-cell pairs.
                for &v in &here[idx + 1..] {
                    let (vx, vy) = points[v as usize];
                    if (ux - vx).powi(2) + (uy - vy).powi(2) <= r2 {
                        b.add_edge(u, v);
                    }
                }
                // Forward neighbor cells (E, SW, S, SE) to visit each pair once.
                for (dx, dy) in [(1i64, 0i64), (-1, 1), (0, 1), (1, 1)] {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0
                        || ny < 0
                        || nx >= cells_per_side as i64
                        || ny >= cells_per_side as i64
                    {
                        continue;
                    }
                    for &v in &buckets[ny as usize * cells_per_side + nx as usize] {
                        let (vx, vy) = points[v as usize];
                        if (ux - vx).powi(2) + (uy - vy).powi(2) <= r2 {
                            b.add_edge(u, v);
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// Road-network-like mesh: a `rows × cols` grid where each lattice edge is
/// kept with probability `keep_prob` and sparse diagonal shortcuts are added
/// with probability `diag_prob`. Average degree stays below 4 — the "low
/// average degree" regime where the paper's BFS approach performs best.
pub fn road_mesh(rows: usize, cols: usize, keep_prob: f64, diag_prob: f64, seed: u64) -> Csr {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen_bool(keep_prob) {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.gen_bool(keep_prob) {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols && rng.gen_bool(diag_prob) {
                b.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    b.build()
}

/// R-MAT recursive matrix sampler (`n = 2^scale` vertices, ~`edge_factor·n`
/// sampled arcs before cleanup). Skewed quadrant probabilities `(a, b, c)`
/// (with `d = 1 − a − b − c`) give the hub-heavy structure of web crawls.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b_p: f64, c_p: f64, seed: u64) -> Csr {
    let d = 1.0 - a - b_p - c_p;
    assert!(d >= -1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen_f64();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b_p {
                (0, 1)
            } else if r < a + b_p + c_p {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            builder.add_edge(u as u32, v as u32);
        }
    }
    builder.build()
}

/// Collaboration-network model: a union of cliques. Each of `n_papers`
/// "papers" is a clique over `min_authors..=max_authors` authors, sampled
/// with a power-law popularity bias (`concentration` > 1 skews toward
/// prolific authors). Collaboration networks are exactly unions of cliques,
/// which gives them large, well-separated maximum cliques — the easy-to-
/// prune regime in the paper's heuristic analysis (§V-B3b).
pub fn collaboration(
    n_authors: usize,
    n_papers: usize,
    min_authors: usize,
    max_authors: usize,
    concentration: f64,
    seed: u64,
) -> Csr {
    assert!(min_authors >= 1 && max_authors >= min_authors);
    assert!(
        n_authors >= max_authors,
        "need at least max_authors authors"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n_authors);
    for _ in 0..n_papers {
        let size = rng.gen_range(min_authors..=max_authors);
        let mut authors: HashSet<u32> = HashSet::with_capacity(size * 2);
        while authors.len() < size {
            // Power-law bias toward low author ids.
            let u: f64 = rng.gen_f64();
            let author = ((u.powf(concentration)) * n_authors as f64) as usize;
            authors.insert(author.min(n_authors - 1) as u32);
        }
        let mut authors: Vec<u32> = authors.into_iter().collect();
        authors.sort_unstable();
        for (i, &x) in authors.iter().enumerate() {
            for &y in &authors[i + 1..] {
                b.add_edge(x, y);
            }
        }
    }
    b.build()
}

/// Overlays several cliques of the given sizes on `graph` in one rebuild,
/// returning the new graph and each clique's (sorted) members. Models
/// community cores / protein complexes / link farms: dense groups embedded
/// in a sparse background. Without a good lower bound, each size-`s` group
/// costs a breadth-first search `2^s` candidate entries, which is what makes
/// such graphs memory-hard to solve unpruned.
pub fn plant_cliques(graph: &Csr, sizes: &[usize], seed: u64) -> (Csr, Vec<Vec<u32>>) {
    let n = graph.num_vertices();
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for &u in graph.neighbors(v) {
            if v < u {
                b.add_edge(v, u);
            }
        }
    }
    let mut all_members = Vec::with_capacity(sizes.len());
    for &size in sizes {
        assert!(size <= n, "clique larger than graph");
        let mut members: HashSet<u32> = HashSet::with_capacity(size * 2);
        while members.len() < size {
            members.insert(rng.gen_range(0..n as u32));
        }
        let mut members: Vec<u32> = members.into_iter().collect();
        members.sort_unstable();
        for (i, &x) in members.iter().enumerate() {
            for &y in &members[i + 1..] {
                b.add_edge(x, y);
            }
        }
        all_members.push(members);
    }
    (b.build(), all_members)
}

/// Overlays a clique of `size` random vertices on `graph`, returning the new
/// graph and the (sorted) clique members. Used to plant known maximum
/// cliques for validation and for "community core" structure in the corpus.
pub fn plant_clique(graph: &Csr, size: usize, seed: u64) -> (Csr, Vec<u32>) {
    let (planted, mut members) = plant_cliques(graph, &[size], seed);
    (planted, members.pop().expect("one clique planted"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_all_edges() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert!(g.is_clique(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn complete_multipartite_structure() {
        // K_{3,3,3}: ω = 3 via one vertex per part; no edges within parts.
        let g = complete_multipartite(&[3, 3, 3]);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 27);
        assert!(!g.has_edge(0, 1)); // same part
        assert!(g.has_edge(0, 3)); // different parts
        assert!(g.is_clique(&[0, 3, 6]));
        assert!(!g.is_clique(&[0, 1, 3]));
        // Degenerate cases.
        assert_eq!(complete_multipartite(&[]).num_vertices(), 0);
        assert_eq!(complete_multipartite(&[4]).num_edges(), 0);
        assert_eq!(complete_multipartite(&[1; 5]), complete(5));
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let g = gnp(2000, 0.01, 7);
        let expected = 0.01 * (2000.0 * 1999.0 / 2.0);
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < expected * 0.2,
            "edges {actual} vs {expected}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(gnp(500, 0.02, 3), gnp(500, 0.02, 3));
        assert_ne!(gnp(500, 0.02, 3), gnp(500, 0.02, 4));
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 250, 5);
        assert_eq!(g.num_edges(), 250);
        // Capped at C(n, 2).
        assert_eq!(gnm(5, 100, 5).num_edges(), 10);
    }

    #[test]
    fn ba_degree_sum() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 11);
        // m edges per new vertex plus the m-star seed.
        assert_eq!(g.num_edges(), m * (n - m - 1) + m);
        assert!(g.max_degree() > 3 * m, "hubs should emerge");
    }

    #[test]
    fn holme_kim_has_triangles() {
        let g = holme_kim(400, 4, 0.9, 13);
        // Count triangles at vertex 0's neighborhood; triad formation makes
        // them abundant.
        let mut triangles = 0;
        for v in 0..g.num_vertices() as u32 {
            let nbrs = g.neighbors(v);
            for (i, &x) in nbrs.iter().enumerate() {
                for &y in &nbrs[i + 1..] {
                    if g.has_edge(x, y) {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(triangles > 100, "expected many triangles, got {triangles}");
    }

    #[test]
    fn fanned_communities_have_degree_far_above_core() {
        let g = fanned_communities(10, 8, 15, 3);
        let cores = crate::kcore::core_numbers(&g);
        // Members: degree ≈ 7 + 15 = 22+, core = 7.
        let member_core = cores[0];
        assert!(member_core <= 9, "member core {member_core}");
        assert!(g.degree(0) >= 20, "member degree {}", g.degree(0));
        // Each community is a clique.
        let first: Vec<u32> = (0..8).collect();
        assert!(g.is_clique(&first));
    }

    #[test]
    fn mixed_holme_kim_spreads_cores_below_degrees() {
        let g = holme_kim_mixed(2000, 2, 20, 0.6, 7);
        let cores = crate::kcore::core_numbers(&g);
        let max_core = *cores.iter().max().unwrap() as usize;
        // Cores are capped near m_max while hub degrees run far higher.
        assert!(max_core <= 40, "max core {max_core}");
        assert!(
            g.max_degree() > 3 * max_core,
            "degree {} vs core {max_core}",
            g.max_degree()
        );
        // A real spread of core numbers exists (low-core tail present).
        assert!(cores.iter().filter(|&&c| c <= 4).count() > 100);
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let g = watts_strogatz(200, 6, 0.1, 17);
        assert_eq!(g.num_edges(), 200 * 3);
    }

    #[test]
    fn geometric_radius_controls_density() {
        let sparse = random_geometric(500, 0.02, 19);
        let dense = random_geometric(500, 0.08, 19);
        assert!(dense.num_edges() > sparse.num_edges() * 4);
    }

    #[test]
    fn road_mesh_low_degree() {
        let g = road_mesh(50, 50, 0.95, 0.05, 23);
        assert!(g.avg_degree() < 4.5);
        assert!(g.num_edges() > 3000);
    }

    #[test]
    fn rmat_produces_hubs() {
        let g = rmat(10, 8, 0.57, 0.19, 0.19, 29);
        assert!(g.num_vertices() == 1024);
        assert!(g.max_degree() > 4 * g.avg_degree() as usize);
    }

    #[test]
    fn collaboration_contains_paper_cliques() {
        let g = collaboration(300, 60, 3, 8, 2.0, 31);
        // Union of cliques: every vertex's neighborhood within one paper is
        // fully connected; spot-check global triangle density instead.
        assert!(g.num_edges() > 100);
        let core = crate::kcore::degeneracy(&g);
        assert!(core >= 2, "papers of ≥3 authors give 2-cores");
    }

    #[test]
    fn multiple_planted_cliques_all_present() {
        let base = gnp(300, 0.02, 91);
        let (g, groups) = plant_cliques(&base, &[5, 8, 11], 92);
        assert_eq!(groups.len(), 3);
        for (i, members) in groups.iter().enumerate() {
            assert!(g.is_clique(members), "group {i}");
        }
        assert_eq!(groups[2].len(), 11);
    }

    #[test]
    fn planted_clique_is_present() {
        let base = gnp(200, 0.02, 37);
        let (g, members) = plant_clique(&base, 8, 41);
        assert_eq!(members.len(), 8);
        assert!(g.is_clique(&members));
        assert!(g.num_edges() >= base.num_edges());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(barabasi_albert(200, 2, 1), barabasi_albert(200, 2, 1));
        assert_eq!(
            collaboration(100, 20, 2, 5, 1.5, 2),
            collaboration(100, 20, 2, 5, 1.5, 2)
        );
        assert_eq!(rmat(8, 4, 0.5, 0.2, 0.2, 3), rmat(8, 4, 0.5, 0.2, 0.2, 3));
        assert_eq!(
            random_geometric(300, 0.05, 4),
            random_geometric(300, 0.05, 4)
        );
    }
}
