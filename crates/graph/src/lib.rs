//! # gmc-graph: graph substrate
//!
//! Everything the maximum-clique reproduction needs from a graph library,
//! built from scratch:
//!
//! * [`Csr`] — compressed sparse row storage with *sorted* adjacency lists
//!   and binary-search [`Csr::has_edge`] lookups, the representation the
//!   paper selects for GPU-resident graphs (§III-3).
//! * [`GraphBuilder`] — edge-list ingestion with symmetrisation,
//!   deduplication and self-loop removal, matching the paper's preprocessing
//!   ("we preprocess the datasets to ensure all graphs are undirected and
//!   contain no loops", §V).
//! * [`io`] — MatrixMarket and whitespace edge-list loaders (the Network
//!   Repository's formats), standing in for the Gunrock graph loader.
//! * [`generators`] — synthetic graph families used to build the evaluation
//!   corpus (see `gmc-corpus`).
//! * [`adjacency`] — the three edge-lookup structures the paper compares
//!   (§III-3): CSR binary search, bitset adjacency matrix, and edge hash
//!   tables, behind one [`EdgeOracle`] trait.
//! * [`kcore`] — sequential (Batagelj–Zaveršnik) and data-parallel k-core
//!   decompositions plus degeneracy ordering; the parallel version runs on
//!   the `gmc-dpp` virtual GPU exactly like the Gunrock k-core app the paper
//!   calls in preprocessing.

#![warn(missing_docs)]

pub mod adjacency;
pub mod algo;
pub mod bounds;
mod builder;
mod csr;
pub mod generators;
pub mod io;
pub mod kcore;

pub use adjacency::{
    local_row_intersect, member_pos, member_vertex, pack_member, BitMatrix, CoreBitmap, EdgeOracle,
    HashAdjacency, LocalBitmap,
};
pub use builder::GraphBuilder;
pub use csr::Csr;
