//! Supporting graph algorithms: triangle counting and connected components.
//!
//! Triangle counting matters to this reproduction because the first
//! expansion level of the breadth-first clique search *is* the triangle
//! set: with no pruning, `level_entries[1]` equals the triangle count
//! exactly (each triangle appears once under the orientation). The
//! integration tests use this as a cross-check between two very different
//! code paths.

use crate::Csr;
use gmc_dpp::Executor;

/// Counts triangles with the oriented-wedge method on the virtual GPU: one
/// virtual thread per vertex walks the ordered pairs of its
/// higher-(degree, index) neighbors and tests the closing edge, so each
/// triangle is counted exactly once (at its minimum vertex).
pub fn triangle_count(exec: &Executor, graph: &Csr) -> u64 {
    let n = graph.num_vertices();
    let per_vertex: Vec<usize> = exec.map_indexed_named("triangle_count", n, |v| {
        let v = v as u32;
        let higher: Vec<u32> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| (graph.degree(u), u) > (graph.degree(v), v))
            .collect();
        let mut count = 0usize;
        for (i, &a) in higher.iter().enumerate() {
            for &b in &higher[i + 1..] {
                if graph.has_edge(a, b) {
                    count += 1;
                }
            }
        }
        count
    });
    gmc_dpp::reduce(exec, &per_vertex) as u64
}

/// Global clustering coefficient: `3 × triangles / wedges` (0 when the
/// graph has no wedge).
pub fn global_clustering(exec: &Executor, graph: &Csr) -> f64 {
    let n = graph.num_vertices();
    let wedges: Vec<usize> = exec.map_indexed_named("wedge_count", n, |v| {
        let d = graph.degree(v as u32);
        d * d.saturating_sub(1) / 2
    });
    let wedge_total = gmc_dpp::reduce(exec, &wedges);
    if wedge_total == 0 {
        return 0.0;
    }
    3.0 * triangle_count(exec, graph) as f64 / wedge_total as f64
}

/// Connected components via BFS sweeps. Returns `(component_id_per_vertex,
/// component_count)`; ids are assigned in discovery order from vertex 0.
pub fn connected_components(graph: &Csr) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut component = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if component[start] != u32::MAX {
            continue;
        }
        component[start] = count;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if component[u as usize] == u32::MAX {
                    component[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (component, count as usize)
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(graph: &Csr) -> usize {
    let (component, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &c in &component {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn brute_force_triangles(graph: &Csr) -> u64 {
        let n = graph.num_vertices() as u32;
        let mut count = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                if !graph.has_edge(a, b) {
                    continue;
                }
                for c in (b + 1)..n {
                    if graph.has_edge(a, c) && graph.has_edge(b, c) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn triangles_on_known_graphs() {
        let exec = Executor::new(2);
        assert_eq!(triangle_count(&exec, &generators::complete(5)), 10); // C(5,3)
        assert_eq!(triangle_count(&exec, &Csr::empty(4)), 0);
        let path = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(triangle_count(&exec, &path), 0);
        let triangle = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&exec, &triangle), 1);
    }

    #[test]
    fn triangles_match_brute_force_on_random_graphs() {
        let exec = Executor::new(3);
        for seed in 0..6 {
            let g = generators::gnp(60, 0.2, seed);
            assert_eq!(
                triangle_count(&exec, &g),
                brute_force_triangles(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn clustering_coefficient_extremes() {
        let exec = Executor::new(2);
        // Complete graph: every wedge closes.
        let c = global_clustering(&exec, &generators::complete(6));
        assert!((c - 1.0).abs() < 1e-12);
        // Star: no wedge closes.
        let star = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(global_clustering(&exec, &star), 0.0);
        // No wedges at all.
        assert_eq!(global_clustering(&exec, &Csr::empty(3)), 0.0);
    }

    #[test]
    fn components_on_structured_graphs() {
        // Two triangles and an isolated vertex.
        let g = Csr::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let (component, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(component[0], component[1]);
        assert_eq!(component[0], component[2]);
        assert_eq!(component[3], component[4]);
        assert_ne!(component[0], component[3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn components_edge_cases() {
        assert_eq!(connected_components(&Csr::empty(0)).1, 0);
        assert_eq!(connected_components(&Csr::empty(4)).1, 4);
        assert_eq!(largest_component_size(&Csr::empty(0)), 0);
        let connected = generators::road_mesh(10, 10, 1.0, 0.0, 1);
        assert_eq!(connected_components(&connected).1, 1);
        assert_eq!(largest_component_size(&connected), 100);
    }
}
