//! Dataset loaders for the two formats the Network Repository distributes:
//! MatrixMarket coordinate files (`.mtx`) and whitespace-separated edge
//! lists. This module replaces the Gunrock graph loader the paper uses in
//! preprocessing.

use crate::{Csr, GraphBuilder};
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors produced while parsing a graph file.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the file, with a line number when known.
    Parse {
        /// 1-based line number (0 when the error is file-global).
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Loads a whitespace edge list: one `u v` pair per line; lines starting
/// with `#` or `%` are comments. Vertex ids are used verbatim, so the vertex
/// count is `max_id + 1`.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Csr, GraphIoError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

/// Parses an edge list from any reader. See [`load_edge_list`].
pub fn parse_edge_list(reader: impl BufRead) -> Result<Csr, GraphIoError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: i64 = -1;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| parse_error(line_no + 1, "missing source vertex"))?
            .parse()
            .map_err(|e| parse_error(line_no + 1, format!("bad source vertex: {e}")))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| parse_error(line_no + 1, "missing destination vertex"))?
            .parse()
            .map_err(|e| parse_error(line_no + 1, format!("bad destination vertex: {e}")))?;
        // Extra columns (weights, timestamps) are ignored.
        max_id = max_id.max(u as i64).max(v as i64);
        edges.push((u, v));
    }
    let n = (max_id + 1) as usize;
    let mut builder = GraphBuilder::new(n);
    builder.extend_edges(edges);
    Ok(builder.build())
}

/// Loads a MatrixMarket coordinate file (`.mtx`). Supports `pattern`,
/// `real` and `integer` fields with `general` or `symmetric` symmetry;
/// indices are 1-based per the format. Entry values, if present, are
/// ignored — only the sparsity pattern matters for clique finding.
pub fn load_matrix_market(path: impl AsRef<Path>) -> Result<Csr, GraphIoError> {
    let file = std::fs::File::open(path)?;
    parse_matrix_market(std::io::BufReader::new(file))
}

/// Parses MatrixMarket data from any reader. See [`load_matrix_market`].
pub fn parse_matrix_market(reader: impl BufRead) -> Result<Csr, GraphIoError> {
    let mut lines = reader.lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (header_line, header) = loop {
        match lines.next() {
            Some((line_no, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (line_no + 1, line);
                }
            }
            None => return Err(parse_error(0, "empty file")),
        }
    };
    let header_lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lower.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(parse_error(header_line, "missing %%MatrixMarket header"));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_error(
            header_line,
            "only `matrix coordinate` files are supported",
        ));
    }
    match tokens[3] {
        "pattern" | "real" | "integer" => {}
        other => {
            return Err(parse_error(
                header_line,
                format!("unsupported field `{other}`"),
            ))
        }
    }
    match tokens[4] {
        "general" | "symmetric" => {}
        other => {
            return Err(parse_error(
                header_line,
                format!("unsupported symmetry `{other}`"),
            ))
        }
    }

    // Size line (after comments): rows cols nnz
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((line_no, line)) => {
                let line = line?;
                let trimmed = line.trim().to_string();
                if !trimmed.is_empty() && !trimmed.starts_with('%') {
                    break (line_no + 1, trimmed);
                }
            }
            None => return Err(parse_error(0, "missing size line")),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_error(size_line_no, format!("bad size line: {e}")))?;
    if dims.len() != 3 {
        return Err(parse_error(
            size_line_no,
            "size line must be `rows cols nnz`",
        ));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    let n = rows.max(cols);

    let mut builder = GraphBuilder::new(n);
    let mut seen = 0usize;
    for (line_no, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| parse_error(line_no + 1, "missing row index"))?
            .parse()
            .map_err(|e| parse_error(line_no + 1, format!("bad row index: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| parse_error(line_no + 1, "missing column index"))?
            .parse()
            .map_err(|e| parse_error(line_no + 1, format!("bad column index: {e}")))?;
        if u == 0 || v == 0 || u > n || v > n {
            return Err(parse_error(
                line_no + 1,
                format!("index ({u}, {v}) out of 1..={n}"),
            ));
        }
        builder.add_edge((u - 1) as u32, (v - 1) as u32);
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_error(
            0,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(builder.build())
}

/// Loads a DIMACS clique-benchmark file (`.clq` / `.col`): a `p edge n m`
/// problem line and one `e u v` line per edge (1-based vertex ids). This is
/// the format of the classic DIMACS maximum-clique instances most solvers
/// in the paper's lineage are evaluated on.
pub fn load_dimacs(path: impl AsRef<Path>) -> Result<Csr, GraphIoError> {
    let file = std::fs::File::open(path)?;
    parse_dimacs(std::io::BufReader::new(file))
}

/// Parses DIMACS data from any reader. See [`load_dimacs`].
pub fn parse_dimacs(reader: impl BufRead) -> Result<Csr, GraphIoError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_vertices = 0usize;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            None | Some("c") => continue, // blank or comment
            Some("p") => {
                if builder.is_some() {
                    return Err(parse_error(line_no + 1, "duplicate problem line"));
                }
                let format = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no + 1, "missing format token"))?;
                if format != "edge" && format != "col" {
                    return Err(parse_error(
                        line_no + 1,
                        format!("unsupported DIMACS format `{format}`"),
                    ));
                }
                declared_vertices = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no + 1, "missing vertex count"))?
                    .parse()
                    .map_err(|e| parse_error(line_no + 1, format!("bad vertex count: {e}")))?;
                builder = Some(GraphBuilder::new(declared_vertices));
            }
            Some("e") => {
                let builder = builder
                    .as_mut()
                    .ok_or_else(|| parse_error(line_no + 1, "edge before problem line"))?;
                let u: usize = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no + 1, "missing edge source"))?
                    .parse()
                    .map_err(|e| parse_error(line_no + 1, format!("bad edge source: {e}")))?;
                let v: usize = parts
                    .next()
                    .ok_or_else(|| parse_error(line_no + 1, "missing edge target"))?
                    .parse()
                    .map_err(|e| parse_error(line_no + 1, format!("bad edge target: {e}")))?;
                if u == 0 || v == 0 || u > declared_vertices || v > declared_vertices {
                    return Err(parse_error(
                        line_no + 1,
                        format!("edge ({u}, {v}) out of 1..={declared_vertices}"),
                    ));
                }
                builder.add_edge((u - 1) as u32, (v - 1) as u32);
            }
            Some(other) => {
                return Err(parse_error(
                    line_no + 1,
                    format!("unknown DIMACS line type `{other}`"),
                ));
            }
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| parse_error(0, "missing problem line"))
}

/// Writes a graph as a whitespace edge list (one `u v` line per undirected
/// edge, with a summary comment header).
pub fn write_edge_list(graph: &Csr, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in 0..graph.num_vertices() as u32 {
        for &u in graph.neighbors(v) {
            if v < u {
                writeln!(writer, "{v} {u}")?;
            }
        }
    }
    Ok(())
}

/// Writes a graph as a MatrixMarket `coordinate pattern symmetric` file.
pub fn write_matrix_market(graph: &Csr, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(
        writer,
        "{} {} {}",
        graph.num_vertices(),
        graph.num_vertices(),
        graph.num_edges()
    )?;
    // Symmetric storage: emit the lower triangle (row > column, 1-based).
    for v in 0..graph.num_vertices() as u32 {
        for &u in graph.neighbors(v) {
            if u < v {
                writeln!(writer, "{} {}", v + 1, u + 1)?;
            }
        }
    }
    Ok(())
}

/// Writes a graph in DIMACS clique format.
pub fn write_dimacs(graph: &Csr, mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "c generated by gmc-graph")?;
    writeln!(
        writer,
        "p edge {} {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in 0..graph.num_vertices() as u32 {
        for &u in graph.neighbors(v) {
            if v < u {
                writeln!(writer, "e {} {}", v + 1, u + 1)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn edge_list_with_comments() {
        let data = "# a comment\n% another\n0 1\n1 2 0.5\n\n2 0\n";
        let g = parse_edge_list(Cursor::new(data)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn edge_list_bad_token() {
        let data = "0 x\n";
        let err = parse_edge_list(Cursor::new(data)).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn edge_list_missing_destination() {
        let err = parse_edge_list(Cursor::new("7\n")).unwrap_err();
        assert!(err.to_string().contains("missing destination"));
    }

    #[test]
    fn mtx_symmetric_pattern() {
        let data = "\
%%MatrixMarket matrix coordinate pattern symmetric
% triangle
3 3 3
2 1
3 1
3 2
";
        let g = parse_matrix_market(Cursor::new(data)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn mtx_general_real_with_values() {
        let data = "\
%%MatrixMarket matrix coordinate real general
4 4 3
1 2 1.0
2 3 2.5
2 1 9.0
";
        let g = parse_matrix_market(Cursor::new(data)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        // (1,2) and (2,1) collapse into one undirected edge.
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn mtx_rejects_bad_header() {
        let err = parse_matrix_market(Cursor::new("hello\n1 1 0\n")).unwrap_err();
        assert!(err.to_string().contains("%%MatrixMarket"));
    }

    #[test]
    fn mtx_rejects_array_format() {
        let data = "%%MatrixMarket matrix array real general\n2 2\n";
        let err = parse_matrix_market(Cursor::new(data)).unwrap_err();
        assert!(err.to_string().contains("coordinate"));
    }

    #[test]
    fn mtx_rejects_out_of_range_index() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        let err = parse_matrix_market(Cursor::new(data)).unwrap_err();
        assert!(err.to_string().contains("out of"));
    }

    #[test]
    fn mtx_rejects_wrong_entry_count() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n";
        let err = parse_matrix_market(Cursor::new(data)).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn dimacs_parses_classic_format() {
        let data = "\
c a triangle with a tail
p edge 4 4
e 1 2
e 2 3
e 1 3
e 3 4
";
        let g = parse_dimacs(Cursor::new(data)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(parse_dimacs(Cursor::new("e 1 2\n"))
            .unwrap_err()
            .to_string()
            .contains("edge before problem line"));
        assert!(parse_dimacs(Cursor::new("p matrix 3 1\ne 1 2\n"))
            .unwrap_err()
            .to_string()
            .contains("unsupported DIMACS format"));
        assert!(parse_dimacs(Cursor::new("p edge 2 1\ne 1 5\n"))
            .unwrap_err()
            .to_string()
            .contains("out of 1..=2"));
        assert!(parse_dimacs(Cursor::new("c nothing\n"))
            .unwrap_err()
            .to_string()
            .contains("missing problem line"));
        assert!(parse_dimacs(Cursor::new("p edge 2 0\np edge 2 0\n"))
            .unwrap_err()
            .to_string()
            .contains("duplicate problem line"));
        assert!(parse_dimacs(Cursor::new("x 1 2\n"))
            .unwrap_err()
            .to_string()
            .contains("unknown DIMACS line type"));
    }

    #[test]
    fn writers_round_trip_through_parsers() {
        let g = crate::generators::gnp(40, 0.15, 5);

        let mut edge_buf = Vec::new();
        write_edge_list(&g, &mut edge_buf).unwrap();
        assert_eq!(parse_edge_list(Cursor::new(edge_buf)).unwrap(), g);

        let mut mtx_buf = Vec::new();
        write_matrix_market(&g, &mut mtx_buf).unwrap();
        assert_eq!(parse_matrix_market(Cursor::new(mtx_buf)).unwrap(), g);

        let mut dimacs_buf = Vec::new();
        write_dimacs(&g, &mut dimacs_buf).unwrap();
        assert_eq!(parse_dimacs(Cursor::new(dimacs_buf)).unwrap(), g);
    }

    #[test]
    fn writers_handle_isolated_vertices() {
        // Vertex 3 has no edges; the vertex count must survive MTX and
        // DIMACS round trips (edge lists cannot represent trailing isolated
        // vertices, which is inherent to the format).
        let g = Csr::from_edges(4, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = parse_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(back.num_vertices(), 4);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        assert_eq!(parse_dimacs(Cursor::new(buf)).unwrap().num_vertices(), 4);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("gmc_graph_io_test.edges");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let g = load_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
