/// An undirected graph in compressed sparse row form with sorted adjacency
/// lists.
///
/// ```
/// use gmc_graph::Csr;
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(g.num_edges(), 4);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(0, 3));
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// ```
///
/// Both directions of every undirected edge are stored, adjacency lists are
/// sorted ascending, and there are no self-loops or duplicate edges — the
/// invariants [`GraphBuilder`](crate::GraphBuilder) establishes. Sorted lists
/// make [`Csr::has_edge`] a binary search, the paper's choice for
/// memory-efficient set-intersection tests on large graphs (§III-3).
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Constructs a CSR directly from its raw parts.
    ///
    /// # Panics
    /// Panics if the offsets are malformed or adjacency lists are unsorted,
    /// contain duplicates or self-loops.
    pub fn from_parts(offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            neighbors.len(),
            "final offset must equal neighbor count"
        );
        let n = offsets.len() - 1;
        for v in 0..n {
            assert!(offsets[v] <= offsets[v + 1], "offsets must be monotone");
            let list = &neighbors[offsets[v]..offsets[v + 1]];
            for w in list.windows(2) {
                assert!(w[0] < w[1], "adjacency of {v} not strictly sorted");
            }
            for &u in list {
                assert!((u as usize) < n, "neighbor {u} out of range");
                assert_ne!(u as usize, v, "self-loop at {v}");
            }
        }
        Self { offsets, neighbors }
    }

    /// Builds a graph from an undirected edge list (convenience wrapper over
    /// [`GraphBuilder`](crate::GraphBuilder)). Duplicate edges, reversed
    /// duplicates and self-loops are tolerated and cleaned up.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut builder = crate::GraphBuilder::new(num_vertices);
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// An empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of stored directed arcs (`2 × num_edges`).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// All vertex degrees as `u32`.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v) as u32)
            .collect()
    }

    /// Mean vertex degree (`2|E| / |V|`); zero for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Largest vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists. Binary search over the
    /// shorter endpoint's adjacency list — the hot operation of the paper's
    /// count/output kernels (Algorithm 2, lines 5 and 19).
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let (probe, list) = if self.degree(u) <= self.degree(v) {
            (v, self.neighbors(u))
        } else {
            (u, self.neighbors(v))
        };
        list.binary_search(&probe).is_ok()
    }

    /// Raw offsets array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw concatenated adjacency array.
    pub fn neighbor_array(&self) -> &[u32] {
        &self.neighbors
    }

    /// Applies a vertex relabelling: vertex `v` becomes `perm[v]`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..num_vertices`.
    pub fn relabel(&self, perm: &[u32]) -> Csr {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(
                (p as usize) < n && !std::mem::replace(&mut seen[p as usize], true),
                "not a permutation"
            );
        }
        let mut builder = crate::GraphBuilder::new(n);
        for v in 0..n as u32 {
            for &u in self.neighbors(v) {
                if v < u {
                    builder.add_edge(perm[v as usize], perm[u as usize]);
                }
            }
        }
        builder.build()
    }

    /// Relabels vertices with a seeded random permutation, as the paper does
    /// before every experiment "to avoid any bias from the ordering of the
    /// original datasets" (§V). Returns the relabelled graph and the
    /// permutation used (`new_id = perm[old_id]`).
    pub fn randomize_vertex_ids(&self, seed: u64) -> (Csr, Vec<u32>) {
        let mut rng = gmc_dpp::Rng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..self.num_vertices() as u32).collect();
        rng.shuffle(&mut perm);
        (self.relabel(&perm), perm)
    }

    /// The subgraph induced by `vertices` (which need not be sorted).
    /// Returns the subgraph and the mapping from new ids to original ids.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> (Csr, Vec<u32>) {
        let mut sorted: Vec<u32> = vertices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut new_id = vec![u32::MAX; self.num_vertices()];
        for (i, &v) in sorted.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut builder = crate::GraphBuilder::new(sorted.len());
        for &v in &sorted {
            for &u in self.neighbors(v) {
                if u > v && new_id[u as usize] != u32::MAX {
                    builder.add_edge(new_id[v as usize], new_id[u as usize]);
                }
            }
        }
        (builder.build(), sorted)
    }

    /// The complement graph: `{u, v}` is an edge iff it is not one here.
    /// Quadratic in `n` — intended for small graphs (cliques of the
    /// complement are independent sets of the original).
    pub fn complement(&self) -> Csr {
        let n = self.num_vertices();
        let mut builder = crate::GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !self.has_edge(u, v) {
                    builder.add_edge(u, v);
                }
            }
        }
        builder.build()
    }

    /// Verifies that `vertices` (distinct) form a clique.
    pub fn is_clique(&self, vertices: &[u32]) -> bool {
        for (i, &u) in vertices.iter().enumerate() {
            for &v in &vertices[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

impl std::fmt::Debug for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Csr")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Csr {
        // 0-1-2 triangle, 2-3 tail.
        Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_directed_edges(), 8);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_lookup() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn from_edges_cleans_input() {
        // Duplicates, reversed duplicates and a self-loop.
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = triangle_plus_tail();
        let perm = vec![3u32, 2, 1, 0];
        let h = g.relabel(&perm);
        assert_eq!(h.num_edges(), g.num_edges());
        // Edge {0,1} becomes {3,2}; tail {2,3} becomes {1,0}.
        assert!(h.has_edge(3, 2));
        assert!(h.has_edge(1, 0));
        assert!(!h.has_edge(3, 0));
    }

    #[test]
    fn randomize_is_deterministic_per_seed() {
        let g = triangle_plus_tail();
        let (a, pa) = g.randomize_vertex_ids(9);
        let (b, pb) = g.randomize_vertex_ids(9);
        assert_eq!(pa, pb);
        assert_eq!(a, b);
        let (c, _) = g.randomize_vertex_ids(10);
        // Different seed permutes differently (overwhelmingly likely for
        // this fixed case).
        assert!(c != a || g.num_vertices() <= 1);
    }

    #[test]
    fn induced_subgraph_extracts_triangle() {
        let g = triangle_plus_tail();
        let (sub, mapping) = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert_eq!(sub.num_edges(), 3);
        assert!(sub.is_clique(&[0, 1, 2]));
    }

    #[test]
    fn complement_involution_and_structure() {
        let g = triangle_plus_tail();
        let gc = g.complement();
        // Complement of the complement is the original.
        assert_eq!(gc.complement(), g);
        // Edge counts partition all pairs.
        assert_eq!(g.num_edges() + gc.num_edges(), 4 * 3 / 2);
        // Complement of complete is empty and vice versa.
        let k4 = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(k4.complement().num_edges(), 0);
        assert_eq!(Csr::empty(4).complement(), k4);
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let g = triangle_plus_tail();
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[2, 3]));
        assert!(!g.is_clique(&[0, 1, 2, 3]));
        assert!(g.is_clique(&[1]));
        assert!(g.is_clique(&[]));
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn from_parts_rejects_unsorted() {
        Csr::from_parts(vec![0, 2], vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_parts_rejects_self_loop() {
        Csr::from_parts(vec![0, 1], vec![0]);
    }
}
