use crate::Csr;

/// Accumulates an edge list and produces a clean undirected [`Csr`].
///
/// `build` symmetrises (both directions stored), removes self-loops,
/// deduplicates parallel edges, and sorts every adjacency list — the
/// preprocessing the paper applies to all datasets before forming the CSR.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are
    /// accepted here and dropped by [`GraphBuilder::build`].
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push((u, v));
    }

    /// Adds every edge from the iterator.
    pub fn extend_edges<I: IntoIterator<Item = (u32, u32)>>(&mut self, edges: I) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Number of raw (uncleaned) edges accumulated so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Produces the cleaned CSR.
    pub fn build(self) -> Csr {
        let n = self.num_vertices;
        // Symmetrise and drop loops.
        let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(self.edges.len() * 2);
        for (u, v) in self.edges {
            if u != v {
                arcs.push((u, v));
                arcs.push((v, u));
            }
        }
        // Counting sort by source gives CSR layout directly.
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut neighbors = vec![0u32; arcs.len()];
        let mut cursor = counts.clone();
        for &(u, v) in &arcs {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        // Sort and dedup each adjacency list, then recompact.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut compacted = Vec::with_capacity(neighbors.len());
        offsets.push(0);
        for v in 0..n {
            let list = &mut neighbors[counts[v]..counts[v + 1]];
            list.sort_unstable();
            let mut prev = None;
            for &u in list.iter() {
                if prev != Some(u) {
                    compacted.push(u);
                    prev = Some(u);
                }
            }
            offsets.push(compacted.len());
        }
        Csr::from_parts(offsets, compacted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_clean_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // reversed duplicate
        b.add_edge(0, 1); // duplicate
        b.add_edge(2, 2); // self-loop
        b.add_edge(3, 2);
        assert_eq!(b.raw_edge_count(), 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[3]);
        assert!(g.neighbors(2).binary_search(&2).is_err());
    }

    #[test]
    fn extend_edges_works() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_builder() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(0, 5);
    }

    #[test]
    fn large_star_graph() {
        let mut b = GraphBuilder::new(10_001);
        for v in 1..=10_000u32 {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.degree(0), 10_000);
        assert_eq!(g.degree(5000), 1);
        assert!(g.has_edge(0, 9999));
    }
}
