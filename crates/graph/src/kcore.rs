//! k-core decomposition and degeneracy ordering.
//!
//! The paper optionally computes vertex core numbers in preprocessing (via
//! the Gunrock k-core app) and uses them as tighter per-vertex upper bounds:
//! a vertex with core number `c` belongs to no clique larger than `c + 1`
//! (§II-B2). Two implementations are provided:
//!
//! * [`core_numbers`] — the classic sequential Batagelj–Zaveršnik bucket
//!   peel, `O(|V| + |E|)`.
//! * [`core_numbers_parallel`] — an iterative data-parallel peel on the
//!   `gmc-dpp` executor, mirroring the GPU implementation the paper calls;
//!   each round removes every vertex whose remaining degree is at most the
//!   current `k` with one launch per kernel.
//!
//! Both return identical values (core numbers are unique), which the tests
//! verify.

use crate::Csr;
use gmc_dpp::Executor;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential Batagelj–Zaveršnik core decomposition.
///
/// ```
/// use gmc_graph::{kcore, Csr};
/// // Triangle plus a pendant vertex: the triangle is a 2-core.
/// let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(kcore::core_numbers(&g), vec![2, 2, 2, 1]);
/// ```
pub fn core_numbers(graph: &Csr) -> Vec<u32> {
    bz_peel(graph).0
}

/// Bucket peel returning `(core_numbers, removal_order)`. The removal order
/// is a valid degeneracy order: every vertex has at most `degeneracy`
/// neighbors later in the order.
fn bz_peel(graph: &Csr) -> (Vec<u32>, Vec<u32>) {
    let n = graph.num_vertices();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut degree: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin[d + 1] += 1;
    }
    for d in 0..=max_degree {
        bin[d + 1] += bin[d];
    }
    let mut pos = vec![0usize; n]; // position of vertex in `vert`
    let mut vert = vec![0u32; n]; // vertices in degree order
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            pos[v] = cursor[degree[v]];
            vert[pos[v]] = v as u32;
            cursor[degree[v]] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    for i in 0..n {
        let v = vert[i] as usize;
        order.push(v as u32);
        core[v] = degree[v] as u32;
        for &u in graph.neighbors(v as u32) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first vertex of its
                // current bucket, shrink the bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    pos[u] = pw;
                    pos[w] = pu;
                    vert[pu] = w as u32;
                    vert[pw] = u as u32;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    (core, order)
}

/// Data-parallel iterative peel on the virtual GPU.
///
/// Round structure mirrors the GPU app: a select kernel finds the frontier
/// (alive vertices with remaining degree ≤ k), a scatter kernel retires the
/// frontier and atomically decrements neighbor degrees, repeating until the
/// frontier is empty, then k advances.
pub fn core_numbers_parallel(exec: &Executor, graph: &Csr) -> Vec<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let degree: Vec<AtomicU32> = (0..n as u32)
        .map(|v| AtomicU32::new(graph.degree(v) as u32))
        .collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    const ALIVE: u32 = u32::MAX;
    let state: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(ALIVE)).collect();

    let mut alive: Vec<u32> = (0..n as u32).collect();
    let mut k = 0u32;
    while !alive.is_empty() {
        loop {
            // Frontier: alive vertices whose remaining degree is ≤ k.
            let frontier = gmc_dpp::select_if(exec, &alive, |_, v| {
                degree[v as usize].load(Ordering::Relaxed) <= k
            });
            if frontier.is_empty() {
                break;
            }
            exec.for_each_indexed_named("kcore_peel", frontier.len(), |i| {
                let v = frontier[i] as usize;
                core[v].store(k, Ordering::Relaxed);
                state[v].store(k, Ordering::Relaxed);
            });
            exec.for_each_indexed_named("kcore_decrement", frontier.len(), |i| {
                let v = frontier[i];
                for &u in graph.neighbors(v) {
                    if state[u as usize].load(Ordering::Relaxed) == ALIVE {
                        degree[u as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
            alive = gmc_dpp::select_if(exec, &alive, |_, v| {
                state[v as usize].load(Ordering::Relaxed) == ALIVE
            });
        }
        k += 1;
    }
    core.into_iter().map(AtomicU32::into_inner).collect()
}

/// Degeneracy order: the order in which the sequential peel removes
/// vertices (smallest-remaining-degree first). Useful as a root ordering for
/// the DFS baseline. Returns `(order, degeneracy)` where `degeneracy` is the
/// largest core number.
pub fn degeneracy_order(graph: &Csr) -> (Vec<u32>, u32) {
    let (core, order) = bz_peel(graph);
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    (order, degeneracy)
}

/// The largest `k` such that the graph has a non-empty k-core.
pub fn degeneracy(graph: &Csr) -> u32 {
    core_numbers(graph).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
        Csr::from_edges(n, &edges)
    }

    fn complete_graph(n: usize) -> Csr {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn path_has_core_one() {
        let g = path_graph(10);
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1));
    }

    #[test]
    fn complete_graph_core() {
        let g = complete_graph(6);
        assert!(core_numbers(&g).iter().all(|&c| c == 5));
        assert_eq!(degeneracy(&g), 5);
    }

    #[test]
    fn clique_with_pendant() {
        // K4 on {0..3} plus pendant 4 attached to 0.
        let mut edges = vec![(0u32, 4u32)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let g = Csr::from_edges(5, &edges);
        let core = core_numbers(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = Csr::from_edges(4, &[(0, 1)]);
        let core = core_numbers(&g);
        assert_eq!(core, vec![1, 1, 0, 0]);
    }

    #[test]
    fn parallel_matches_sequential_on_structured_graphs() {
        let exec = Executor::new(4);
        for g in [
            path_graph(50),
            complete_graph(8),
            Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]),
            Csr::empty(5),
        ] {
            assert_eq!(core_numbers_parallel(&exec, &g), core_numbers(&g));
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_graph() {
        let mut rng = gmc_dpp::Rng::seed_from_u64(42);
        let n = 300;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.03) {
                    edges.push((u, v));
                }
            }
        }
        let g = Csr::from_edges(n, &edges);
        let exec = Executor::new(4);
        assert_eq!(core_numbers_parallel(&exec, &g), core_numbers(&g));
    }

    #[test]
    fn degeneracy_order_is_valid_peel() {
        // In a degeneracy order, each vertex has at most `degeneracy`
        // neighbors appearing later in the order.
        let g = complete_graph(5);
        let (order, d) = degeneracy_order(&g);
        assert_eq!(d, 4);
        let position: Vec<usize> = {
            let mut p = vec![0; g.num_vertices()];
            for (i, &v) in order.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for &v in &order {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| position[u as usize] > position[v as usize])
                .count();
            assert!(later as u32 <= d);
        }
    }

    #[test]
    fn max_clique_bounded_by_degeneracy_plus_one() {
        // ω ≤ degeneracy + 1 is the bound the paper uses for pruning.
        let g = complete_graph(7);
        assert!(7 <= degeneracy(&g) + 1);
    }
}
