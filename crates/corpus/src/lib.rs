//! # gmc-corpus: the synthetic evaluation corpus
//!
//! The paper evaluates on the 58 largest real-world graphs (|E| > 10k) from
//! Rossi et al.'s study, downloaded from the Network Repository: social,
//! Facebook, web, road, biological, technological and collaboration
//! networks of 10k–106M edges. Those datasets cannot be redistributed, so
//! this crate synthesises a 58-dataset corpus with one generator family per
//! category, scaled to this reproduction's CPU-simulated device:
//!
//! | Category | Generator | Property matched |
//! |---|---|---|
//! | Facebook | dense G(n,p) + planted community clique | average degree at or above ω — the hard-to-prune regime (§V-B3c) |
//! | Social | Holme–Kim powerlaw-cluster + planted clique | heavy-tailed degrees, high clustering |
//! | Web | R-MAT + planted clique | hub-dominated skew, link-farm cliques |
//! | Road | perturbed mesh | very low average degree, tiny ω — the best-case regime (Fig. 2) |
//! | Biological | random geometric + planted complexes | moderate local density |
//! | Collaboration | union-of-cliques | large ω well above average degree — the easy-to-prune regime |
//! | Technological | Watts–Strogatz / geometric | near-constant low degree |
//!
//! Every dataset is deterministic and, as in the paper's methodology (§V),
//! vertex indices are randomised before use. Three tiers scale the corpus:
//! [`Tier::Full`] for the experiment harness, [`Tier::Small`] for quicker
//! sweeps, [`Tier::Smoke`] for integration tests.

#![warn(missing_docs)]

use gmc_graph::{generators, Csr};

/// Network category, following the paper's corpus breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Dense friendship networks (the paper's `socfb-*` sets).
    Facebook,
    /// General social networks.
    Social,
    /// Web crawls.
    Web,
    /// Road networks.
    Road,
    /// Protein/gene interaction networks.
    Biological,
    /// Co-authorship networks.
    Collaboration,
    /// Infrastructure/router networks.
    Technological,
}

impl Category {
    /// Short prefix used in dataset names (mirrors Network Repository
    /// naming).
    pub fn prefix(self) -> &'static str {
        match self {
            Category::Facebook => "socfb",
            Category::Social => "soc",
            Category::Web => "web",
            Category::Road => "road",
            Category::Biological => "bio",
            Category::Collaboration => "ca",
            Category::Technological => "tech",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Corpus scale. Recipes keep their shape across tiers; only sizes change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Tiny instances (≤ ~3k edges) for exhaustive cross-checking in tests.
    Smoke,
    /// Reduced sizes for quick experiment sweeps.
    Small,
    /// The full 58-dataset corpus for the benchmark harness.
    Full,
}

impl Tier {
    fn scale(self) -> f64 {
        match self {
            Tier::Smoke => 0.02,
            Tier::Small => 0.2,
            Tier::Full => 1.0,
        }
    }
}

/// A deterministic generator recipe for one dataset.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings match the generator parameters
pub enum Recipe {
    /// `G(n, p)` (Facebook-like when dense).
    Gnp { n: usize, p: f64, seed: u64 },
    /// Holme–Kim powerlaw cluster.
    HolmeKim {
        n: usize,
        m: usize,
        p_triad: f64,
        seed: u64,
    },
    /// R-MAT.
    Rmat {
        scale: u32,
        edge_factor: usize,
        seed: u64,
    },
    /// Perturbed road mesh.
    RoadMesh { rows: usize, cols: usize, seed: u64 },
    /// Random geometric.
    Geometric { n: usize, radius: f64, seed: u64 },
    /// Union-of-cliques collaboration model.
    Collab {
        authors: usize,
        papers: usize,
        max_authors: usize,
        seed: u64,
    },
    /// Watts–Strogatz small world.
    SmallWorld { n: usize, k: usize, seed: u64 },
    /// Holme–Kim with per-vertex attachment counts in `m_min..=m_max`.
    HolmeKimMixed {
        n: usize,
        m_min: usize,
        m_max: usize,
        p_triad: f64,
        seed: u64,
    },
    /// Disjoint member cliques whose members carry private acquaintance
    /// fans (degree far above core number).
    FannedCommunities {
        communities: usize,
        community: usize,
        fan: usize,
        seed: u64,
    },
    /// Any base recipe with an extra planted clique.
    Planted {
        base: Box<Recipe>,
        size: usize,
        seed: u64,
    },
    /// Any base recipe with several planted community cliques with sizes
    /// cycling between `min_size` and `max_size`.
    Communities {
        /// Base recipe to overlay communities on.
        base: Box<Recipe>,
        /// Number of communities.
        count: usize,
        /// Smallest community size.
        min_size: usize,
        /// Largest community size.
        max_size: usize,
        /// Seed for member selection.
        seed: u64,
    },
}

impl Recipe {
    /// Builds the graph for this recipe (before index randomisation).
    pub fn build(&self) -> Csr {
        match self {
            Recipe::Gnp { n, p, seed } => generators::gnp(*n, *p, *seed),
            Recipe::HolmeKim {
                n,
                m,
                p_triad,
                seed,
            } => generators::holme_kim(*n, *m, *p_triad, *seed),
            Recipe::Rmat {
                scale,
                edge_factor,
                seed,
            } => generators::rmat(*scale, *edge_factor, 0.57, 0.19, 0.19, *seed),
            Recipe::RoadMesh { rows, cols, seed } => {
                generators::road_mesh(*rows, *cols, 0.93, 0.04, *seed)
            }
            Recipe::Geometric { n, radius, seed } => {
                generators::random_geometric(*n, *radius, *seed)
            }
            Recipe::Collab {
                authors,
                papers,
                max_authors,
                seed,
            } => generators::collaboration(
                *authors,
                *papers,
                3.min(*max_authors),
                *max_authors,
                1.9,
                *seed,
            ),
            Recipe::SmallWorld { n, k, seed } => generators::watts_strogatz(*n, *k, 0.08, *seed),
            Recipe::HolmeKimMixed {
                n,
                m_min,
                m_max,
                p_triad,
                seed,
            } => generators::holme_kim_mixed(*n, *m_min, *m_max, *p_triad, *seed),
            Recipe::FannedCommunities {
                communities,
                community,
                fan,
                seed,
            } => generators::fanned_communities(*communities, *community, *fan, *seed),
            Recipe::Planted { base, size, seed } => {
                let g = base.build();
                generators::plant_clique(&g, *size, *seed).0
            }
            Recipe::Communities {
                base,
                count,
                min_size,
                max_size,
                seed,
            } => {
                let g = base.build();
                let span = max_size - min_size + 1;
                // Deterministic size mix; the first community always gets
                // the maximum size so ω is stable per spec.
                let sizes: Vec<usize> = (0..*count)
                    .map(|i| {
                        if i == 0 {
                            *max_size
                        } else {
                            min_size + (i * 7) % span
                        }
                    })
                    .collect();
                generators::plant_cliques(&g, &sizes, *seed).0
            }
        }
    }
}

/// One named dataset in the corpus.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Stable name, e.g. `socfb-campus-03`.
    pub name: String,
    /// Network category.
    pub category: Category,
    /// Generator recipe.
    pub recipe: Recipe,
    /// Seed for the index-randomisation permutation (paper §V).
    pub shuffle_seed: u64,
}

impl DatasetSpec {
    /// Builds the graph with randomised vertex indices, as the paper's
    /// experimental methodology prescribes.
    pub fn load(&self) -> Csr {
        let g = self.recipe.build();
        g.randomize_vertex_ids(self.shuffle_seed).0
    }

    /// Builds the graph without the index shuffle (for debugging planted
    /// structure).
    pub fn load_unshuffled(&self) -> Csr {
        self.recipe.build()
    }
}

/// Summary row for reports.
#[derive(Debug, Clone)]
pub struct DatasetInfo {
    /// Dataset name.
    pub name: String,
    /// Network category.
    pub category: Category,
    /// Vertex count.
    pub vertices: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree.
    pub avg_degree: f64,
}

impl DatasetInfo {
    /// Computes the summary for a loaded graph.
    pub fn of(spec: &DatasetSpec, graph: &Csr) -> Self {
        Self {
            name: spec.name.clone(),
            category: spec.category,
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            avg_degree: graph.avg_degree(),
        }
    }
}

fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale) as usize).max(min)
}

/// Builds the corpus at the given tier: 58 datasets mirroring the paper's
/// category mix (14 Facebook, 10 social, 8 web, 6 road, 8 biological,
/// 8 collaboration, 4 technological).
pub fn corpus(tier: Tier) -> Vec<DatasetSpec> {
    let s = tier.scale();
    let mut specs: Vec<DatasetSpec> = Vec::with_capacity(58);
    let mut seed = 1000u64;
    let mut next_seed = || {
        seed += 17;
        seed
    };

    // --- Facebook: dense G(n,p) with a planted community clique barely
    // above the background clique number. Density follows p = c/√n, which
    // keeps the expected common-neighborhood size (n·p² = c²) constant: the
    // regime where average degree far exceeds ω and intermediate candidate
    // lists blow up — the paper's hard-to-prune Facebook graphs (§V-B3c).
    for i in 0..14 {
        let n = scaled(1500 + 350 * i, s, 60);
        // Dense, near-regular G(n,p): degree ≈ core number, so neither
        // bound prunes — the paper's hardest cases, where even the multi-run
        // heuristics OOM. Density follows p = c/√n, keeping the expected
        // common-neighborhood size (n·p² = c²) constant. (We also tried
        // engineering a degree≫core Facebook variant so core pruning would
        // visibly beat degree pruning, as in the paper's Table I rows 4–5;
        // the sublist-length cut removes any community smaller than ω̄
        // before the vertex bounds even apply, so on synthetic data the two
        // multi-run heuristics stay tied — see EXPERIMENTS.md.)
        let c = 3.0 + 0.22 * (i % 8) as f64;
        let p = (c / (n as f64).sqrt()).min(0.45);
        // ω of G(n,p) concentrates near 2·ln n / ln(1/p); plant just above.
        let omega_bg = (2.0 * (n as f64).ln() / (1.0 / p).ln()).ceil() as usize;
        let planted = (omega_bg + 2 + i % 3).min(n / 4).max(3);
        let recipe = Recipe::Planted {
            base: Box::new(Recipe::Gnp {
                n,
                p,
                seed: next_seed(),
            }),
            size: planted,
            seed: next_seed(),
        };
        specs.push(DatasetSpec {
            name: format!("socfb-campus-{:02}", i + 1),
            category: Category::Facebook,
            recipe,
            shuffle_seed: next_seed(),
        });
    }

    // --- Social: Holme–Kim with moderate degree plus community cores of
    // mixed sizes. Unpruned, every community's subtree must be stored; a
    // good bound collapses all but the largest (Table I's mechanism).
    for i in 0..10 {
        let n = scaled(4000 + 2500 * i, s, 120);
        let m = 3 + i % 5;
        let base = Recipe::HolmeKim {
            n,
            m,
            p_triad: 0.7,
            seed: next_seed(),
        };
        specs.push(DatasetSpec {
            name: format!("soc-sphere-{:02}", i + 1),
            category: Category::Social,
            recipe: Recipe::Communities {
                base: Box::new(base),
                count: 6 + 3 * i,
                min_size: 7,
                max_size: 12 + i,
                seed: next_seed(),
            },
            shuffle_seed: next_seed(),
        });
    }

    // --- Web: R-MAT with a planted link-farm clique.
    for i in 0..8 {
        let scale_bits = match tier {
            Tier::Smoke => 7 + (i as u32) % 2,
            Tier::Small => 10 + (i as u32) % 3,
            Tier::Full => 12 + (i as u32) % 4,
        };
        let base = Recipe::Rmat {
            scale: scale_bits,
            edge_factor: 4 + i % 4,
            seed: next_seed(),
        };
        specs.push(DatasetSpec {
            name: format!("web-crawl-{:02}", i + 1),
            category: Category::Web,
            recipe: Recipe::Communities {
                base: Box::new(base),
                count: 3 + i,
                min_size: 8,
                max_size: 10 + i,
                seed: next_seed(),
            },
            shuffle_seed: next_seed(),
        });
    }

    // --- Road: large meshes, very low degree.
    for i in 0..6 {
        let side = scaled(220 + 90 * i, s.sqrt(), 12);
        specs.push(DatasetSpec {
            name: format!("road-grid-{:02}", i + 1),
            category: Category::Road,
            recipe: Recipe::RoadMesh {
                rows: side,
                cols: side + 10 * i,
                seed: next_seed(),
            },
            shuffle_seed: next_seed(),
        });
    }

    // --- Biological: random geometric with planted protein complexes.
    for i in 0..8 {
        let n = scaled(2500 + 1200 * i, s, 100);
        let radius = (28.0 / n as f64).sqrt();
        let base = Recipe::Geometric {
            n,
            radius,
            seed: next_seed(),
        };
        specs.push(DatasetSpec {
            name: format!("bio-ppi-{:02}", i + 1),
            category: Category::Biological,
            recipe: Recipe::Communities {
                base: Box::new(base),
                count: 5 + 2 * i,
                min_size: 6,
                max_size: 10 + i,
                seed: next_seed(),
            },
            shuffle_seed: next_seed(),
        });
    }

    // --- Collaboration: unions of cliques; ω well above average degree.
    // Without a lower bound, every paper of size s spawns a 2^s subtree, so
    // the large-paper instances are unsolvable heuristic-free but collapse
    // to almost nothing once the bound equals the biggest paper — the
    // easy-to-prune extreme of Table II.
    for i in 0..8 {
        let authors = scaled(3000 + 2000 * i, s, 120);
        specs.push(DatasetSpec {
            name: format!("ca-papers-{:02}", i + 1),
            category: Category::Collaboration,
            recipe: Recipe::Collab {
                authors,
                papers: authors / 2,
                max_authors: 8 + 2 * (i % 8),
                seed: next_seed(),
            },
            shuffle_seed: next_seed(),
        });
    }

    // --- Technological: small-world rings and geometric meshes.
    for i in 0..4 {
        let n = scaled(6000 + 4000 * i, s, 150);
        specs.push(DatasetSpec {
            name: format!("tech-router-{:02}", i + 1),
            category: Category::Technological,
            recipe: Recipe::SmallWorld {
                n,
                k: 4 + 2 * (i % 3),
                seed: next_seed(),
            },
            shuffle_seed: next_seed(),
        });
    }

    debug_assert_eq!(specs.len(), 58);
    specs
}

/// Looks up a dataset by name at the given tier.
pub fn by_name(tier: Tier, name: &str) -> Option<DatasetSpec> {
    corpus(tier).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_58_datasets_at_every_tier() {
        for tier in [Tier::Smoke, Tier::Small, Tier::Full] {
            let specs = corpus(tier);
            assert_eq!(specs.len(), 58);
            // Unique names.
            let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 58);
        }
    }

    #[test]
    fn category_mix_matches_design() {
        let specs = corpus(Tier::Smoke);
        let count = |c: Category| specs.iter().filter(|s| s.category == c).count();
        assert_eq!(count(Category::Facebook), 14);
        assert_eq!(count(Category::Social), 10);
        assert_eq!(count(Category::Web), 8);
        assert_eq!(count(Category::Road), 6);
        assert_eq!(count(Category::Biological), 8);
        assert_eq!(count(Category::Collaboration), 8);
        assert_eq!(count(Category::Technological), 4);
    }

    #[test]
    fn smoke_tier_loads_quickly_and_nontrivially() {
        for spec in corpus(Tier::Smoke) {
            let g = spec.load();
            assert!(g.num_vertices() > 0, "{}", spec.name);
            assert!(g.num_edges() > 0, "{} has no edges", spec.name);
            assert!(g.num_edges() < 100_000, "{} too large for smoke", spec.name);
        }
    }

    #[test]
    fn loading_is_deterministic() {
        let spec = &corpus(Tier::Smoke)[0];
        assert_eq!(spec.load(), spec.load());
    }

    #[test]
    fn shuffle_changes_labels_not_structure() {
        let spec = &corpus(Tier::Smoke)[3];
        let shuffled = spec.load();
        let raw = spec.load_unshuffled();
        assert_eq!(shuffled.num_vertices(), raw.num_vertices());
        assert_eq!(shuffled.num_edges(), raw.num_edges());
    }

    #[test]
    fn road_graphs_have_low_degree() {
        for spec in corpus(Tier::Smoke) {
            if spec.category == Category::Road {
                let g = spec.load();
                assert!(g.avg_degree() < 4.5, "{}: {}", spec.name, g.avg_degree());
            }
        }
    }

    #[test]
    fn facebook_graphs_are_densest() {
        let specs = corpus(Tier::Smoke);
        let avg = |cat: Category| {
            let (sum, count) = specs
                .iter()
                .filter(|s| s.category == cat)
                .map(|s| s.load().avg_degree())
                .fold((0.0, 0usize), |(a, c), d| (a + d, c + 1));
            sum / count as f64
        };
        assert!(avg(Category::Facebook) > avg(Category::Road));
        assert!(avg(Category::Facebook) > avg(Category::Technological));
    }

    #[test]
    fn by_name_finds_datasets() {
        assert!(by_name(Tier::Smoke, "road-grid-01").is_some());
        assert!(by_name(Tier::Smoke, "no-such-dataset").is_none());
    }

    #[test]
    fn info_summarises() {
        let spec = by_name(Tier::Smoke, "ca-papers-01").unwrap();
        let g = spec.load();
        let info = DatasetInfo::of(&spec, &g);
        assert_eq!(info.edges, g.num_edges());
        assert_eq!(info.category, Category::Collaboration);
    }
}
