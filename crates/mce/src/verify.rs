//! Independent result verification.
//!
//! A [`SolveResult`] makes strong claims — every listed set is a clique,
//! all have the claimed size, none repeats, none is extendable. This module
//! checks those claims directly against the graph, without trusting any
//! solver state. (Completeness of an enumeration cannot be certified
//! cheaply; the test suite establishes it against the exact oracle
//! instead.)

use crate::SolveResult;
use gmc_graph::Csr;

/// A violated claim found by [`verify_result`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A listed set is not a clique.
    NotAClique {
        /// Index into `result.cliques`.
        index: usize,
        /// The non-adjacent pair.
        pair: (u32, u32),
    },
    /// A listed set's size differs from `clique_number`.
    WrongSize {
        /// Index into `result.cliques`.
        index: usize,
        /// The set's actual length.
        actual: usize,
        /// The claimed clique number.
        claimed: u32,
    },
    /// A vertex id is out of range or repeated within a clique.
    MalformedClique {
        /// Index into `result.cliques`.
        index: usize,
    },
    /// The same clique appears twice.
    Duplicate {
        /// Indices of the two equal entries.
        indices: (usize, usize),
    },
    /// A listed clique can be extended by another vertex, so it is not even
    /// maximal — a maximum-clique claim cannot hold.
    Extendable {
        /// Index into `result.cliques`.
        index: usize,
        /// A vertex adjacent to every member.
        by: u32,
    },
    /// `clique_number > 0` but the result lists no cliques.
    MissingWitness,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NotAClique { index, pair } => {
                write!(
                    f,
                    "clique #{index}: vertices {} and {} are not adjacent",
                    pair.0, pair.1
                )
            }
            VerifyError::WrongSize {
                index,
                actual,
                claimed,
            } => {
                write!(
                    f,
                    "clique #{index}: has {actual} vertices, claimed ω = {claimed}"
                )
            }
            VerifyError::MalformedClique { index } => {
                write!(f, "clique #{index}: out-of-range or repeated vertex")
            }
            VerifyError::Duplicate { indices } => {
                write!(f, "cliques #{} and #{} are identical", indices.0, indices.1)
            }
            VerifyError::Extendable { index, by } => {
                write!(
                    f,
                    "clique #{index}: extendable by vertex {by} — not maximal"
                )
            }
            VerifyError::MissingWitness => write!(f, "positive clique number but no witness"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks every per-clique claim of `result` against `graph`. `Ok(())`
/// means each listed set is a distinct, non-extendable clique of exactly
/// `clique_number` vertices.
pub fn verify_result(graph: &Csr, result: &SolveResult) -> Result<(), VerifyError> {
    let n = graph.num_vertices() as u32;
    if result.clique_number > 0 && result.cliques.is_empty() {
        return Err(VerifyError::MissingWitness);
    }
    for (index, clique) in result.cliques.iter().enumerate() {
        // Well-formed: in range, strictly ascending (also implies distinct).
        if clique.iter().any(|&v| v >= n) || clique.windows(2).any(|w| w[0] >= w[1]) {
            return Err(VerifyError::MalformedClique { index });
        }
        if clique.len() != result.clique_number as usize {
            return Err(VerifyError::WrongSize {
                index,
                actual: clique.len(),
                claimed: result.clique_number,
            });
        }
        // Pairwise adjacency.
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                if !graph.has_edge(u, v) {
                    return Err(VerifyError::NotAClique {
                        index,
                        pair: (u, v),
                    });
                }
            }
        }
        // Maximality: no vertex extends the clique. Scan the neighborhood
        // of the clique's minimum-degree member only — an extending vertex
        // must be adjacent to it.
        let probe = *clique
            .iter()
            .min_by_key(|&&v| graph.degree(v))
            .expect("cliques are non-empty");
        for &candidate in graph.neighbors(probe) {
            if clique.contains(&candidate) {
                continue;
            }
            if clique
                .iter()
                .all(|&member| graph.has_edge(candidate, member))
            {
                return Err(VerifyError::Extendable {
                    index,
                    by: candidate,
                });
            }
        }
    }
    // Distinctness: the list is canonically sorted, so duplicates would be
    // adjacent; still check all pairs defensively for unsorted inputs.
    for i in 1..result.cliques.len() {
        if result.cliques[i - 1] == result.cliques[i] {
            return Err(VerifyError::Duplicate {
                indices: (i - 1, i),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCliqueSolver, SolveStats};
    use gmc_dpp::Device;
    use gmc_graph::generators;

    fn fake_result(clique_number: u32, cliques: Vec<Vec<u32>>) -> SolveResult {
        SolveResult {
            clique_number,
            cliques,
            complete_enumeration: true,
            stats: SolveStats::default(),
        }
    }

    #[test]
    fn real_results_verify() {
        for seed in 0..5 {
            let g = generators::gnp(70, 0.2, seed);
            let result = MaxCliqueSolver::new(Device::unlimited()).solve(&g).unwrap();
            verify_result(&g, &result).unwrap();
        }
    }

    #[test]
    fn detects_non_clique() {
        let g = generators::complete(4);
        // {0,1,2,3} is fine but a fabricated 5th vertex pair is not.
        let g2 = gmc_graph::Csr::from_edges(5, &[(0, 1), (1, 2), (0, 2)]);
        let bad = fake_result(3, vec![vec![0, 1, 3]]);
        assert!(matches!(
            verify_result(&g2, &bad),
            Err(VerifyError::NotAClique { .. })
        ));
        let good = fake_result(4, vec![vec![0, 1, 2, 3]]);
        verify_result(&g, &good).unwrap();
    }

    #[test]
    fn detects_wrong_size_and_missing_witness() {
        let g = generators::complete(4);
        let wrong = fake_result(4, vec![vec![0, 1]]);
        assert!(matches!(
            verify_result(&g, &wrong),
            Err(VerifyError::WrongSize { .. })
        ));
        let missing = fake_result(4, vec![]);
        assert_eq!(
            verify_result(&g, &missing),
            Err(VerifyError::MissingWitness)
        );
    }

    #[test]
    fn detects_malformed_and_duplicates() {
        let g = generators::complete(4);
        let out_of_range = fake_result(2, vec![vec![0, 9]]);
        assert!(matches!(
            verify_result(&g, &out_of_range),
            Err(VerifyError::MalformedClique { .. })
        ));
        let unsorted = fake_result(2, vec![vec![1, 0]]);
        assert!(matches!(
            verify_result(&g, &unsorted),
            Err(VerifyError::MalformedClique { .. })
        ));
        // A maximal 2-clique repeated (on a single-edge graph, so the
        // maximality check passes and the duplicate check is reached).
        let edge = gmc_graph::Csr::from_edges(2, &[(0, 1)]);
        let duplicated = fake_result(2, vec![vec![0, 1], vec![0, 1]]);
        assert!(matches!(
            verify_result(&edge, &duplicated),
            Err(VerifyError::Duplicate { .. })
        ));
    }

    #[test]
    fn detects_extendable_cliques() {
        let g = generators::complete(4);
        // {0,1,2} is a clique but vertex 3 extends it.
        let extendable = fake_result(3, vec![vec![0, 1, 2]]);
        assert!(matches!(
            verify_result(&g, &extendable),
            Err(VerifyError::Extendable { by: 3, .. })
        ));
    }

    #[test]
    fn errors_render_usefully() {
        let err = VerifyError::Extendable { index: 2, by: 7 };
        assert!(err.to_string().contains("extendable by vertex 7"));
        let err = VerifyError::NotAClique {
            index: 0,
            pair: (1, 4),
        };
        assert!(err.to_string().contains("1 and 4"));
    }
}
