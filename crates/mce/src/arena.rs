//! Scratch-buffer arena for the expansion loop.
//!
//! Every BFS level of the seed implementation heap-allocated four fresh
//! vectors (counts, offsets, and the next level's vertex/sublist arrays) and
//! dropped them at the end of the level; windowed runs repeated that churn
//! once per window. The arena keeps all of that scratch alive across levels
//! *and* windows, so after the first level each buffer is a `clear()` +
//! reuse of already-grown capacity.
//!
//! Device-memory accounting: the recycled kernel scratch (counts, offsets,
//! masks, tails) models per-launch transient state — registers and
//! launch-scoped temporaries the paper's kernels hold outside the clique
//! list — and is not charged against [`DeviceMemory`], exactly as the
//! unfused path never charged its per-level count/offset vectors. The spill
//! buffer for long-tail adjacency bitmasks *is* device-resident state, and
//! is charged at its high-water mark: growing it charges only the delta over
//! the largest size seen so far, not a fresh per-level allocation.
//! [`LevelArena::release_charges`] drops all spill charges, which expansion
//! calls both on completion and on OOM so a windowed retry starts clean.

use gmc_dpp::{DeviceMemory, DeviceOom, MemoryGuard};

/// One sublist of the head level, as segmented for the local-bitmap fast
/// path. `bitmap` segments own a span of [`LevelArena::members`] and
/// [`LevelArena::local_rows`]; scalar segments only carry their extent.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LocalSeg {
    /// First entry index of the sublist in the head level.
    pub start: usize,
    /// Member count `m` (sublist length).
    pub len: usize,
    /// First global row index in the row-build launch (bitmap segs only).
    pub row0: usize,
    /// Word offset of this segment's rows in [`LevelArena::local_rows`]
    /// (its span in [`LevelArena::members`] starts at `row0`: one member
    /// key per row).
    pub rows_off: usize,
    /// Words per bitmap row: `len.div_ceil(64)`.
    pub words_per_row: usize,
    /// Whether this sublist takes the bitmap fast path.
    pub bitmap: bool,
}

/// Recycled scratch buffers for the fused (and unfused-accounting) expansion
/// pipeline. See the module docs for the charging policy.
pub(crate) struct LevelArena {
    /// Per-entry adjacent-successor counts (count-kernel output).
    pub counts: Vec<usize>,
    /// Exclusive scan of `counts` (emit-kernel output offsets).
    pub offsets: Vec<usize>,
    /// Per-entry inline adjacency bitmask over the first 64 tail positions.
    pub masks: Vec<u64>,
    /// Per-entry sublist tail length (entries after `i` in `i`'s sublist).
    pub tails: Vec<u32>,
    /// Tail lengths of the level being emitted (swapped into `tails`).
    pub next_tails: Vec<u32>,
    /// Per-entry spill word counts (only filled when a tail exceeds 64).
    pub spill_words: Vec<usize>,
    /// Exclusive scan of `spill_words`: each entry's spill span start.
    pub spill_offsets: Vec<usize>,
    /// Overflow adjacency bitmask words for tails longer than 64.
    pub spill: Vec<u64>,
    /// Sublist segments of the head level (local-bitmap dispatch).
    pub segs: Vec<LocalSeg>,
    /// Per-entry index into `segs`.
    pub seg_of: Vec<u32>,
    /// Global-row → segment map for the row-build launch.
    pub row_seg: Vec<u32>,
    /// Packed `(vertex << 32) | pos` member keys, sorted per bitmap
    /// segment (see `gmc_graph::pack_member`).
    pub members: Vec<u64>,
    /// Sublist-local adjacency bitmap rows, all bitmap segments
    /// concatenated (`len * words_per_row` words each).
    pub local_rows: Vec<u64>,
    /// Freelist of retired `u32` level arrays (vertex/sublist staging).
    staging: Vec<Vec<u32>>,
    /// Charges backing `spill` at its high-water mark.
    spill_guards: Vec<MemoryGuard>,
    spill_charged: usize,
    /// Charges backing `members` + `local_rows` at their high-water mark.
    local_guards: Vec<MemoryGuard>,
    local_charged: usize,
}

impl LevelArena {
    /// An arena with no retained capacity.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            offsets: Vec::new(),
            masks: Vec::new(),
            tails: Vec::new(),
            next_tails: Vec::new(),
            spill_words: Vec::new(),
            spill_offsets: Vec::new(),
            spill: Vec::new(),
            segs: Vec::new(),
            seg_of: Vec::new(),
            row_seg: Vec::new(),
            members: Vec::new(),
            local_rows: Vec::new(),
            staging: Vec::new(),
            spill_guards: Vec::new(),
            spill_charged: 0,
            local_guards: Vec::new(),
            local_charged: 0,
        }
    }

    /// Hands out a recycled `u32` buffer (empty, capacity retained), or a
    /// fresh one when the freelist is dry.
    pub fn take_staging(&mut self) -> Vec<u32> {
        self.staging.pop().unwrap_or_default()
    }

    /// Returns a level array to the freelist for reuse by later levels and
    /// windows.
    pub fn retire_staging(&mut self, mut buf: Vec<u32>) {
        buf.clear();
        self.staging.push(buf);
    }

    /// Fills `tails[i]` with the number of entries after `i` in `i`'s
    /// sublist run — the walk length both expansion kernels traverse.
    pub fn set_tails_from_sublists(&mut self, sublist_id: &[u32]) {
        let n = sublist_id.len();
        self.tails.clear();
        self.tails.resize(n, 0);
        for i in (0..n.saturating_sub(1)).rev() {
            if sublist_id[i + 1] == sublist_id[i] {
                self.tails[i] = self.tails[i + 1] + 1;
            }
        }
    }

    /// Ensures `bytes` of spill storage are charged against `memory`,
    /// charging only the delta beyond the current high-water mark.
    pub fn charge_spill(&mut self, memory: &DeviceMemory, bytes: usize) -> Result<(), DeviceOom> {
        if bytes > self.spill_charged {
            let guard = memory.try_charge(bytes - self.spill_charged)?;
            self.spill_charged = bytes;
            self.spill_guards.push(guard);
        }
        Ok(())
    }

    /// Ensures `bytes` of local-bitmap storage (member keys + row words,
    /// device-resident between the sort/build launches and the count
    /// kernel) are charged, high-water style like the spill buffer.
    pub fn charge_local(&mut self, memory: &DeviceMemory, bytes: usize) -> Result<(), DeviceOom> {
        if bytes > self.local_charged {
            let guard = memory.try_charge(bytes - self.local_charged)?;
            self.local_charged = bytes;
            self.local_guards.push(guard);
        }
        Ok(())
    }

    /// Releases every spill and local-bitmap charge (capacity stays for
    /// reuse). Called at the end of an expansion and on OOM, so retries and
    /// later windows charge from zero.
    pub fn release_charges(&mut self) {
        self.spill_guards.clear();
        self.spill_charged = 0;
        self.local_guards.clear();
        self.local_charged = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tails_follow_sublist_runs() {
        let mut arena = LevelArena::new();
        arena.set_tails_from_sublists(&[0, 0, 0, 1, 1, 2, 0]);
        assert_eq!(arena.tails, vec![2, 1, 0, 1, 0, 0, 0]);
        arena.set_tails_from_sublists(&[]);
        assert!(arena.tails.is_empty());
    }

    #[test]
    fn staging_recycles_capacity() {
        let mut arena = LevelArena::new();
        let mut a = arena.take_staging();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        arena.retire_staging(a);
        let b = arena.take_staging();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn spill_charging_is_high_water_and_releasable() {
        let memory = DeviceMemory::new(1024);
        let mut arena = LevelArena::new();
        arena.charge_spill(&memory, 256).unwrap();
        assert_eq!(memory.live(), 256);
        // Growing charges only the delta; shrinking charges nothing.
        arena.charge_spill(&memory, 512).unwrap();
        assert_eq!(memory.live(), 512);
        arena.charge_spill(&memory, 128).unwrap();
        assert_eq!(memory.live(), 512);
        // Over-budget growth fails without disturbing existing charges.
        assert!(arena.charge_spill(&memory, 2048).is_err());
        assert_eq!(memory.live(), 512);
        arena.release_charges();
        assert_eq!(memory.live(), 0);
        // After release, charging starts from zero again.
        arena.charge_spill(&memory, 64).unwrap();
        assert_eq!(memory.live(), 64);
    }

    #[test]
    fn local_bitmap_charging_tracks_its_own_high_water() {
        let memory = DeviceMemory::new(1024);
        let mut arena = LevelArena::new();
        arena.charge_spill(&memory, 100).unwrap();
        arena.charge_local(&memory, 300).unwrap();
        assert_eq!(memory.live(), 400);
        // Each pool grows independently of the other.
        arena.charge_local(&memory, 200).unwrap();
        assert_eq!(memory.live(), 400);
        arena.charge_local(&memory, 500).unwrap();
        assert_eq!(memory.live(), 600);
        assert!(arena.charge_local(&memory, 2000).is_err());
        assert_eq!(memory.live(), 600);
        arena.release_charges();
        assert_eq!(memory.live(), 0);
    }
}
