//! Setup phase: orientation, pre-pruning and 2-clique list formation
//! (paper §IV-C).
//!
//! From each undirected edge exactly one directed arc is kept so that every
//! clique is enumerated once: the arc whose source compares lower under the
//! *(degree, index)* order. Orienting by degree (rather than index) makes
//! low-degree vertices the sources, which shortens the average sublist and
//! lets the `|sublist| < ω̄ − 1` cut remove more of them.
//!
//! Pre-pruning drops every vertex whose degree (or core number) + 1 is below
//! the heuristic lower bound `ω̄` — such a vertex cannot belong to any clique
//! of size ≥ ω̄, and since `ω̄ ≤ ω`, removing it everywhere is lossless for
//! enumeration.

use crate::config::{CandidateOrder, OrientationRule, SublistBound};
use gmc_dpp::{Executor, SharedSlice};
use gmc_graph::Csr;

/// Counters from the setup phase, reported in [`SolveStats`].
///
/// [`SolveStats`]: crate::SolveStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetupStats {
    /// Oriented edges before any pruning (= `|E|`).
    pub total_oriented_edges: usize,
    /// 2-clique entries that survive pruning.
    pub initial_entries: usize,
    /// Vertices removed by the degree/core-number bound.
    pub pruned_vertices: usize,
    /// Non-empty sublists removed for being shorter than `ω̄ − 1`.
    pub pruned_sublists: usize,
}

/// The packed 2-clique node: parallel `vertex_id` (candidates) and
/// `sublist_id` (source vertices) arrays, plus setup counters.
pub(crate) struct SetupOutput {
    pub vertex_id: Vec<u32>,
    pub sublist_id: Vec<u32>,
    /// Per-vertex survival mask from core pruning: every id in `vertex_id`
    /// / `sublist_id` has `keep == true`, so a persistent core bitmap built
    /// over the survivors covers the whole search.
    pub keep: Vec<bool>,
    pub stats: SetupStats,
}

/// Whether `u` follows `v` in the orientation order (a strict total order,
/// so every clique has a unique monotone vertex sequence).
#[inline]
pub(crate) fn oriented_after(graph: &Csr, rule: OrientationRule, v: u32, u: u32) -> bool {
    match rule {
        OrientationRule::Degree => (graph.degree(u), u) > (graph.degree(v), v),
        OrientationRule::Index => u > v,
    }
}

/// Builds the 2-clique list (paper §IV-C): count per-vertex oriented
/// out-neighbors, prune, scan for offsets, then emit each surviving sublist
/// with one virtual thread per source.
pub(crate) fn build_two_clique_list(
    exec: &Executor,
    graph: &Csr,
    lower_bound: u32,
    prune_thresholds: &[u32],
    rule: OrientationRule,
    order: CandidateOrder,
    bound: SublistBound,
) -> SetupOutput {
    let n = graph.num_vertices();
    assert_eq!(
        prune_thresholds.len(),
        n,
        "one pruning threshold per vertex"
    );

    // Vertex pre-pruning: a vertex with upper bound `threshold + 1 < ω̄`
    // cannot appear in any clique we are looking for.
    let keep: Vec<bool> = exec.map_indexed_named("setup_prune_vertices", n, |v| {
        prune_thresholds[v] + 1 >= lower_bound
    });
    let pruned_vertices = n - keep.iter().filter(|&&k| k).count();

    // Step 1: per-vertex oriented out-neighbor counts among kept vertices.
    let raw_counts: Vec<usize> = exec.map_indexed_named("setup_count_sublists", n, |v| {
        if !keep[v] {
            return 0;
        }
        let v = v as u32;
        graph
            .neighbors(v)
            .iter()
            .filter(|&&u| keep[u as usize] && oriented_after(graph, rule, v, u))
            .count()
    });

    // Step 2: sublist pruning. A clique of size ≥ ω̄ whose minimum vertex
    // (in orientation order) is `v` needs at least ω̄ − 1 oriented
    // out-neighbors of `v` — and, under the tighter colouring bound, at
    // least ω̄ − 1 colours among them (§II-B3).
    let required = (lower_bound.saturating_sub(1) as usize).max(1);
    let counts: Vec<usize> = exec.map_indexed_named("setup_prune_sublists", n, |v| {
        if raw_counts[v] < required {
            return 0;
        }
        if bound == SublistBound::Coloring && required > 1 {
            let candidates: Vec<u32> = graph
                .neighbors(v as u32)
                .iter()
                .copied()
                .filter(|&u| keep[u as usize] && oriented_after(graph, rule, v as u32, u))
                .collect();
            if greedy_color_count(graph, &candidates) < required {
                return 0;
            }
        }
        raw_counts[v]
    });
    let pruned_sublists = (0..n)
        .filter(|&v| raw_counts[v] > 0 && counts[v] == 0)
        .count();

    // Step 3: scan for sublist start offsets and total size.
    let (offsets, total) = gmc_dpp::exclusive_scan(exec, &counts);

    // Step 4: one virtual thread per surviving sublist emits its candidates
    // in the configured order.
    let mut vertex_id = vec![0u32; total];
    let mut sublist_id = vec![0u32; total];
    {
        let vertex_shared = SharedSlice::new(&mut vertex_id);
        let sublist_shared = SharedSlice::new(&mut sublist_id);
        exec.for_each_indexed_named("setup_emit_sublists", n, |v| {
            if counts[v] == 0 {
                return;
            }
            let src = v as u32;
            let mut list: Vec<u32> = graph
                .neighbors(src)
                .iter()
                .copied()
                .filter(|&u| keep[u as usize] && oriented_after(graph, rule, src, u))
                .collect();
            match order {
                CandidateOrder::Index => {} // adjacency lists are id-sorted
                CandidateOrder::DegreeAscending => {
                    list.sort_unstable_by_key(|&u| (graph.degree(u), u));
                }
            }
            let base = offsets[v];
            for (i, &u) in list.iter().enumerate() {
                // SAFETY: sublists occupy disjoint output spans.
                unsafe {
                    vertex_shared.write(base + i, u);
                    sublist_shared.write(base + i, src);
                }
            }
        });
    }

    SetupOutput {
        vertex_id,
        sublist_id,
        keep,
        stats: SetupStats {
            total_oriented_edges: graph.num_edges(),
            initial_entries: total,
            pruned_vertices,
            pruned_sublists,
        },
    }
}

/// Number of colours a greedy pass assigns to `candidates` (an upper bound
/// on the largest clique among them).
fn greedy_color_count(graph: &Csr, candidates: &[u32]) -> usize {
    let mut classes: Vec<Vec<u32>> = Vec::new();
    for &v in candidates {
        let mut placed = false;
        for class in classes.iter_mut() {
            if class.iter().all(|&u| !graph.has_edge(u, v)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            classes.push(vec![v]);
        }
    }
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    fn setup(graph: &Csr, lower: u32, order: CandidateOrder) -> SetupOutput {
        let exec = Executor::new(2);
        build_two_clique_list(
            &exec,
            graph,
            lower,
            &graph.degrees(),
            OrientationRule::Degree,
            order,
            SublistBound::Length,
        )
    }

    #[test]
    fn no_pruning_keeps_every_edge_once() {
        let g = generators::gnp(100, 0.1, 3);
        let out = setup(&g, 0, CandidateOrder::Index);
        assert_eq!(out.stats.initial_entries, g.num_edges());
        assert_eq!(out.stats.total_oriented_edges, g.num_edges());
        assert_eq!(out.stats.pruned_vertices, 0);
        // Every entry is a valid oriented edge.
        for (i, &u) in out.vertex_id.iter().enumerate() {
            let src = out.sublist_id[i];
            assert!(g.has_edge(src, u));
            assert!(oriented_after(&g, OrientationRule::Degree, src, u));
        }
    }

    #[test]
    fn orientation_is_a_partition() {
        // Each undirected edge appears exactly once across all sublists.
        let g = generators::gnp(80, 0.15, 7);
        let out = setup(&g, 0, CandidateOrder::Index);
        let mut seen = std::collections::HashSet::new();
        for (i, &u) in out.vertex_id.iter().enumerate() {
            let src = out.sublist_id[i];
            let key = ((src.min(u) as u64) << 32) | src.max(u) as u64;
            assert!(seen.insert(key), "edge ({src},{u}) duplicated");
        }
        assert_eq!(seen.len(), g.num_edges());
    }

    #[test]
    fn vertex_pruning_removes_low_degree() {
        // Star: hub degree 5, leaves degree 1; ω̄ = 3 prunes all leaves.
        let g = Csr::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let out = setup(&g, 3, CandidateOrder::Index);
        assert_eq!(out.stats.pruned_vertices, 5);
        assert_eq!(out.stats.initial_entries, 0);
    }

    #[test]
    fn sublist_pruning_respects_required_length() {
        // Triangle + pendant edge. ω̄ = 3 requires sublists of length ≥ 2.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let out = setup(&g, 3, CandidateOrder::Index);
        // Vertex 3 (degree 1) is pruned; among {0,1,2}, only the triangle's
        // minimum vertex keeps a length-2 sublist.
        assert_eq!(out.stats.initial_entries, 2);
        let src = out.sublist_id[0];
        assert_eq!(out.sublist_id[1], src);
    }

    #[test]
    fn witness_sublist_always_survives() {
        // The pruning bound must never cut the heuristic's own clique.
        for seed in 0..5 {
            let base = generators::gnp(60, 0.1, seed);
            let (g, members) = generators::plant_clique(&base, 6, seed + 100);
            let out = setup(&g, 6, CandidateOrder::DegreeAscending);
            // The planted clique's minimum (by orientation) vertex must head
            // a sublist containing the other five members.
            let min = *members.iter().min_by_key(|&&v| (g.degree(v), v)).unwrap();
            let in_sublist: Vec<u32> = out
                .sublist_id
                .iter()
                .zip(&out.vertex_id)
                .filter(|(&s, _)| s == min)
                .map(|(_, &u)| u)
                .collect();
            for &m in &members {
                if m != min {
                    assert!(in_sublist.contains(&m), "seed {seed}: {m} missing");
                }
            }
        }
    }

    #[test]
    fn degree_ascending_orders_candidates() {
        let g = Csr::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
            ],
        );
        let out = setup(&g, 0, CandidateOrder::DegreeAscending);
        // Within each sublist, degrees are non-decreasing.
        let mut i = 0;
        while i < out.vertex_id.len() {
            let mut j = i + 1;
            while j < out.vertex_id.len() && out.sublist_id[j] == out.sublist_id[i] {
                let (du, dv) = (g.degree(out.vertex_id[j - 1]), g.degree(out.vertex_id[j]));
                assert!(
                    (du, out.vertex_id[j - 1]) <= (dv, out.vertex_id[j]),
                    "sublist not degree-sorted"
                );
                j += 1;
            }
            i = j;
        }
    }

    #[test]
    fn coloring_bound_prunes_bipartite_sublists() {
        // K_{2,6} plus a planted triangle elsewhere: the two left vertices
        // have 6 candidates each, but those candidates are an independent
        // set (1 colour), so with ω̄ = 3 the colouring bound removes the
        // sublists the length bound keeps.
        let mut edges = vec![(8u32, 9u32), (9, 10), (8, 10)]; // triangle
        for left in 0..2u32 {
            for right in 2..8u32 {
                edges.push((left, right));
            }
        }
        let g = Csr::from_edges(11, &edges);
        let exec = Executor::new(2);
        let build = |bound: SublistBound| {
            build_two_clique_list(
                &exec,
                &g,
                3,
                &g.degrees(),
                OrientationRule::Degree,
                CandidateOrder::Index,
                bound,
            )
        };
        let by_length = build(SublistBound::Length);
        let by_coloring = build(SublistBound::Coloring);
        assert!(
            by_coloring.stats.initial_entries < by_length.stats.initial_entries,
            "coloring {} !< length {}",
            by_coloring.stats.initial_entries,
            by_length.stats.initial_entries
        );
        // The triangle's sublist must survive both bounds.
        assert!(by_coloring.stats.initial_entries >= 2);
    }

    #[test]
    fn core_thresholds_prune_tighter_than_degree() {
        // A 4-clique with a long tail: tail vertices have degree 2 but core
        // number 1, so core-based pruning with ω̄ = 3 removes them while
        // degree-based pruning keeps them.
        let mut edges = vec![(3u32, 4u32), (4, 5), (5, 6), (6, 7)];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let g = Csr::from_edges(8, &edges);
        let exec = Executor::new(2);
        let by_degree = build_two_clique_list(
            &exec,
            &g,
            3,
            &g.degrees(),
            OrientationRule::Degree,
            CandidateOrder::Index,
            SublistBound::Length,
        );
        let cores = gmc_graph::kcore::core_numbers(&g);
        let by_core = build_two_clique_list(
            &exec,
            &g,
            3,
            &cores,
            OrientationRule::Degree,
            CandidateOrder::Index,
            SublistBound::Length,
        );
        assert!(by_core.stats.pruned_vertices > by_degree.stats.pruned_vertices);
        assert!(by_core.stats.initial_entries <= by_degree.stats.initial_entries);
    }
}
