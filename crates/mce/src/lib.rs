//! # gmc-mce: breadth-first maximum clique enumeration
//!
//! The paper's primary contribution, reproduced on the `gmc-dpp` virtual
//! GPU. A solve proceeds through the same phases as the CUDA implementation
//! (§IV):
//!
//! 1. **Heuristic** — a greedy lower bound `ω̄` with witness (`gmc-heuristic`),
//!    optionally preceded by a k-core decomposition for tighter thresholds.
//! 2. **Setup** — degree orientation, vertex/sublist pre-pruning and
//!    2-clique list formation (§IV-C; counters in [`SetupStats`]).
//! 3. **Expansion** — the iterative count → scan → output loop over the
//!    clique-list levels (Algorithm 2), either over the whole 2-clique list
//!    at once or window by window (§IV-E; see [`WindowConfig`]).
//!
//! The solver *enumerates* every maximum clique (the paper's headline mode);
//! windowed find-one mode returns a single witness when memory is too tight
//! for enumeration. Every intermediate level is charged against the device
//! memory budget, so a too-small budget surfaces as
//! [`SolveError::DeviceOom`] exactly where the paper reports OOM.

#![warn(missing_docs)]

mod arena;
mod bfs;
mod config;
mod setup;
pub mod verify;
mod window;

pub use bfs::LocalBitsStats;
pub use config::{
    CandidateOrder, EdgeIndexKind, LocalBitsMode, OrientationRule, SolverConfig, SublistBound,
    WindowConfig, WindowOrdering,
};
pub use setup::SetupStats;
pub use verify::{verify_result, VerifyError};
pub use window::WindowStats;

use gmc_cliquelist::CliqueLevel;
use gmc_dpp::{
    Cancelled, Device, DeviceError, DeviceOom, FaultInjector, FaultStats, LaunchStats, Schedule,
    ScheduleStats, Tracer,
};
use gmc_graph::{BitMatrix, CoreBitmap, Csr, EdgeOracle, HashAdjacency};
use gmc_heuristic::{run_heuristic, HeuristicKind, HeuristicResult};
use std::time::{Duration, Instant};

/// Why a solve did not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The candidate cliques outgrew the device memory budget — the paper's
    /// OOM outcome. The windowed variant or a better heuristic may still
    /// solve the instance.
    DeviceOom(DeviceOom),
    /// Injected faults (see [`SolverConfig::faults`]) kept failing the
    /// expansion past the fault plan's retry cap. Only fault-injected runs
    /// can return this; it is the typed give-up the chaos suite asserts on
    /// instead of a panic.
    FaultRetriesExhausted {
        /// Expansion attempts made before giving up (`max_retries + 1`).
        attempts: u32,
    },
    /// The device's [`CancelToken`](gmc_dpp::CancelToken) was tripped (by
    /// request or deadline) and the solve unwound at the next launch
    /// boundary, releasing every device and arena charge on the way out.
    Cancelled(Cancelled),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::DeviceOom(oom) => write!(f, "solve ran out of device memory: {oom}"),
            SolveError::FaultRetriesExhausted { attempts } => write!(
                f,
                "injected faults exhausted the expansion retry cap after {attempts} attempts"
            ),
            SolveError::Cancelled(cancelled) => cancelled.fmt(f),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<DeviceOom> for SolveError {
    fn from(oom: DeviceOom) -> Self {
        SolveError::DeviceOom(oom)
    }
}

impl From<Cancelled> for SolveError {
    fn from(cancelled: Cancelled) -> Self {
        SolveError::Cancelled(cancelled)
    }
}

/// Phase timings and counters for one solve.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Heuristic used.
    pub heuristic_kind: HeuristicKind,
    /// Lower bound `ω̄` the heuristic established.
    pub lower_bound: u32,
    /// Wall time of the heuristic phase (includes any k-core pass).
    pub heuristic_time: Duration,
    /// Portion of the heuristic phase spent on k-core decomposition.
    pub core_time: Duration,
    /// Wall time of orientation + 2-clique list formation.
    pub setup_time: Duration,
    /// Wall time of the expansion loop (all windows, when windowed).
    pub expansion_time: Duration,
    /// Total solve wall time.
    pub total_time: Duration,
    /// Device-memory high-water mark of the clique-list (candidate) storage
    /// during setup + expansion, in bytes. This is the quantity the paper's
    /// memory analysis (Table I OOM, Fig. 6) is about. Heuristic scratch is
    /// reported separately in `heuristic_peak_bytes`; both phases charge the
    /// same budget, so either can trigger OOM.
    pub peak_device_bytes: usize,
    /// Device-memory high-water mark of the heuristic phase (multi-run
    /// neighbor arrays), in bytes.
    pub heuristic_peak_bytes: usize,
    /// Setup counters (orientation and pruning).
    pub setup: SetupStats,
    /// Entries per clique-list level (full mode only; windows track their
    /// own peaks instead).
    pub level_entries: Vec<usize>,
    /// Whether the provably-unique-remainder early exit fired.
    pub early_exit: bool,
    /// Exact number of edge-oracle `connected` calls the expansion phase
    /// made (count/output walks, early-exit checks, and recursive child
    /// levels when windowed). The fused pipeline roughly halves this against
    /// the unfused baseline by replaying recorded adjacency bits instead of
    /// re-walking sublists.
    pub oracle_queries: u64,
    /// Adjacency-bitmap fast-path counters (see
    /// [`SolverConfig::local_bits`]): per-level rows built, row words
    /// scanned, the exact number of scalar oracle probes the bitmaps made
    /// unnecessary, and — when the persistent core-bitmap tier fired — the
    /// word-test probe count and the bitmap's charged bytes.
    pub local_bits: LocalBitsStats,
    /// Virtual-GPU launch counters consumed by this solve.
    pub launches: LaunchStats,
    /// Scheduling and load-balance counters consumed by this solve
    /// ([`SolverConfig::schedule`]): which launches took the pool, how many
    /// ran under dynamic morsel claiming / cost hints, and the
    /// makespan-vs-mean imbalance signal.
    pub sched: ScheduleStats,
    /// Window counters when the windowed variant ran.
    pub window: Option<WindowStats>,
    /// Exact fault-injection counters (all zero unless
    /// [`SolverConfig::faults`] armed an active plan). On a successful solve
    /// the recovery totals equal the injection totals.
    pub faults: FaultStats,
}

impl SolveStats {
    /// Fraction of 2-clique entries eliminated by setup pruning — the
    /// paper's "pruning quality" metric (Fig. 5b).
    pub fn pruning_fraction(&self) -> f64 {
        if self.setup.total_oriented_edges == 0 {
            0.0
        } else {
            1.0 - self.setup.initial_entries as f64 / self.setup.total_oriented_edges as f64
        }
    }
}

/// Result of a maximum clique solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The clique number ω(G).
    pub clique_number: u32,
    /// Maximum cliques: all of them when `complete_enumeration`, otherwise
    /// a single witness. Each clique is sorted ascending; the list is
    /// sorted lexicographically.
    pub cliques: Vec<Vec<u32>>,
    /// Whether `cliques` is the complete set of maximum cliques.
    pub complete_enumeration: bool,
    /// Phase timings and counters.
    pub stats: SolveStats,
}

impl SolveResult {
    /// Number of maximum cliques found (the multiplicity, when
    /// `complete_enumeration`).
    pub fn multiplicity(&self) -> usize {
        self.cliques.len()
    }
}

/// Breadth-first maximum clique solver bound to a [`Device`].
///
/// ```
/// use gmc_dpp::Device;
/// use gmc_graph::Csr;
/// use gmc_mce::MaxCliqueSolver;
///
/// let graph = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let result = MaxCliqueSolver::new(Device::unlimited())
///     .solve(&graph)
///     .unwrap();
/// assert_eq!(result.clique_number, 3);
/// assert_eq!(result.cliques, vec![vec![0, 1, 2]]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxCliqueSolver {
    device: Device,
    config: SolverConfig,
}

impl MaxCliqueSolver {
    /// A solver with the default configuration (multi-run degree heuristic,
    /// degree-ascending candidates, no windowing).
    pub fn new(device: Device) -> Self {
        Self {
            device,
            config: SolverConfig::default(),
        }
    }

    /// A solver with an explicit configuration.
    pub fn with_config(device: Device, config: SolverConfig) -> Self {
        Self { device, config }
    }

    /// Sets the lower-bound heuristic.
    pub fn heuristic(mut self, kind: HeuristicKind) -> Self {
        self.config.heuristic = kind;
        self
    }

    /// Caps the number of multi-run heuristic seeds.
    pub fn heuristic_seeds(mut self, h: usize) -> Self {
        self.config.heuristic_seeds = Some(h);
        self
    }

    /// Sets the edge orientation rule.
    pub fn orientation(mut self, rule: OrientationRule) -> Self {
        self.config.orientation = rule;
        self
    }

    /// Sets the candidate ordering within sublists.
    pub fn candidate_order(mut self, order: CandidateOrder) -> Self {
        self.config.candidate_order = order;
        self
    }

    /// Sets the edge-membership structure used by the expansion kernels.
    pub fn edge_index(mut self, kind: EdgeIndexKind) -> Self {
        self.config.edge_index = kind;
        self
    }

    /// Sets the sublist pruning bound (length vs greedy colouring).
    pub fn sublist_bound(mut self, bound: SublistBound) -> Self {
        self.config.sublist_bound = bound;
        self
    }

    /// Enables the windowed search variant.
    pub fn windowed(mut self, window: WindowConfig) -> Self {
        self.config.window = Some(window);
        self
    }

    /// Enables or disables the early-exit optimisation.
    pub fn early_exit(mut self, enabled: bool) -> Self {
        self.config.early_exit = enabled;
        self
    }

    /// Selects the expansion pipeline: fused record-and-replay (default) or
    /// the paper-literal double-walk baseline (see [`SolverConfig::fused`]).
    pub fn fused(mut self, enabled: bool) -> Self {
        self.config.fused = enabled;
        self
    }

    /// Selects the adjacency-bitmap policy inside the fused pipeline
    /// (see [`SolverConfig::local_bits`]): `Persistent`, `On`, `Off`, or
    /// the `Auto` policy (the default, overridable via `GMC_LOCAL_BITS`).
    pub fn local_bits(mut self, mode: LocalBitsMode) -> Self {
        self.config.local_bits = mode;
        self
    }

    /// Selects the launch schedule the solve installs on the device executor
    /// (see [`SolverConfig::schedule`]): `Static`, `Morsel`, `Guided`, or
    /// the `Auto` policy (the default, overridable via `GMC_SCHED`).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Arms (or disarms, with `None`) deterministic fault injection for the
    /// next solve (see [`SolverConfig::faults`]).
    pub fn faults(mut self, plan: Option<gmc_dpp::FaultPlan>) -> Self {
        self.config.faults = plan;
        self
    }

    /// Enables local-search polishing of the heuristic witness.
    pub fn polish_witness(mut self, enabled: bool) -> Self {
        self.config.polish_witness = enabled;
        self
    }

    /// Installs a recording tracer for the next [`MaxCliqueSolver::solve`]
    /// (see [`SolverConfig::trace`]).
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.config.trace = tracer;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The device this solver runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Solves `graph`: enumerates all maximum cliques (or finds one, in
    /// windowed find-one mode). Resets the device's peak-memory counter at
    /// the start; the reported peak covers this solve only.
    pub fn solve(&self, graph: &Csr) -> Result<SolveResult, SolveError> {
        let device = &self.device;
        // Install the configured tracer on the device for the duration of
        // this solve, so every launch and allocation lands on the timeline;
        // leave an externally installed tracer alone when ours is disabled.
        let tracing = self.config.trace.is_enabled();
        if tracing {
            device.exec().set_tracer(self.config.trace.clone());
            device.memory().set_tracer(self.config.trace.clone());
        }
        // Install the configured launch schedule for the duration of the
        // solve; restore whatever the executor had before (the clique set
        // is bit-identical either way — see `gmc_dpp::Schedule`).
        let prev_schedule = device.exec().schedule();
        device.exec().set_schedule(self.config.schedule);
        let result = self.solve_traced(graph);
        device.exec().set_schedule(prev_schedule);
        if tracing {
            device.exec().set_tracer(Tracer::disabled());
            device.memory().set_tracer(Tracer::disabled());
        }
        result
    }

    fn solve_traced(&self, graph: &Csr) -> Result<SolveResult, SolveError> {
        let device = &self.device;
        let tracer = self.config.trace.clone();
        let mut solve_span = tracer.is_enabled().then(|| {
            tracer.span_with(
                "solve",
                &[
                    ("vertices", graph.num_vertices() as i64),
                    ("edges", graph.num_edges() as i64),
                ],
            )
        });
        let start = Instant::now();
        let launch_base = device.exec().stats();
        let sched_base = device.exec().schedule_stats();
        device.memory().reset_peak();

        let mut stats = SolveStats {
            heuristic_kind: self.config.heuristic,
            ..SolveStats::default()
        };

        // Degenerate graphs (the paper's pipeline assumes at least one edge).
        if graph.num_vertices() == 0 {
            stats.total_time = start.elapsed();
            return Ok(SolveResult {
                clique_number: 0,
                cliques: Vec::new(),
                complete_enumeration: true,
                stats,
            });
        }
        if graph.num_edges() == 0 {
            // Every vertex is a maximum 1-clique.
            stats.total_time = start.elapsed();
            return Ok(SolveResult {
                clique_number: 1,
                cliques: (0..graph.num_vertices() as u32).map(|v| vec![v]).collect(),
                complete_enumeration: true,
                stats,
            });
        }

        // Phase 1: heuristic lower bound (optionally polished by local
        // search). Cancellation is polled at every phase boundary (and
        // inside the expansion's level/window loops); a tripped token
        // unwinds here with everything already released by RAII.
        device.exec().check_cancelled()?;
        let mut heuristic_span = tracer.is_enabled().then(|| tracer.span("heuristic"));
        let mut heuristic = run_heuristic(
            device,
            graph,
            self.config.heuristic,
            self.config.heuristic_seeds,
        )?;
        if self.config.polish_witness && !heuristic.clique.is_empty() {
            let polish_start = Instant::now();
            gmc_heuristic::polish_clique(graph, &mut heuristic.clique);
            heuristic.total_time += polish_start.elapsed();
        }
        if let Some(span) = heuristic_span.as_mut() {
            span.arg("lower_bound", i64::from(heuristic.lower_bound()));
        }
        drop(heuristic_span);
        stats.lower_bound = heuristic.lower_bound();
        stats.heuristic_time = heuristic.total_time;
        stats.core_time = heuristic.core_time;
        stats.heuristic_peak_bytes = device.memory().peak();
        // From here on, track the clique-list footprint separately (the
        // heuristic scratch is already released).
        device.memory().reset_peak();

        // Phase 2: setup (orientation + pruning + 2-clique list).
        device.exec().check_cancelled()?;
        let setup_start = Instant::now();
        let mut setup_span = tracer.is_enabled().then(|| tracer.span("setup"));
        let thresholds = self.pruning_thresholds(graph, &heuristic);
        let setup = setup::build_two_clique_list(
            device.exec(),
            graph,
            heuristic.lower_bound(),
            &thresholds,
            self.config.orientation,
            self.config.candidate_order,
            self.config.sublist_bound,
        );
        if let Some(span) = setup_span.as_mut() {
            span.arg("initial_entries", setup.stats.initial_entries as i64);
            span.arg("pruned_vertices", setup.stats.pruned_vertices as i64);
            span.arg("pruned_sublists", setup.stats.pruned_sublists as i64);
        }
        drop(setup_span);
        stats.setup = setup.stats;
        stats.setup_time = setup_start.elapsed();

        // Phase 3: expansion, through the configured edge oracle. The
        // dispatch happens once here so the per-edge-check hot loops are
        // monomorphised over the concrete oracle type.
        device.exec().check_cancelled()?;
        let expansion_start = Instant::now();
        let min_target = heuristic.lower_bound().max(2);
        let mut expansion_span = tracer
            .is_enabled()
            .then(|| tracer.span_with("expansion", &[("min_target", i64::from(min_target))]));
        let oracle = self.build_oracle(graph)?;
        let (mut cliques, clique_number, complete) = match &oracle {
            BuiltOracle::Csr(g) => {
                self.run_expansion(graph, *g, setup, &heuristic, min_target, &mut stats)?
            }
            BuiltOracle::Bits(bits, _) => {
                self.run_expansion(graph, bits, setup, &heuristic, min_target, &mut stats)?
            }
            BuiltOracle::Hash(hash, _) => {
                self.run_expansion(graph, hash, setup, &heuristic, min_target, &mut stats)?
            }
        };
        drop(oracle);
        if let Some(span) = expansion_span.as_mut() {
            span.arg("oracle_queries", stats.oracle_queries as i64);
            span.arg("clique_number", i64::from(clique_number));
        }
        drop(expansion_span);
        stats.expansion_time = expansion_start.elapsed();

        // Canonical ordering of the result.
        for clique in &mut cliques {
            clique.sort_unstable();
        }
        cliques.sort();
        debug_assert!(cliques.iter().all(|c| graph.is_clique(c)));

        stats.peak_device_bytes = device
            .memory()
            .peak()
            .max(stats.window.as_ref().map_or(0, |w| w.peak_window_bytes));
        stats.launches = device.exec().stats().since(&launch_base);
        stats.sched = device.exec().schedule_stats().since(&sched_base);
        stats.total_time = start.elapsed();
        if let Some(span) = solve_span.as_mut() {
            span.arg("clique_number", i64::from(clique_number));
            span.arg("cliques", cliques.len() as i64);
        }
        drop(solve_span);
        Ok(SolveResult {
            clique_number,
            cliques,
            complete_enumeration: complete,
            stats,
        })
    }

    /// The expansion phase, generic over the edge oracle so the count/emit
    /// kernels inline the concrete `connected` implementation.
    ///
    /// When [`SolverConfig::faults`] holds an active plan, the injector is
    /// armed on the device for exactly this phase (heuristic, setup and
    /// oracle construction run fault-free) and injected faults that escape
    /// the inner recovery rungs — bitmap fallback inside a level, window
    /// retry/shrink inside the sweep — are retried here from a clean slate,
    /// up to the plan's cap.
    fn run_expansion<O: EdgeOracle>(
        &self,
        graph: &Csr,
        oracle: &O,
        setup: setup::SetupOutput,
        heuristic: &HeuristicResult,
        min_target: u32,
        stats: &mut SolveStats,
    ) -> Result<(Vec<Vec<u32>>, u32, bool), SolveError> {
        let device = &self.device;
        let injector = self
            .config
            .faults
            .filter(|plan| plan.is_active())
            .map(FaultInjector::new);
        let Some(injector) = injector else {
            // Fault-free: one attempt, setup arrays moved straight into the
            // first level. Launch faults cannot occur without an injector.
            return self
                .expand_once(graph, oracle, setup, heuristic, min_target, stats, None)
                .map_err(|err| match err {
                    DeviceError::Oom(oom) => SolveError::DeviceOom(oom),
                    DeviceError::Cancelled(cancelled) => SolveError::Cancelled(cancelled),
                    DeviceError::Launch(launch) => {
                        unreachable!("launch fault without an injector: {launch}")
                    }
                });
        };

        device.set_fault_injector(Some(injector.clone()));
        let tracer = device.exec().tracer();
        let max_retries = injector.plan().max_retries;
        let mut attempts = 0u32;
        let result = loop {
            attempts += 1;
            // Each attempt consumes its own copy of the setup arrays so a
            // faulted attempt leaves the originals intact for the next one.
            let attempt_setup = setup::SetupOutput {
                vertex_id: setup.vertex_id.clone(),
                sublist_id: setup.sublist_id.clone(),
                keep: setup.keep.clone(),
                stats: setup.stats,
            };
            match self.expand_once(
                graph,
                oracle,
                attempt_setup,
                heuristic,
                min_target,
                stats,
                Some(&injector),
            ) {
                Ok(found) => break Ok(found),
                Err(err) if err.is_injected() => {
                    if attempts > max_retries {
                        break Err(SolveError::FaultRetriesExhausted { attempts });
                    }
                    injector.note_recovery(&err);
                    if tracer.is_enabled() {
                        tracer
                            .instant("fault_expansion_retry", &[("attempt", i64::from(attempts))]);
                    }
                }
                Err(DeviceError::Oom(oom)) => break Err(SolveError::DeviceOom(oom)),
                Err(DeviceError::Cancelled(cancelled)) => {
                    break Err(SolveError::Cancelled(cancelled))
                }
                Err(DeviceError::Launch(launch)) => {
                    unreachable!("non-injected launch fault: {launch}")
                }
            }
        };
        device.set_fault_injector(None);
        stats.faults = injector.stats();
        if result.is_ok() {
            let f = stats.faults;
            assert_eq!(
                (f.alloc_recoveries, f.launch_recoveries),
                (f.injected_allocs, f.injected_launches),
                "a successful solve must recover every injected fault exactly once: {f:?}"
            );
        }
        result
    }

    /// One expansion attempt (full BFS or windowed), shared by the
    /// fault-free path and the retry loop above.
    #[allow(clippy::too_many_arguments)] // mirrors run_expansion plus the injector
    fn expand_once<O: EdgeOracle>(
        &self,
        graph: &Csr,
        oracle: &O,
        setup: setup::SetupOutput,
        heuristic: &HeuristicResult,
        min_target: u32,
        stats: &mut SolveStats,
        injector: Option<&FaultInjector>,
    ) -> Result<(Vec<Vec<u32>>, u32, bool), DeviceError> {
        let device = &self.device;
        // Resolve the adjacency-bitmap tier for this attempt. Building the
        // persistent core bitmap here — inside the armed region, once per
        // attempt — means a fault-ladder retry releases and rebuilds it
        // from scratch like every other expansion structure, and the
        // attempt-scoped guard keeps its bytes charged for the whole
        // expansion (windowed or not).
        let (core, local_bits) = self.build_core_bitmap(graph, &setup.keep, injector)?;
        let persistent = core.as_ref().map(|(bitmap, _)| bitmap);
        let found = match &self.config.window {
            None => {
                let level0 =
                    CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id)?;
                let mut arena = arena::LevelArena::new();
                let outcome = bfs::expand(
                    device,
                    graph,
                    oracle,
                    level0,
                    min_target,
                    self.config.early_exit,
                    self.config.fused,
                    local_bits,
                    persistent,
                    &mut arena,
                )?;
                stats.level_entries = outcome.level_entries;
                stats.early_exit = outcome.early_exit;
                stats.oracle_queries = outcome.oracle_queries;
                stats.local_bits = outcome.local_bits;
                debug_assert!(
                    outcome.clique_size as u32 >= heuristic.lower_bound(),
                    "exact search lost the heuristic witness"
                );
                (outcome.cliques, outcome.clique_size as u32, true)
            }
            Some(window_config) => {
                let mut outcome = window::windowed_search(
                    device,
                    graph,
                    oracle,
                    &setup,
                    window_config,
                    &heuristic.clique,
                    min_target,
                    self.config.early_exit,
                    self.config.fused,
                    local_bits,
                    persistent,
                    injector,
                )?;
                if let Some((_, guard)) = &core {
                    outcome.stats.local_bits.persistent_bytes = guard.bytes() as u64;
                }
                stats.oracle_queries = outcome.stats.oracle_queries;
                stats.local_bits = outcome.stats.local_bits;
                stats.window = Some(outcome.stats);
                (
                    outcome.cliques,
                    outcome.clique_size as u32,
                    outcome.complete,
                )
            }
        };
        if let Some((_, guard)) = &core {
            stats.local_bits.persistent_bytes = guard.bytes() as u64;
        }
        Ok(found)
    }

    /// Resolves the persistent core-bitmap tier for one expansion attempt.
    ///
    /// Returns the built bitmap with its memory guard (bytes stay charged
    /// while the expansion runs) plus the effective per-level mode the
    /// pipeline should fall back to for any window the bitmap does not
    /// serve. Tier policy: `Persistent` always tries to build; `Auto`
    /// builds when the footprint clears the same fits-comfortably gate as
    /// the bitset edge oracle (≤ 16 MiB and ≤ a quarter of the device
    /// budget); `On`/`Off` and the unfused pipeline never build.
    ///
    /// Any build failure except cancellation — genuine OOM on the charge,
    /// or an injected alloc/launch fault — degrades to the per-level tier
    /// (`Persistent` → `On`, `Auto` stays `Auto`) instead of aborting the
    /// solve; cancellation unwinds as usual with the charge released.
    fn build_core_bitmap(
        &self,
        graph: &Csr,
        keep: &[bool],
        injector: Option<&FaultInjector>,
    ) -> Result<(Option<(CoreBitmap, gmc_dpp::MemoryGuard)>, LocalBitsMode), DeviceError> {
        let device = &self.device;
        let mode = self.config.local_bits;
        let demoted = match mode {
            LocalBitsMode::Persistent => LocalBitsMode::On,
            other => other,
        };
        if !self.config.fused {
            return Ok((None, mode));
        }
        let n_core = keep.iter().filter(|&&kept| kept).count();
        let wanted = n_core > 0
            && match mode {
                LocalBitsMode::Persistent => true,
                LocalBitsMode::Auto => {
                    let footprint = CoreBitmap::footprint_for(n_core, graph.num_vertices());
                    let budget = device.memory().capacity();
                    footprint <= (16 << 20).min(budget / 4)
                }
                LocalBitsMode::On | LocalBitsMode::Off => false,
            };
        if !wanted {
            // A forced-persistent solve with nothing surviving setup still
            // degrades to the per-level tier so the (empty) search stays
            // well-defined.
            return Ok((None, if n_core == 0 { demoted } else { mode }));
        }
        let footprint = CoreBitmap::footprint_for(n_core, graph.num_vertices());
        let built = device
            .memory()
            .try_charge(footprint)
            .map_err(DeviceError::from)
            .and_then(|guard| Ok((CoreBitmap::try_build(device.exec(), graph, keep)?, guard)));
        match built {
            Ok((bitmap, guard)) => Ok((Some((bitmap, guard)), mode)),
            Err(DeviceError::Cancelled(cancelled)) => Err(DeviceError::Cancelled(cancelled)),
            Err(err) => {
                // Recovery ladder, rung zero: a fault (or real OOM) while
                // building the solve-lifetime bitmap drops the whole solve
                // to the per-level tier — bit-identical output, only the
                // probe tally moves from `persistent_probes` back to
                // per-level bitmaps or scalar queries.
                if err.is_injected() {
                    if let Some(injector) = injector {
                        injector.note_bitmap_fallback(&err);
                    }
                    let tracer = device.exec().tracer();
                    if tracer.is_enabled() {
                        tracer
                            .instant("fault_core_bitmap_fallback", &[("bytes", footprint as i64)]);
                    }
                }
                Ok((None, demoted))
            }
        }
    }

    /// Builds the configured edge-membership oracle, charging any extra
    /// footprint (bitset matrix, hash table) against the device budget for
    /// the duration of the expansion.
    fn build_oracle<'g>(&self, graph: &'g Csr) -> Result<BuiltOracle<'g>, DeviceOom> {
        let kind = match self.config.edge_index {
            EdgeIndexKind::Auto => {
                let n = graph.num_vertices();
                let bitset_bytes = n * n.div_ceil(64) * 8;
                let budget = self.device.memory().capacity();
                if n > 0 && bitset_bytes <= (16 << 20).min(budget / 4) {
                    EdgeIndexKind::Bitset
                } else {
                    EdgeIndexKind::BinarySearch
                }
            }
            other => other,
        };
        // Charge *before* building: the footprints are computable from the
        // graph's shape alone, so an over-budget oracle fails fast with
        // DeviceOom instead of first materialising the full structure.
        Ok(match kind {
            EdgeIndexKind::BinarySearch | EdgeIndexKind::Auto => BuiltOracle::Csr(graph),
            EdgeIndexKind::Bitset => {
                let guard = self
                    .device
                    .memory()
                    .try_charge(BitMatrix::footprint_for(graph.num_vertices()))?;
                BuiltOracle::Bits(BitMatrix::build(self.device.exec(), graph), guard)
            }
            EdgeIndexKind::Hash => {
                let guard = self
                    .device
                    .memory()
                    .try_charge(HashAdjacency::footprint_for(graph.num_edges()))?;
                BuiltOracle::Hash(HashAdjacency::build(graph), guard)
            }
        })
    }

    /// Per-vertex pruning upper-bound basis: core numbers when the heuristic
    /// computed them, vertex degrees otherwise (§II-B2).
    fn pruning_thresholds(&self, graph: &Csr, heuristic: &HeuristicResult) -> Vec<u32> {
        heuristic
            .core_numbers
            .clone()
            .unwrap_or_else(|| graph.degrees())
    }
}

/// The solver's edge oracle: either a borrow of the resident CSR or an
/// auxiliary structure charged against the device budget.
enum BuiltOracle<'g> {
    Csr(&'g Csr),
    // The guards hold the structures' device-memory charges until the
    // expansion finishes.
    Bits(BitMatrix, #[allow(dead_code)] gmc_dpp::MemoryGuard),
    Hash(HashAdjacency, #[allow(dead_code)] gmc_dpp::MemoryGuard),
}

impl EdgeOracle for BuiltOracle<'_> {
    #[inline]
    fn connected(&self, u: u32, v: u32) -> bool {
        match self {
            BuiltOracle::Csr(g) => g.connected(u, v),
            BuiltOracle::Bits(b, _) => b.connected(u, v),
            BuiltOracle::Hash(h, _) => h.connected(u, v),
        }
    }

    fn footprint_bytes(&self) -> usize {
        match self {
            BuiltOracle::Csr(g) => g.footprint_bytes(),
            BuiltOracle::Bits(b, _) => b.footprint_bytes(),
            BuiltOracle::Hash(h, _) => h.footprint_bytes(),
        }
    }
}

/// Runs only the heuristic + setup phases and reports the pruning counters,
/// without expanding the search. Used by the experiment harness to measure
/// pruning quality (paper Fig. 5b) even on datasets whose full search would
/// exceed memory.
pub fn preview_setup(
    device: &Device,
    graph: &Csr,
    config: &SolverConfig,
) -> Result<(u32, SetupStats), SolveError> {
    let heuristic = run_heuristic(device, graph, config.heuristic, config.heuristic_seeds)?;
    let thresholds = heuristic
        .core_numbers
        .clone()
        .unwrap_or_else(|| graph.degrees());
    let setup = setup::build_two_clique_list(
        device.exec(),
        graph,
        heuristic.lower_bound(),
        &thresholds,
        config.orientation,
        config.candidate_order,
        config.sublist_bound,
    );
    Ok((heuristic.lower_bound(), setup.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_graph::generators;

    fn solver() -> MaxCliqueSolver {
        MaxCliqueSolver::new(Device::unlimited())
    }

    #[test]
    fn quickstart_example() {
        let graph = Csr::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (2, 4),
                (2, 5),
            ],
        );
        let result = solver().solve(&graph).unwrap();
        assert_eq!(result.clique_number, 4);
        assert_eq!(result.cliques, vec![vec![2, 3, 4, 5]]);
        assert!(result.complete_enumeration);
        assert_eq!(result.multiplicity(), 1);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = Csr::empty(0);
        let r = solver().solve(&empty).unwrap();
        assert_eq!(r.clique_number, 0);
        assert!(r.cliques.is_empty());

        let isolated = Csr::empty(3);
        let r = solver().solve(&isolated).unwrap();
        assert_eq!(r.clique_number, 1);
        assert_eq!(r.cliques, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn single_edge() {
        let g = Csr::from_edges(2, &[(0, 1)]);
        let r = solver().solve(&g).unwrap();
        assert_eq!(r.clique_number, 2);
        assert_eq!(r.cliques, vec![vec![0, 1]]);
    }

    #[test]
    fn all_heuristics_agree_on_result() {
        let g = generators::gnp(80, 0.15, 21);
        let baseline = solver().heuristic(HeuristicKind::None).solve(&g).unwrap();
        for kind in HeuristicKind::all() {
            let r = solver().heuristic(kind).solve(&g).unwrap();
            assert_eq!(r.clique_number, baseline.clique_number, "{kind}");
            assert_eq!(r.cliques, baseline.cliques, "{kind}");
            assert!(r.stats.lower_bound <= r.clique_number, "{kind}: ω̄ > ω");
        }
    }

    #[test]
    fn candidate_orders_agree() {
        let g = generators::gnp(70, 0.2, 23);
        let a = solver()
            .candidate_order(CandidateOrder::Index)
            .solve(&g)
            .unwrap();
        let b = solver()
            .candidate_order(CandidateOrder::DegreeAscending)
            .solve(&g)
            .unwrap();
        assert_eq!(a.cliques, b.cliques);
    }

    #[test]
    fn windowed_enumerate_matches_full() {
        let g = generators::gnp(60, 0.2, 25);
        let full = solver().solve(&g).unwrap();
        let windowed = solver()
            .windowed(WindowConfig {
                size: 8,
                ordering: WindowOrdering::DegreeAscending,
                enumerate_all: true,
                ..WindowConfig::default()
            })
            .solve(&g)
            .unwrap();
        assert_eq!(windowed.clique_number, full.clique_number);
        assert_eq!(windowed.cliques, full.cliques);
        assert!(windowed.complete_enumeration);
        assert!(windowed.stats.window.unwrap().num_windows > 1);
    }

    #[test]
    fn windowed_find_one_returns_witness() {
        let g = generators::gnp(60, 0.2, 27);
        let full = solver().solve(&g).unwrap();
        let windowed = solver()
            .windowed(WindowConfig::with_size(16))
            .solve(&g)
            .unwrap();
        assert_eq!(windowed.clique_number, full.clique_number);
        assert!(!windowed.complete_enumeration);
        assert_eq!(windowed.cliques.len(), 1);
        assert!(full.cliques.contains(&windowed.cliques[0]));
    }

    #[test]
    fn oom_is_reported_not_wrong() {
        let g = generators::gnp(100, 0.4, 29);
        let device = Device::with_memory_budget(2048);
        let result = MaxCliqueSolver::new(device)
            .heuristic(HeuristicKind::None)
            .solve(&g);
        assert!(matches!(result, Err(SolveError::DeviceOom(_))));
    }

    #[test]
    fn windowing_rescues_oom() {
        // A budget that OOMs the full BFS but fits one window at a time.
        let g = generators::gnp(120, 0.25, 31);
        let device = Device::with_memory_budget(24 * 1024);
        let full = MaxCliqueSolver::new(device.clone())
            .heuristic(HeuristicKind::None)
            .solve(&g);
        if full.is_ok() {
            // Budget calibration can drift with generator tweaks; the
            // windowed run must then agree instead.
            return;
        }
        let windowed = MaxCliqueSolver::new(device)
            .heuristic(HeuristicKind::None)
            .windowed(WindowConfig::with_size(64))
            .solve(&g)
            .expect("windowing should fit the budget");
        let reference = solver().solve(&g).unwrap();
        assert_eq!(windowed.clique_number, reference.clique_number);
    }

    #[test]
    fn stats_are_populated() {
        let g = generators::gnp(80, 0.15, 33);
        let r = solver().solve(&g).unwrap();
        let s = &r.stats;
        assert!(s.lower_bound >= 2);
        assert!(s.peak_device_bytes > 0);
        assert!(!s.level_entries.is_empty());
        // Default Auto mode resolves to the persistent core bitmap on a
        // graph this small, so the walk probes show up as avoided word
        // tests rather than oracle calls.
        assert!(s.oracle_queries + s.local_bits.probes_avoided > 0);
        assert!(s.launches.launches > 0);
        assert!(s.total_time >= s.expansion_time);
        assert_eq!(s.setup.total_oriented_edges, g.num_edges());
        assert!(s.pruning_fraction() >= 0.0 && s.pruning_fraction() <= 1.0);
    }

    #[test]
    fn all_edge_indexes_agree() {
        let g = generators::gnp(120, 0.15, 77);
        let reference = solver().solve(&g).unwrap();
        for kind in [
            EdgeIndexKind::BinarySearch,
            EdgeIndexKind::Bitset,
            EdgeIndexKind::Hash,
            EdgeIndexKind::Auto,
        ] {
            let r = solver().edge_index(kind).solve(&g).unwrap();
            assert_eq!(r.clique_number, reference.clique_number, "{kind:?}");
            assert_eq!(r.cliques, reference.cliques, "{kind:?}");
        }
    }

    #[test]
    fn bitset_oracle_charges_device_memory() {
        // n = 2048 → bitset is 2048 × 32 × 8 = 512 KiB; a budget below that
        // must OOM when the bitset is requested but succeed with the CSR.
        let g = generators::gnp(2048, 0.004, 79);
        let budget = 256 * 1024;
        let ok = MaxCliqueSolver::new(Device::with_memory_budget(budget))
            .edge_index(EdgeIndexKind::BinarySearch)
            .solve(&g);
        assert!(ok.is_ok());
        let oom = MaxCliqueSolver::new(Device::with_memory_budget(budget))
            .edge_index(EdgeIndexKind::Bitset)
            .solve(&g);
        assert!(matches!(oom, Err(SolveError::DeviceOom(_))));
    }

    #[test]
    fn auto_picks_bitset_only_when_it_fits() {
        // Tiny graph + roomy budget → Auto should behave like Bitset and
        // still agree with the reference.
        let g = generators::gnp(100, 0.2, 81);
        let r = solver().edge_index(EdgeIndexKind::Auto).solve(&g).unwrap();
        let reference = solver().solve(&g).unwrap();
        assert_eq!(r.cliques, reference.cliques);
    }

    #[test]
    fn polished_witness_preserves_enumeration_and_tightens_bound() {
        for seed in 0..4 {
            let base = generators::gnp(150, 0.06, 70 + seed);
            let (g, _) = gmc_graph::generators::plant_clique(&base, 9, 170 + seed);
            let plain = solver()
                .heuristic(HeuristicKind::SingleDegree)
                .solve(&g)
                .unwrap();
            let polished = solver()
                .heuristic(HeuristicKind::SingleDegree)
                .polish_witness(true)
                .solve(&g)
                .unwrap();
            assert_eq!(polished.clique_number, plain.clique_number, "seed {seed}");
            assert_eq!(polished.cliques, plain.cliques, "seed {seed}");
            assert!(
                polished.stats.lower_bound >= plain.stats.lower_bound,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn coloring_sublist_bound_preserves_enumeration() {
        for seed in 0..4 {
            let g = generators::gnp(80, 0.15, 90 + seed);
            let length = solver().solve(&g).unwrap();
            let coloring = solver()
                .sublist_bound(SublistBound::Coloring)
                .solve(&g)
                .unwrap();
            assert_eq!(coloring.clique_number, length.clique_number, "seed {seed}");
            assert_eq!(coloring.cliques, length.cliques, "seed {seed}");
            // The tighter bound never keeps more entries.
            assert!(
                coloring.stats.setup.initial_entries <= length.stats.setup.initial_entries,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fused_ablation_agrees_and_saves_queries() {
        let g = generators::gnp(90, 0.2, 41);
        let fused = solver().solve(&g).unwrap();
        let unfused = solver().fused(false).solve(&g).unwrap();
        assert_eq!(fused.clique_number, unfused.clique_number);
        assert_eq!(fused.cliques, unfused.cliques);
        assert_eq!(fused.stats.level_entries, unfused.stats.level_entries);
        // The fused pipeline replays recorded bits instead of re-walking;
        // with the default Auto mode the walk itself runs against the
        // persistent core bitmap, so its probes land in `probes_avoided`.
        let fused_probes = fused.stats.oracle_queries + fused.stats.local_bits.probes_avoided;
        assert!(fused_probes > 0);
        assert!(
            fused_probes < unfused.stats.oracle_queries,
            "fused {fused_probes} vs unfused {}",
            unfused.stats.oracle_queries
        );
        assert!(fused.stats.launches.fused_launches > 0);
        assert_eq!(unfused.stats.launches.fused_launches, 0);

        // The same ablation through the windowed search path.
        let windowed = |enabled: bool| {
            solver()
                .fused(enabled)
                .windowed(WindowConfig {
                    size: 16,
                    enumerate_all: true,
                    ..WindowConfig::default()
                })
                .solve(&g)
                .unwrap()
        };
        let (wf, wu) = (windowed(true), windowed(false));
        assert_eq!(wf.cliques, fused.cliques);
        assert_eq!(wu.cliques, fused.cliques);
        let (wfq, wuq) = (
            wf.stats.window.unwrap().oracle_queries,
            wu.stats.window.unwrap().oracle_queries,
        );
        assert_eq!(wf.stats.oracle_queries, wfq);
        let wf_probes = wfq + wf.stats.local_bits.probes_avoided;
        assert!(
            wf_probes > 0 && wf_probes < wuq,
            "windowed fused {wf_probes} vs unfused {wuq}"
        );
    }

    #[test]
    fn local_bits_ablation_agrees_and_reconciles() {
        let g = generators::gnp(90, 0.25, 43);
        let on = solver().local_bits(LocalBitsMode::On).solve(&g).unwrap();
        let off = solver().local_bits(LocalBitsMode::Off).solve(&g).unwrap();
        assert_eq!(on.clique_number, off.clique_number);
        assert_eq!(on.cliques, off.cliques);
        assert_eq!(on.stats.level_entries, off.stats.level_entries);
        // Bitmaps replace scalar probes one for one and say so exactly.
        assert_eq!(off.stats.local_bits, LocalBitsStats::default());
        assert!(on.stats.local_bits.rows_built > 0);
        assert_eq!(
            on.stats.oracle_queries + on.stats.local_bits.probes_avoided,
            off.stats.oracle_queries
        );

        // The same ablation through the windowed search path.
        let windowed = |mode: LocalBitsMode| {
            solver()
                .local_bits(mode)
                .windowed(WindowConfig {
                    size: 16,
                    enumerate_all: true,
                    ..WindowConfig::default()
                })
                .solve(&g)
                .unwrap()
        };
        let (won, woff) = (windowed(LocalBitsMode::On), windowed(LocalBitsMode::Off));
        assert_eq!(won.cliques, on.cliques);
        assert_eq!(woff.cliques, on.cliques);
        assert_eq!(
            won.stats.local_bits,
            won.stats.window.unwrap().local_bits,
            "solver stats mirror the window tally"
        );
        assert_eq!(
            won.stats.oracle_queries + won.stats.local_bits.probes_avoided,
            woff.stats.oracle_queries
        );
    }

    #[test]
    fn persistent_ablation_agrees_and_reconciles() {
        let g = generators::gnp(90, 0.25, 43);
        let per = solver()
            .local_bits(LocalBitsMode::Persistent)
            .solve(&g)
            .unwrap();
        let off = solver().local_bits(LocalBitsMode::Off).solve(&g).unwrap();
        assert_eq!(per.cliques, off.cliques);
        assert_eq!(per.stats.level_entries, off.stats.level_entries);
        // One bitmap for the whole solve: zero per-level builds, every
        // scalar probe answered by a word test, exact reconciliation.
        let lb = per.stats.local_bits;
        assert_eq!(lb.rows_built, 0);
        assert_eq!(lb.words_anded, 0);
        assert!(lb.persistent_bytes > 0);
        assert_eq!(lb.persistent_probes, lb.probes_avoided);
        assert_eq!(
            per.stats.oracle_queries + lb.probes_avoided,
            off.stats.oracle_queries
        );

        // The same tier through the windowed search path, including the
        // recursive child-level builds that would otherwise hit the oracle.
        let windowed = |mode: LocalBitsMode| {
            solver()
                .local_bits(mode)
                .windowed(WindowConfig {
                    size: 16,
                    enumerate_all: true,
                    max_depth: 4,
                    ..WindowConfig::default()
                })
                .solve(&g)
                .unwrap()
        };
        let (wper, woff) = (
            windowed(LocalBitsMode::Persistent),
            windowed(LocalBitsMode::Off),
        );
        assert_eq!(wper.cliques, per.cliques);
        assert_eq!(woff.cliques, per.cliques);
        let wlb = wper.stats.local_bits;
        assert_eq!(wlb.rows_built, 0);
        assert!(wlb.persistent_bytes > 0);
        assert_eq!(wlb.persistent_probes, wlb.probes_avoided);
        assert_eq!(
            wper.stats.local_bits,
            wper.stats.window.unwrap().local_bits,
            "solver stats mirror the window tally"
        );
        assert_eq!(
            wper.stats.oracle_queries + wlb.probes_avoided,
            woff.stats.oracle_queries
        );
    }

    #[test]
    fn deterministic_across_devices() {
        let g = generators::gnp(90, 0.12, 35);
        let a = MaxCliqueSolver::new(Device::new(1, usize::MAX))
            .solve(&g)
            .unwrap();
        let b = MaxCliqueSolver::new(Device::new(7, usize::MAX))
            .solve(&g)
            .unwrap();
        assert_eq!(a.clique_number, b.clique_number);
        assert_eq!(a.cliques, b.cliques);
    }

    #[test]
    fn permutation_invariance() {
        let g = generators::gnp(70, 0.18, 37);
        let base = solver().solve(&g).unwrap();
        let (shuffled, perm) = g.randomize_vertex_ids(99);
        let shuffled_result = solver().solve(&shuffled).unwrap();
        assert_eq!(shuffled_result.clique_number, base.clique_number);
        // Map the shuffled cliques back through the permutation.
        let mut mapped: Vec<Vec<u32>> = shuffled_result
            .cliques
            .iter()
            .map(|c| {
                let mut orig: Vec<u32> = c
                    .iter()
                    .map(|&v| perm.iter().position(|&p| p == v).unwrap() as u32)
                    .collect();
                orig.sort_unstable();
                orig
            })
            .collect();
        mapped.sort();
        assert_eq!(mapped, base.cliques);
    }
}
