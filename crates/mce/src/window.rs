//! The windowed search variant (paper §IV-E) and its recursive extension
//! (paper §V-C3).
//!
//! When the full breadth-first candidate set cannot fit in device memory,
//! the 2-clique list is split into windows of whole sublists and each window
//! is expanded to exhaustion on its own, so only one window's subtree is
//! ever resident. The lower bound improves between windows whenever a
//! better clique is found, tightening pruning for the remainder — the one
//! bound-improvement mechanism a breadth-first search otherwise lacks.
//!
//! Two result modes:
//! * **find-one** (the paper's): prune strictly against the incumbent, so
//!   each window only reports cliques *larger* than anything seen; returns a
//!   single maximum clique.
//! * **enumerate-all** (an extension): keep ties, so the union of window
//!   results is exactly the set of maximum cliques — valid because every
//!   clique lives entirely within the window holding its minimum vertex's
//!   sublist.
//!
//! With [`WindowConfig::max_depth`] > 1, *recursive windowing* — the
//! strategy the paper sketches as future work (§V-C3) — activates: a window
//! whose subtree still exceeds the budget is split at a sublist boundary,
//! and a single sublist too large for any window is re-windowed one search
//! level deeper (its candidate pairs become the 2-clique list of an induced
//! subproblem whose results carry the committed chain as a prefix).

use crate::arena::LevelArena;
use crate::bfs::{expand, LocalBitsStats};
use crate::config::{LocalBitsMode, WindowConfig, WindowOrdering};
use crate::setup::SetupOutput;
use gmc_cliquelist::CliqueLevel;
use gmc_dpp::{Device, DeviceError, FaultInjector, LaunchError, SharedSlice};
use gmc_graph::{CoreBitmap, Csr, EdgeOracle};
use std::sync::Mutex;

/// Counters from a windowed run, reported in [`SolveStats`].
///
/// [`SolveStats`]: crate::SolveStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Number of windows actually expanded (including retries after splits
    /// and windows of recursive subproblems).
    pub num_windows: usize,
    /// Configured nominal window size in entries.
    pub nominal_size: usize,
    /// Times a window improved on the incumbent clique size.
    pub bound_improvements: usize,
    /// Largest device footprint reached by any single window's subtree.
    pub peak_window_bytes: usize,
    /// OOM-driven binary splits of over-large windows (recursive mode).
    pub window_splits: usize,
    /// Times an over-large single sublist was re-windowed one level deeper
    /// (recursive mode).
    pub sublist_recursions: usize,
    /// Exact number of edge-oracle `connected` calls across all windows
    /// (expansion walks plus recursive child-level construction).
    pub oracle_queries: u64,
    /// Sublist-local bitmap fast-path counters summed over all windows.
    pub local_bits: LocalBitsStats,
    /// Window attempts retried after an injected fault (fault injection
    /// only; real OOM goes through `window_splits`).
    pub fault_retries: usize,
    /// Windows split in half after repeated injected faults (the bounded
    /// geometric backoff of the recovery ladder).
    pub fault_shrinks: usize,
    /// OS workers the concurrent window sweep ran with (largest sweep, when
    /// the fault ladder retried); `0` when the sweep was never concurrent.
    pub sweep_workers: usize,
    /// Windows drained by the busiest sweep worker, summed over sweeps —
    /// the window-level analogue of the launch-level
    /// "morsels claimed per worker" skew signal in
    /// [`gmc_dpp::ScheduleStats`].
    pub sweep_drained_max: usize,
    /// Total sweep-worker idle time: the gap between each worker's busy
    /// span and the sweep's wall clock, summed over workers and sweeps.
    /// Large values mean a few heavy windows serialised the sweep.
    pub sweep_idle_ns: u64,
}

pub(crate) struct WindowOutcome {
    pub cliques: Vec<Vec<u32>>,
    pub clique_size: usize,
    pub stats: WindowStats,
    /// True when the result enumerates every maximum clique.
    pub complete: bool,
}

/// Shared incumbent across windows and recursion levels.
struct Incumbent {
    enumerate: bool,
    min_enum_target: u32,
    best_size: usize,
    best_clique: Vec<u32>,
    collected: Vec<Vec<u32>>,
    collected_size: usize,
    improvements: usize,
}

impl Incumbent {
    fn new(enumerate: bool, min_enum_target: u32, witness: &[u32]) -> Self {
        Self {
            enumerate,
            min_enum_target,
            best_size: witness.len(),
            best_clique: witness.to_vec(),
            collected: Vec::new(),
            collected_size: 0,
            improvements: 0,
        }
    }

    /// The clique size a window must reach for its results to matter.
    fn target(&self) -> u32 {
        if self.enumerate {
            (self.collected_size as u32)
                .max(self.min_enum_target)
                .max(2)
        } else {
            (self.best_size as u32 + 1).max(2)
        }
    }

    /// Integrates one window's result: `cliques` of `size` vertices each.
    fn offer(&mut self, cliques: Vec<Vec<u32>>, size: usize) {
        if cliques.is_empty() || size == 0 {
            return;
        }
        if self.enumerate {
            match size.cmp(&self.collected_size) {
                std::cmp::Ordering::Greater => {
                    if size > self.best_size {
                        self.improvements += 1;
                    }
                    self.collected_size = size;
                    self.collected = cliques;
                }
                std::cmp::Ordering::Equal => self.collected.extend(cliques),
                std::cmp::Ordering::Less => {}
            }
            self.best_size = self.best_size.max(self.collected_size);
        } else if size > self.best_size {
            self.improvements += 1;
            self.best_size = size;
            self.best_clique = cliques.into_iter().next().expect("non-empty");
        }
    }
}

/// Immutable context threaded through the recursion.
struct SearchCtx<'a, O: EdgeOracle + ?Sized> {
    device: &'a Device,
    graph: &'a Csr,
    oracle: &'a O,
    config: &'a WindowConfig,
    early_exit: bool,
    fused: bool,
    local_bits: LocalBitsMode,
    /// Solve-lifetime core adjacency bitmap (the persistent tier, built
    /// once by the solver before the sweep); every window and recursive
    /// child-level build probes it instead of the edge oracle.
    persistent: Option<&'a CoreBitmap>,
    /// Armed injector (shares counters with the device's copy); `None` in
    /// fault-free runs.
    injector: Option<FaultInjector>,
    /// Per-window retry cap from the fault plan (0 when fault-free).
    max_retries: u32,
}

/// Reorders whole sublists of the 2-clique list according to `ordering`.
/// Fallible because the boundary scan is a launch the fault injector may
/// fail; no work is performed on `Err`.
pub(crate) fn reorder_sublists(
    exec: &gmc_dpp::Executor,
    graph: &Csr,
    vertex_id: &[u32],
    sublist_id: &[u32],
    ordering: WindowOrdering,
) -> Result<(Vec<u32>, Vec<u32>), LaunchError> {
    // Identify sublist ranges: runs of equal sublist_id (the GPU version is
    // a run-length-encode kernel).
    let starts = gmc_dpp::try_run_starts(exec, sublist_id)?;
    let mut ranges: Vec<(usize, usize)> = starts
        .iter()
        .enumerate()
        .map(|(r, &s)| (s, starts.get(r + 1).copied().unwrap_or(sublist_id.len())))
        .collect();
    match ordering {
        WindowOrdering::Index => {}
        WindowOrdering::DegreeAscending => {
            ranges.sort_by_key(|&(s, _)| (graph.degree(sublist_id[s]), sublist_id[s]));
        }
        WindowOrdering::DegreeDescending => {
            ranges.sort_by_key(|&(s, _)| {
                (
                    std::cmp::Reverse(graph.degree(sublist_id[s])),
                    sublist_id[s],
                )
            });
        }
        WindowOrdering::Random(seed) => {
            gmc_dpp::Rng::seed_from_u64(seed).shuffle(&mut ranges);
        }
    }
    let mut new_vertex = Vec::with_capacity(vertex_id.len());
    let mut new_sublist = Vec::with_capacity(sublist_id.len());
    for (s, e) in ranges {
        new_vertex.extend_from_slice(&vertex_id[s..e]);
        new_sublist.extend_from_slice(&sublist_id[s..e]);
    }
    Ok((new_vertex, new_sublist))
}

/// Snaps `nominal_end` to the nearest sublist boundary at or below it; if
/// that would make the window empty, extends to the end of the sublist
/// containing `start` instead (a window always advances).
fn window_end(sublist_id: &[u32], start: usize, nominal_end: usize) -> usize {
    let len = sublist_id.len();
    if nominal_end >= len {
        return len;
    }
    let mut end = nominal_end;
    while end > start && sublist_id[end - 1] == sublist_id[end] {
        end -= 1;
    }
    if end == start {
        // The sublist at `start` is longer than the window: take all of it.
        end = start + 1;
        while end < len && sublist_id[end] == sublist_id[end - 1] {
            end += 1;
        }
    }
    end
}

/// Runs the windowed search over a prepared 2-clique list.
///
/// `witness` is the heuristic clique (the initial incumbent in find-one
/// mode); `min_enum_target` is the enumeration pruning bound `max(ω̄, 2)`.
/// `injector` is the armed fault injector, if any; injected faults inside a
/// window are retried (and the window shrunk) here, while faults escaping
/// this function are the caller's outer retry loop to handle.
#[allow(clippy::too_many_arguments)] // mirrors the solve phases 1:1
pub(crate) fn windowed_search<O: EdgeOracle + ?Sized>(
    device: &Device,
    graph: &Csr,
    oracle: &O,
    setup: &SetupOutput,
    config: &WindowConfig,
    witness: &[u32],
    min_enum_target: u32,
    early_exit: bool,
    fused: bool,
    local_bits: LocalBitsMode,
    persistent: Option<&CoreBitmap>,
    injector: Option<&FaultInjector>,
) -> Result<WindowOutcome, DeviceError> {
    let tracer = device.exec().tracer();
    let mut search_span = tracer.is_enabled().then(|| {
        tracer.span_with(
            "windowed_search",
            &[
                ("entries", setup.vertex_id.len() as i64),
                ("parallel_windows", config.parallel_windows as i64),
            ],
        )
    });
    let (vertex_id, sublist_id) = reorder_sublists(
        device.exec(),
        graph,
        &setup.vertex_id,
        &setup.sublist_id,
        config.ordering,
    )?;

    let stats = WindowStats {
        nominal_size: config.size,
        ..WindowStats::default()
    };
    // In find-one mode the heuristic witness seeds the incumbent; in
    // enumerate mode the witness is *not* pre-collected (it will be re-found
    // inside its own window, avoiding duplicates).
    let incumbent = Mutex::new(Incumbent::new(
        config.enumerate_all,
        min_enum_target,
        witness,
    ));
    let stats_lock = Mutex::new(stats);
    let ctx = SearchCtx {
        device,
        graph,
        oracle,
        config,
        early_exit,
        fused,
        local_bits,
        persistent,
        injector: injector.cloned(),
        max_retries: injector.map_or(0, |inj| inj.plan().max_retries),
    };
    if config.parallel_windows <= 1 {
        // One arena serves every window of the sweep: level scratch grown by
        // the first window is recycled by all the rest.
        let mut arena = LevelArena::new();
        search_slice(
            &ctx,
            &vertex_id,
            &sublist_id,
            &[],
            0,
            &incumbent,
            &stats_lock,
            &mut arena,
        )?;
    } else {
        parallel_window_sweep(&ctx, &vertex_id, &sublist_id, &incumbent, &stats_lock)?;
    }

    let mut stats = stats_lock.into_inner().expect("stats lock poisoned");
    let incumbent = incumbent.into_inner().expect("incumbent lock poisoned");
    stats.bound_improvements = incumbent.improvements;
    if let Some(span) = search_span.as_mut() {
        span.arg("num_windows", stats.num_windows as i64);
        span.arg("bound_improvements", stats.bound_improvements as i64);
    }
    drop(search_span);
    if config.enumerate_all {
        Ok(WindowOutcome {
            clique_size: incumbent.collected_size,
            cliques: incumbent.collected,
            stats,
            complete: true,
        })
    } else {
        let cliques = if incumbent.best_clique.is_empty() {
            Vec::new()
        } else {
            vec![incumbent.best_clique]
        };
        Ok(WindowOutcome {
            clique_size: incumbent.best_size,
            cliques,
            stats,
            complete: false,
        })
    }
}

/// Window budget (in estimated subtree entries) for automatic sizing: a
/// quarter of the device capacity at 8 bytes per entry.
fn auto_budget_entries(device: &Device) -> usize {
    (device.memory().capacity() / 8 / 4).max(64)
}

/// Grows a window sublist-by-sublist while the Moon–Moser bound on its
/// worst-case subtree stays within the budget (Wei et al.'s sizing rule).
/// Always takes at least one whole sublist.
fn auto_window_end(sublist_id: &[u32], start: usize, budget_entries: usize) -> usize {
    let len = sublist_id.len();
    let mut end = start;
    let mut estimate = 0usize;
    while end < len {
        let sublist_start = end;
        let mut sublist_end = end + 1;
        while sublist_end < len && sublist_id[sublist_end] == sublist_id[sublist_start] {
            sublist_end += 1;
        }
        let bound = gmc_graph::bounds::moon_moser_bound(sublist_end - sublist_start);
        estimate = estimate.saturating_add(bound);
        if end > start && estimate > budget_entries {
            break; // this sublist goes to the next window
        }
        end = sublist_end;
        if estimate > budget_entries {
            break;
        }
    }
    end
}

/// Cuts `vertex_id`/`sublist_id` into windows and processes each.
#[allow(clippy::too_many_arguments)] // one slot per recursion invariant
fn search_slice<O: EdgeOracle + ?Sized>(
    ctx: &SearchCtx<'_, O>,
    vertex_id: &[u32],
    sublist_id: &[u32],
    prefix: &[u32],
    depth: usize,
    incumbent: &Mutex<Incumbent>,
    stats: &Mutex<WindowStats>,
    arena: &mut LevelArena,
) -> Result<(), DeviceError> {
    let mut start = 0usize;
    while start < vertex_id.len() {
        let end = if ctx.config.size == 0 {
            auto_window_end(sublist_id, start, auto_budget_entries(ctx.device))
        } else {
            window_end(sublist_id, start, start + ctx.config.size)
        };
        process_window(
            ctx,
            &vertex_id[start..end],
            &sublist_id[start..end],
            prefix,
            depth,
            incumbent,
            stats,
            arena,
        )?;
        start = end;
    }
    Ok(())
}

/// Expands one window. Injected faults are retried in place (and the window
/// halved after repeated faults — bounded geometric backoff) up to the fault
/// plan's retry cap; on real OOM, splits or recurses when recursive
/// windowing is enabled and depth remains.
#[allow(clippy::too_many_arguments)] // one slot per recursion invariant
fn process_window<O: EdgeOracle + ?Sized>(
    ctx: &SearchCtx<'_, O>,
    vertex_id: &[u32],
    sublist_id: &[u32],
    prefix: &[u32],
    depth: usize,
    incumbent: &Mutex<Incumbent>,
    stats: &Mutex<WindowStats>,
    arena: &mut LevelArena,
) -> Result<(), DeviceError> {
    if vertex_id.is_empty() {
        return Ok(());
    }
    // Window boundaries are launch boundaries: a tripped token stops the
    // sweep here before the window charges anything.
    ctx.device.exec().check_cancelled()?;
    // Entries of this window extend `prefix`, so the local pruning target
    // shrinks by the committed chain length. (Concurrent windows may read a
    // slightly stale target; staleness only weakens pruning, never
    // correctness. Fault retries reuse the attempt's target so a recovered
    // window reports exactly what the fault-free run would have.)
    let target_local = incumbent
        .lock()
        .expect("incumbent lock poisoned")
        .target()
        .saturating_sub(prefix.len() as u32)
        .max(2);
    let tracer = ctx.device.exec().tracer();
    let mut window_span = tracer.is_enabled().then(|| {
        tracer.span_with(
            "window",
            &[
                ("entries", vertex_id.len() as i64),
                ("depth", depth as i64),
                ("target", i64::from(target_local)),
            ],
        )
    });
    let mut fault_attempts = 0u32;
    let err = loop {
        let live_base = ctx.device.memory().live();
        ctx.device.memory().reset_peak();
        let attempt =
            CliqueLevel::from_vecs(ctx.device.memory(), vertex_id.to_vec(), sublist_id.to_vec())
                .map_err(DeviceError::from)
                .and_then(|level0| {
                    expand(
                        ctx.device,
                        ctx.graph,
                        ctx.oracle,
                        level0,
                        target_local,
                        ctx.early_exit,
                        ctx.fused,
                        ctx.local_bits,
                        ctx.persistent,
                        arena,
                    )
                });
        {
            let mut stats = stats.lock().expect("stats lock poisoned");
            stats.num_windows += 1;
            stats.peak_window_bytes = stats
                .peak_window_bytes
                .max(ctx.device.memory().peak().saturating_sub(live_base));
            if let Ok(outcome) = &attempt {
                stats.oracle_queries += outcome.oracle_queries;
                stats.local_bits.accumulate(outcome.local_bits);
            }
        }

        match attempt {
            Ok(outcome) => {
                if let Some(span) = window_span.as_mut() {
                    span.arg("found", outcome.clique_size as i64);
                }
                if outcome.clique_size > 0 {
                    let size = outcome.clique_size + prefix.len();
                    let cliques: Vec<Vec<u32>> = outcome
                        .cliques
                        .into_iter()
                        .map(|c| {
                            let mut full = prefix.to_vec();
                            full.extend(c);
                            full
                        })
                        .collect();
                    incumbent
                        .lock()
                        .expect("incumbent lock poisoned")
                        .offer(cliques, size);
                }
                return Ok(());
            }
            Err(err) => {
                let Some(injector) = ctx.injector.as_ref().filter(|_| err.is_injected()) else {
                    // Real OOM: retries after a split (or the deeper
                    // re-windowing below) nest inside this window's span.
                    if let Some(span) = window_span.as_mut() {
                        span.arg("oom", 1);
                    }
                    break err;
                };
                fault_attempts += 1;
                if fault_attempts > ctx.max_retries {
                    // Past the cap the fault is propagated, not recovered;
                    // the solver's outer loop turns it into a typed error.
                    return Err(err);
                }
                // `expand` released its arena charges on the way out; make
                // the window's footprint provably zero before retrying.
                arena.release_charges();
                injector.note_recovery(&err);
                stats.lock().expect("stats lock poisoned").fault_retries += 1;
                if tracer.is_enabled() {
                    tracer.instant(
                        "fault_window_retry",
                        &[
                            ("attempt", i64::from(fault_attempts)),
                            ("entries", vertex_id.len() as i64),
                        ],
                    );
                }
                let num_sublists = 1 + sublist_id.windows(2).filter(|w| w[0] != w[1]).count();
                if fault_attempts >= 2 && num_sublists > 1 {
                    // Repeated faults: halve the window at a sublist
                    // boundary. Each half restarts its own retry budget, and
                    // single-sublist windows can shrink no further, so the
                    // backoff is geometric and bounded.
                    injector.note_window_shrink();
                    stats.lock().expect("stats lock poisoned").fault_shrinks += 1;
                    if tracer.is_enabled() {
                        tracer.instant(
                            "fault_window_shrink",
                            &[("entries", vertex_id.len() as i64)],
                        );
                    }
                    let mid = window_end(sublist_id, 0, vertex_id.len() / 2)
                        .clamp(1, vertex_id.len() - 1);
                    drop(window_span);
                    process_window(
                        ctx,
                        &vertex_id[..mid],
                        &sublist_id[..mid],
                        prefix,
                        depth,
                        incumbent,
                        stats,
                        arena,
                    )?;
                    return process_window(
                        ctx,
                        &vertex_id[mid..],
                        &sublist_id[mid..],
                        prefix,
                        depth,
                        incumbent,
                        stats,
                        arena,
                    );
                }
            }
        }
    };

    // Cancellation propagates as-is: splitting a cancelled window would
    // only spawn halves that cancel at their own first poll.
    if matches!(err, DeviceError::Cancelled(_)) {
        return Err(err);
    }
    // The paper's windowing propagates OOM; the recursive extension keeps
    // subdividing while depth remains.
    if ctx.config.max_depth <= 1 {
        return Err(err);
    }
    let num_sublists = 1 + sublist_id.windows(2).filter(|w| w[0] != w[1]).count();
    if num_sublists > 1 {
        // Binary split at the sublist boundary nearest the middle.
        stats.lock().expect("stats lock poisoned").window_splits += 1;
        let mid = window_end(sublist_id, 0, vertex_id.len() / 2).clamp(1, vertex_id.len() - 1);
        process_window(
            ctx,
            &vertex_id[..mid],
            &sublist_id[..mid],
            prefix,
            depth,
            incumbent,
            stats,
            arena,
        )?;
        return process_window(
            ctx,
            &vertex_id[mid..],
            &sublist_id[mid..],
            prefix,
            depth,
            incumbent,
            stats,
            arena,
        );
    }
    if depth + 1 >= ctx.config.max_depth {
        return Err(err);
    }

    // A single sublist whose subtree exceeds the budget: re-window one
    // level deeper. Its candidate pairs form the 2-clique list of the
    // induced subproblem, with the source vertex joining the prefix.
    stats
        .lock()
        .expect("stats lock poisoned")
        .sublist_recursions += 1;
    let source = sublist_id[0];

    // The (prefix, source, candidate) 2-level cliques are not represented in
    // the subproblem (its cliques have ≥ 2 vertices = parent ≥ 3); offer
    // them here in case ω is exactly `|prefix| + 2`.
    {
        let mut incumbent = incumbent.lock().expect("incumbent lock poisoned");
        if (prefix.len() + 2) as u32 >= incumbent.target() {
            let pairs: Vec<Vec<u32>> = vertex_id
                .iter()
                .map(|&c| {
                    let mut clique = prefix.to_vec();
                    clique.push(source);
                    clique.push(c);
                    clique
                })
                .collect();
            incumbent.offer(pairs, prefix.len() + 2);
        }
    }

    let (child_vertex, child_sublist) = build_child_level(ctx, vertex_id)?;
    // Both child-level kernels walk every ordered candidate pair: exactly
    // len·(len−1) adjacency probes. With the persistent bitmap those are
    // word tests, not oracle calls, so the tally moves to the avoided
    // columns and the `queries + avoided == scalar` invariant still holds.
    {
        let pair_probes = (vertex_id.len() * (vertex_id.len() - 1)) as u64;
        let mut stats = stats.lock().expect("stats lock poisoned");
        if ctx.persistent.is_some() {
            stats.local_bits.probes_avoided += pair_probes;
            stats.local_bits.persistent_probes += pair_probes;
        } else {
            stats.oracle_queries += pair_probes;
        }
    }
    let mut child_prefix = prefix.to_vec();
    child_prefix.push(source);
    search_slice(
        ctx,
        &child_vertex,
        &child_sublist,
        &child_prefix,
        depth + 1,
        incumbent,
        stats,
        arena,
    )
}

/// Concurrent top-level window sweep (paper §V-C3's "multiple windows ...
/// simultaneously by different thread blocks"): the windows are cut up
/// front, then `parallel_windows` OS threads drain them from a shared
/// cursor, all offering into one locked incumbent. Recursion inside any
/// window stays sequential within its thread.
fn parallel_window_sweep<O: EdgeOracle + ?Sized>(
    ctx: &SearchCtx<'_, O>,
    vertex_id: &[u32],
    sublist_id: &[u32],
    incumbent: &Mutex<Incumbent>,
    stats: &Mutex<WindowStats>,
) -> Result<(), DeviceError> {
    // Cut all top-level windows first.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    while start < vertex_id.len() {
        let end = if ctx.config.size == 0 {
            auto_window_end(sublist_id, start, auto_budget_entries(ctx.device))
        } else {
            window_end(sublist_id, start, start + ctx.config.size)
        };
        ranges.push((start, end));
        start = end;
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let workers = ctx.config.parallel_windows.min(ranges.len()).max(1);
    let first_error: Mutex<Option<DeviceError>> = Mutex::new(None);
    // Per-worker balance slots (windows drained, busy nanoseconds): each
    // worker writes only its own pair, read after the scope joins.
    use std::sync::atomic::{AtomicU64, Ordering};
    let drained: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let sweep_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let cursor = &cursor;
            let ranges = &ranges;
            let first_error = &first_error;
            let drained = &drained;
            let busy_ns = &busy_ns;
            scope.spawn(move || {
                let began = std::time::Instant::now();
                let mut windows_drained = 0u64;
                // Arenas are not shared across threads: each worker recycles
                // its own scratch over the windows it drains.
                let mut arena = LevelArena::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, e)) = ranges.get(i) else { break };
                    windows_drained += 1;
                    let outcome = process_window(
                        ctx,
                        &vertex_id[s..e],
                        &sublist_id[s..e],
                        &[],
                        0,
                        incumbent,
                        stats,
                        &mut arena,
                    );
                    if let Err(err) = outcome {
                        let mut slot = first_error.lock().expect("error lock poisoned");
                        if slot.is_none() {
                            *slot = Some(err);
                        } else if err.is_injected() {
                            // A sibling error already escapes this sweep; an
                            // injected fault absorbed here is recovered by
                            // the caller's retry of the whole sweep, so it
                            // must be tallied exactly once — now.
                            if let Some(inj) = ctx.injector.as_ref() {
                                inj.note_recovery(&err);
                            }
                        }
                        break;
                    }
                }
                drained[w].store(windows_drained, Ordering::Relaxed);
                busy_ns[w].store(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    // Window-level imbalance: the busiest worker's drain count and the gap
    // between each worker's busy span and the sweep wall clock.
    let wall_ns = sweep_start.elapsed().as_nanos() as u64;
    let drained_max = drained
        .iter()
        .map(|d| d.load(Ordering::Relaxed))
        .max()
        .unwrap_or(0);
    let idle_ns: u64 = busy_ns
        .iter()
        .map(|b| wall_ns.saturating_sub(b.load(Ordering::Relaxed)))
        .sum();
    {
        let mut st = stats.lock().expect("stats lock poisoned");
        st.sweep_workers = st.sweep_workers.max(workers);
        st.sweep_drained_max += drained_max as usize;
        st.sweep_idle_ns += idle_ns;
    }
    let tracer = ctx.device.exec().tracer();
    if tracer.is_enabled() {
        tracer.instant(
            "window_sweep_balance",
            &[
                ("workers", workers as i64),
                ("windows", ranges.len() as i64),
                ("drained_max", drained_max as i64),
                ("idle_ns", idle_ns as i64),
            ],
        );
        tracer.counter("window_sweep_idle_ns", idle_ns as i64);
    }
    match first_error.into_inner().expect("error lock poisoned") {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

/// Builds the next-level candidate arrays for one over-large sublist: an
/// entry `(c_i, c_j)` for every ordered pair of adjacent candidates. The
/// sublist's candidate order carries over, so each deeper clique still has a
/// unique monotone path.
fn build_child_level<O: EdgeOracle + ?Sized>(
    ctx: &SearchCtx<'_, O>,
    candidates: &[u32],
) -> Result<(Vec<u32>, Vec<u32>), LaunchError> {
    let exec = ctx.device.exec();
    let len = candidates.len();
    let oracle = ctx.oracle;
    // Every candidate descends from the setup list, so each survives core
    // pruning and the persistent bitmap (when built) covers all pairs.
    let adjacent = |a: u32, b: u32| match ctx.persistent {
        Some(core) => core.probe(a, b),
        None => oracle.connected(a, b),
    };
    let counts: Vec<usize> = exec.try_map_indexed_named("window_count_sublists", len, |i| {
        candidates[i + 1..]
            .iter()
            .filter(|&&c| adjacent(candidates[i], c))
            .count()
    })?;
    let (offsets, total) = gmc_dpp::try_exclusive_scan(exec, &counts)?;
    let mut child_vertex = vec![0u32; total];
    let mut child_sublist = vec![0u32; total];
    {
        let vertex_shared = SharedSlice::new(&mut child_vertex);
        let sublist_shared = SharedSlice::new(&mut child_sublist);
        exec.try_for_each_indexed_named("window_expand_sublists", len, |i| {
            let mut cursor = offsets[i];
            for &c in &candidates[i + 1..] {
                if adjacent(candidates[i], c) {
                    // SAFETY: each source writes its own disjoint span.
                    unsafe {
                        vertex_shared.write(cursor, c);
                        sublist_shared.write(cursor, candidates[i]);
                    }
                    cursor += 1;
                }
            }
        })?;
    }
    Ok((child_vertex, child_sublist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidateOrder;
    use crate::setup::build_two_clique_list;
    use gmc_graph::generators;

    fn prepared(graph: &Csr, lower: u32) -> SetupOutput {
        let device = Device::unlimited();
        build_two_clique_list(
            device.exec(),
            graph,
            lower,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        )
    }

    fn search(
        device: &Device,
        graph: &Csr,
        setup: &SetupOutput,
        cfg: &WindowConfig,
        witness: &[u32],
        target: u32,
    ) -> Result<WindowOutcome, DeviceError> {
        windowed_search(
            device,
            graph,
            graph,
            setup,
            cfg,
            witness,
            target,
            false,
            true,
            LocalBitsMode::Auto,
            None,
            None,
        )
    }

    /// Reference via the *unfused* pipeline, so windowed (fused) runs are
    /// cross-validated against the paper-literal baseline.
    fn reference_expand(graph: &Csr, setup: &SetupOutput) -> crate::bfs::ExpansionOutcome {
        let device = Device::unlimited();
        let level0 = CliqueLevel::from_vecs(
            device.memory(),
            setup.vertex_id.clone(),
            setup.sublist_id.clone(),
        )
        .unwrap();
        let mut arena = LevelArena::new();
        expand(
            &device,
            graph,
            graph,
            level0,
            2,
            false,
            false,
            LocalBitsMode::Off,
            None,
            &mut arena,
        )
        .unwrap()
    }

    fn normalize(mut cs: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut cs {
            c.sort_unstable();
        }
        cs.sort();
        cs
    }

    #[test]
    fn window_end_snaps_to_boundaries() {
        let sublists = [0u32, 0, 0, 1, 1, 2];
        // Cutting inside the first run snaps left to `start`, then the whole
        // sublist is taken so the window advances.
        assert_eq!(window_end(&sublists, 0, 2), 3);
        assert_eq!(window_end(&sublists, 0, 3), 3);
        assert_eq!(window_end(&sublists, 0, 4), 3);
        assert_eq!(window_end(&sublists, 0, 5), 5);
        assert_eq!(window_end(&sublists, 3, 4), 5); // run {1,1} longer than cut
        assert_eq!(window_end(&sublists, 0, 99), 6);
    }

    #[test]
    fn oversized_sublist_is_taken_whole() {
        let sublists = [7u32, 7, 7, 7, 8];
        assert_eq!(window_end(&sublists, 0, 2), 4);
    }

    #[test]
    fn reordering_permutes_whole_sublists() {
        let g = generators::gnp(40, 0.2, 3);
        let setup = prepared(&g, 0);
        for ordering in [
            WindowOrdering::Index,
            WindowOrdering::DegreeAscending,
            WindowOrdering::DegreeDescending,
            WindowOrdering::Random(5),
        ] {
            let exec = gmc_dpp::Executor::new(2);
            let (v, s) =
                reorder_sublists(&exec, &g, &setup.vertex_id, &setup.sublist_id, ordering).unwrap();
            assert_eq!(v.len(), setup.vertex_id.len());
            // Sublists stay contiguous: each source appears in one run.
            let mut seen = std::collections::HashSet::new();
            let mut i = 0;
            while i < s.len() {
                assert!(seen.insert(s[i]), "sublist {} split", s[i]);
                let mut j = i;
                while j < s.len() && s[j] == s[i] {
                    j += 1;
                }
                i = j;
            }
        }
    }

    #[test]
    fn descending_order_puts_high_degree_first() {
        let g = generators::barabasi_albert(60, 3, 11);
        let setup = prepared(&g, 0);
        let exec = gmc_dpp::Executor::new(2);
        let (_, s) = reorder_sublists(
            &exec,
            &g,
            &setup.vertex_id,
            &setup.sublist_id,
            WindowOrdering::DegreeDescending,
        )
        .unwrap();
        if !s.is_empty() {
            assert!(g.degree(s[0]) >= g.degree(*s.last().unwrap()));
        }
    }

    #[test]
    fn find_one_returns_a_maximum_clique() {
        let device = Device::unlimited();
        let g = generators::gnp(60, 0.2, 13);
        let setup = prepared(&g, 0);
        let full = reference_expand(&g, &setup);

        let cfg = WindowConfig {
            size: 8,
            ..WindowConfig::default()
        };
        let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
        assert_eq!(out.clique_size, full.clique_size);
        assert!(g.is_clique(&out.cliques[0]));
        assert!(!out.complete);
        assert!(out.stats.num_windows > 1);
    }

    #[test]
    fn enumerate_all_matches_full_bfs_across_window_sizes() {
        let device = Device::unlimited();
        let g = generators::gnp(50, 0.25, 17);
        let setup = prepared(&g, 0);
        let full = reference_expand(&g, &setup);
        let expected = normalize(full.cliques);
        for size in [1, 4, 16, 1024] {
            let cfg = WindowConfig {
                size,
                enumerate_all: true,
                ..WindowConfig::default()
            };
            let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
            assert_eq!(out.clique_size, full.clique_size, "window size {size}");
            assert_eq!(normalize(out.cliques), expected, "window size {size}");
            assert!(out.complete);
        }
    }

    #[test]
    fn witness_survives_when_nothing_better_exists() {
        // Find-one mode with the true maximum as witness: windows find
        // nothing strictly better, so the witness is returned.
        let device = Device::unlimited();
        let g = generators::complete(5);
        let setup = prepared(&g, 5);
        let cfg = WindowConfig {
            size: 2,
            ..WindowConfig::default()
        };
        let witness = vec![0, 1, 2, 3, 4];
        let out = search(&device, &g, &setup, &cfg, &witness, 5).unwrap();
        assert_eq!(out.clique_size, 5);
        assert_eq!(out.cliques, vec![witness]);
        assert_eq!(out.stats.bound_improvements, 0);
    }

    #[test]
    fn windows_use_less_memory_than_full_bfs() {
        let device = Device::unlimited();
        let g = generators::gnp(80, 0.3, 19);
        let setup = prepared(&g, 0);

        device.memory().reset_peak();
        let full_level = CliqueLevel::from_vecs(
            device.memory(),
            setup.vertex_id.clone(),
            setup.sublist_id.clone(),
        )
        .unwrap();
        let _ = expand(
            &device,
            &g,
            &g,
            full_level,
            2,
            false,
            true,
            LocalBitsMode::Auto,
            None,
            &mut LevelArena::new(),
        )
        .unwrap();
        let full_peak = device.memory().peak();

        let cfg = WindowConfig {
            size: 16,
            ..WindowConfig::default()
        };
        let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
        assert!(
            out.stats.peak_window_bytes < full_peak,
            "windowed {} vs full {full_peak}",
            out.stats.peak_window_bytes
        );
    }

    #[test]
    fn non_recursive_mode_propagates_oom() {
        // One huge window (the whole graph) on a starved budget, depth 1.
        let g = generators::gnp(100, 0.3, 21);
        let setup = prepared(&g, 0);
        let device = Device::with_memory_budget(4 * 1024);
        let cfg = WindowConfig {
            size: usize::MAX / 2,
            ..WindowConfig::default()
        };
        assert!(search(&device, &g, &setup, &cfg, &[], 2).is_err());
        assert_eq!(device.memory().live(), 0);
    }

    #[test]
    fn recursive_windowing_rescues_oversized_windows() {
        let g = generators::gnp(100, 0.3, 21);
        let setup = prepared(&g, 0);
        let reference = reference_expand(&g, &setup);

        // Same starved budget, but with splitting + recursion allowed.
        let device = Device::with_memory_budget(4 * 1024);
        let cfg = WindowConfig {
            size: usize::MAX / 2,
            max_depth: 6,
            ..WindowConfig::default()
        };
        let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
        assert_eq!(out.clique_size, reference.clique_size);
        assert!(g.is_clique(&out.cliques[0]));
        assert!(out.stats.window_splits > 0, "expected OOM-driven splits");
    }

    #[test]
    fn recursive_enumeration_is_still_complete() {
        let g = generators::gnp(60, 0.3, 23);
        let setup = prepared(&g, 0);
        let expected = normalize(reference_expand(&g, &setup).cliques);
        let device = Device::with_memory_budget(3 * 1024);
        let cfg = WindowConfig {
            size: usize::MAX / 2,
            enumerate_all: true,
            max_depth: 8,
            ..WindowConfig::default()
        };
        let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
        assert!(out.complete);
        assert_eq!(normalize(out.cliques), expected);
    }

    #[test]
    fn sublist_recursion_triggers_on_giant_sublists() {
        // A K17 plus pendant fringe: the clique's minimum vertex owns a
        // 16-candidate sublist whose subtree peaks at C(16,8) ≈ 12.9k
        // entries — far over a 2 KiB budget — so the search must recurse
        // several levels deep before subtrees fit.
        let mut edges = Vec::new();
        for u in 0..17u32 {
            for v in (u + 1)..17 {
                edges.push((u, v));
            }
        }
        for p in 17..40u32 {
            edges.push((p % 17, p));
        }
        let g = Csr::from_edges(40, &edges);
        let setup = prepared(&g, 0);
        let device = Device::with_memory_budget(2 * 1024);
        let cfg = WindowConfig {
            size: 4,
            max_depth: 10,
            ..WindowConfig::default()
        };
        let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
        assert_eq!(out.clique_size, 17);
        assert!(g.is_clique(&out.cliques[0]));
        assert!(
            out.stats.sublist_recursions > 0,
            "expected deeper-level windowing: {:?}",
            out.stats
        );
    }

    #[test]
    fn auto_window_sizing_follows_moon_moser() {
        // Small budget → windows of few sublists; big budget → one window.
        let g = generators::gnp(60, 0.2, 41);
        let setup = prepared(&g, 0);
        let reference = reference_expand(&g, &setup);

        let tight = Device::new(1, 4 * 1024);
        let cfg = WindowConfig::auto();
        let out = search(&tight, &g, &setup, &cfg, &[], 2).unwrap();
        assert_eq!(out.clique_size, reference.clique_size);
        assert!(out.stats.num_windows > 1, "tight budget should cut windows");

        let roomy = Device::unlimited();
        let out = search(&roomy, &g, &setup, &cfg, &[], 2).unwrap();
        assert_eq!(out.clique_size, reference.clique_size);
        assert_eq!(out.stats.num_windows, 1, "roomy budget should not cut");
    }

    #[test]
    fn auto_window_end_takes_whole_sublists() {
        let sublists = [0u32, 0, 0, 1, 1, 2, 2, 2, 2];
        // Budget of 1 estimated entry: one sublist per window.
        assert_eq!(auto_window_end(&sublists, 0, 1), 3);
        assert_eq!(auto_window_end(&sublists, 3, 1), 5);
        assert_eq!(auto_window_end(&sublists, 5, 1), 9);
        // Large budget: everything in one window.
        assert_eq!(auto_window_end(&sublists, 0, usize::MAX), 9);
    }

    #[test]
    fn parallel_windows_enumerate_the_same_set() {
        let g = generators::gnp(60, 0.25, 51);
        let setup = prepared(&g, 0);
        let expected = normalize(reference_expand(&g, &setup).cliques);
        for workers in [2, 4] {
            let device = Device::new(2, usize::MAX);
            let cfg = WindowConfig {
                size: 8,
                enumerate_all: true,
                parallel_windows: workers,
                ..WindowConfig::default()
            };
            let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
            assert_eq!(normalize(out.cliques), expected, "workers {workers}");
            assert!(out.complete);
        }
    }

    #[test]
    fn parallel_windows_find_one_returns_a_maximum() {
        let g = generators::gnp(70, 0.2, 53);
        let setup = prepared(&g, 0);
        let reference = reference_expand(&g, &setup);
        let device = Device::new(2, usize::MAX);
        let cfg = WindowConfig {
            size: 4,
            parallel_windows: 3,
            ..WindowConfig::default()
        };
        let out = search(&device, &g, &setup, &cfg, &[], 2).unwrap();
        assert_eq!(out.clique_size, reference.clique_size);
        assert!(g.is_clique(&out.cliques[0]));
    }

    #[test]
    fn parallel_windows_propagate_oom_and_release_memory() {
        let g = generators::gnp(100, 0.3, 55);
        let setup = prepared(&g, 0);
        let device = Device::with_memory_budget(2 * 1024);
        let cfg = WindowConfig {
            size: usize::MAX / 2,
            parallel_windows: 4,
            ..WindowConfig::default()
        };
        assert!(search(&device, &g, &setup, &cfg, &[], 2).is_err());
        assert_eq!(device.memory().live(), 0);
    }

    #[test]
    fn recursive_enumeration_with_tiny_budget_matches_oracle_sets() {
        for seed in 30..34 {
            let g = generators::gnp(40, 0.35, seed);
            let setup = prepared(&g, 0);
            let expected = normalize(reference_expand(&g, &setup).cliques);
            let device = Device::with_memory_budget(512);
            let cfg = WindowConfig {
                size: 8,
                enumerate_all: true,
                max_depth: 12,
                ..WindowConfig::default()
            };
            match search(&device, &g, &setup, &cfg, &[], 2) {
                Ok(out) => assert_eq!(normalize(out.cliques), expected, "seed {seed}"),
                Err(_) => {
                    // Even recursion can legitimately fail on a 512-byte
                    // budget; what must never happen is a wrong answer.
                }
            }
            assert_eq!(device.memory().live(), 0, "seed {seed} leaked");
        }
    }
}
