use gmc_dpp::{FaultPlan, Schedule, Tracer};
use gmc_heuristic::HeuristicKind;

/// Which directed arc of each undirected edge survives orientation
/// (paper §IV-C). Degree orientation makes low-degree vertices the sources,
/// shortening average sublists and improving the sublist-length cut; index
/// orientation is the ablation baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrientationRule {
    /// Keep the arc whose source is lower in (degree, index) order — the
    /// paper's choice.
    #[default]
    Degree,
    /// Keep the arc whose source has the lower vertex index.
    Index,
}

/// Which edge-membership structure the expansion kernels use (paper §III-3
/// compares exactly these three; the paper picks binary search for its
/// memory economy on large graphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeIndexKind {
    /// Binary search on the CSR's sorted adjacency lists — `O(log d)` per
    /// lookup, no extra memory. The paper's choice.
    #[default]
    BinarySearch,
    /// Dense bitset adjacency matrix — O(1) lookups, `n²/8` bytes charged
    /// to device memory. Fast for small/dense graphs, prohibitive for
    /// large ones.
    Bitset,
    /// Open-addressing edge hash table — O(1) expected lookups, `O(|E|)`
    /// extra bytes charged to device memory (Lessley et al.'s choice).
    Hash,
    /// Bitset when `n²/8` fits comfortably (≤ 16 MiB and within a quarter
    /// of the device budget), binary search otherwise — the "choose by
    /// input size" policy of several prior solvers the paper cites.
    Auto,
}

/// The adjacency-bitmap policy of the fused count kernel — a three-tier
/// ladder from most to least memory-hungry:
///
/// 1. **Persistent** — one `n_core × n_core` core-graph bitmap
///    ([`gmc_graph::CoreBitmap`]) built right after setup pruning and
///    probed for the *entire* solve: every successor-adjacency test is a
///    single word test, zero per-level rebuilds. Fires when forced, or
///    under [`Auto`] when the bitmap fits the device budget.
/// 2. **Per-level local** — per BFS level, sublists are segmented and each
///    long-enough sublist gets an m×m bitmap built straight from the CSR
///    (no [`EdgeOracle`] probes), so the tail intersection becomes
///    word-wise shift + popcount, 64 candidates per operation.
/// 3. **Scalar** — every tail walks the bound-directed scalar
///    record-and-replay path against the edge oracle.
///
/// Settable from the environment via
/// `GMC_LOCAL_BITS=persistent|on|off|auto` (picked up by
/// [`SolverConfig::default`]).
///
/// [`Auto`]: LocalBitsMode::Auto
/// [`EdgeOracle`]: gmc_graph::EdgeOracle
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalBitsMode {
    /// Force the persistent core-graph bitmap tier: build the
    /// `n_core × n_core` bitmap once after setup pruning and answer every
    /// probe from it. Degrades to per-level [`On`](LocalBitsMode::On)
    /// behaviour if the bitmap cannot be built (device OOM or an injected
    /// fault during the build) — never aborts the solve.
    Persistent,
    /// Build a per-level bitmap for every sublist with at least two
    /// members — mainly for ablation and equivalence testing; tiny
    /// sublists pay the build overhead without amortising it.
    On,
    /// Never build adjacency bitmaps: every tail walks the scalar
    /// record-and-replay path (the PR 2 fused pipeline, bit for bit).
    Off,
    /// Budget-directed policy (the default). The persistent tier fires
    /// when the core bitmap's `n_core²/8 + 4·n` bytes fit comfortably
    /// (≤ 16 MiB and within a quarter of the device budget — the same
    /// gate as [`EdgeIndexKind::Auto`]). Otherwise falls back to the
    /// per-sublist heuristic: bitmap when the sublist has at least
    /// `LOCAL_BITS_AUTO_MIN` members *and* a lower bound on the
    /// bound-directed scalar walk it would replace — weighted by the
    /// measured probe-vs-merge-step cost ratio and amortised over the
    /// expected remaining levels — covers the `Σ deg(member) + m²` build
    /// work. Short sublists, degree-heavy sublists and tight-bound levels
    /// (where the scalar walk stops almost immediately) keep the scalar
    /// walk.
    #[default]
    Auto,
}

impl std::str::FromStr for LocalBitsMode {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "persistent" => Ok(LocalBitsMode::Persistent),
            "on" | "1" | "true" => Ok(LocalBitsMode::On),
            "off" | "0" | "false" => Ok(LocalBitsMode::Off),
            "auto" => Ok(LocalBitsMode::Auto),
            _ => Err(()),
        }
    }
}

impl std::fmt::Display for LocalBitsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LocalBitsMode::Persistent => "persistent",
            LocalBitsMode::On => "on",
            LocalBitsMode::Off => "off",
            LocalBitsMode::Auto => "auto",
        })
    }
}

impl LocalBitsMode {
    /// Reads `GMC_LOCAL_BITS` (`persistent`/`on`/`off`/`auto`), defaulting
    /// to [`Auto`] when unset and panicking loudly on a typo (fail-loud
    /// policy of `gmc_trace::env`).
    ///
    /// [`Auto`]: LocalBitsMode::Auto
    pub fn from_env() -> Self {
        gmc_trace::env::parse_or("GMC_LOCAL_BITS", LocalBitsMode::Auto)
    }
}

/// Upper bound used when pruning whole sublists at setup (paper §II-B3: the
/// straightforward bound is `|C| + |P|`; "we can find a tighter upper bound
/// using other metrics, such as vertex coloring").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SublistBound {
    /// `|C| + |P|`: a sublist survives if it has at least `ω̄ − 1`
    /// candidates — the paper's choice (cheap, computed from lengths).
    #[default]
    Length,
    /// Greedy-colouring bound: a sublist survives if its candidates need at
    /// least `ω̄ − 1` colours. Strictly tighter (a clique of size `s` needs
    /// `s` colours) at `O(L²)` extra edge checks per sublist — the
    /// preprocessing/pruning trade-off several of the paper's cited
    /// implementations pick.
    Coloring,
}

/// Ordering of candidate vertices within each sublist of the 2-clique list
/// (paper §IV-C, final preprocessing step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CandidateOrder {
    /// Adjacency-list order (ascending vertex index). With randomized vertex
    /// ids this is effectively a random order.
    Index,
    /// Ascending degree: moves missing-edge lookups earlier (pruning sooner)
    /// and routes more binary searches into short adjacency lists — the
    /// paper's recommended ordering.
    #[default]
    DegreeAscending,
}

/// Ordering of sublists (by their source vertex) before windows are cut
/// (paper §V-C tests these four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowOrdering {
    /// Leave sublists in source-vertex index order.
    #[default]
    Index,
    /// Search the least-connected sources first.
    DegreeAscending,
    /// Search the most-connected sources first (paper: costs the most
    /// memory).
    DegreeDescending,
    /// Seeded random shuffle of sublists.
    Random(u64),
}

/// Configuration of the windowed search variant (paper §IV-E).
///
/// ```
/// use gmc_dpp::Device;
/// use gmc_graph::generators;
/// use gmc_mce::{MaxCliqueSolver, WindowConfig};
///
/// let graph = generators::complete(6);
/// let result = MaxCliqueSolver::new(Device::unlimited())
///     .windowed(WindowConfig::with_size(4).recursive(3))
///     .solve(&graph)
///     .unwrap();
/// assert_eq!(result.clique_number, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Nominal window size in 2-clique entries; actual windows snap to
    /// sublist boundaries. The paper sweeps 1024..32768. `0` selects
    /// automatic sizing: windows grow sublist by sublist until the
    /// Moon–Moser bound on their worst-case subtree reaches a quarter of
    /// the device budget — the sizing rule of Wei et al. that the paper's
    /// windowing section builds on (§III-1).
    pub size: usize,
    /// How sublists are ordered before windows are cut.
    pub ordering: WindowOrdering,
    /// `false` (paper's mode): find one maximum clique, pruning strictly
    /// against the best size found so far. `true`: keep ties so that all
    /// maximum cliques are still enumerated, window by window.
    pub enumerate_all: bool,
    /// Recursion depth for *recursive windowing* (paper §V-C3, sketched as
    /// future work): `1` windows only the 2-clique list (the paper's
    /// implementation); larger values let a window that runs out of memory
    /// be split, and a single over-large sublist be re-windowed one search
    /// level deeper, recursively.
    pub max_depth: usize,
    /// Top-level windows processed concurrently — the paper's other §V-C3
    /// sketch ("multiple windows could be explored simultaneously by
    /// different thread blocks"). `1` (the paper's implementation) keeps the
    /// strictly sequential window loop. Larger values share the incumbent
    /// across in-flight windows; all concurrent windows charge the same
    /// device budget, trading memory back for parallel work. The clique
    /// *set* is unchanged; in find-one mode the particular witness returned
    /// may vary between runs when several maximum cliques exist.
    pub parallel_windows: usize,
}

impl WindowConfig {
    /// A find-one window configuration with default ordering.
    pub fn with_size(size: usize) -> Self {
        Self {
            size,
            ordering: WindowOrdering::default(),
            enumerate_all: false,
            max_depth: 1,
            parallel_windows: 1,
        }
    }

    /// Processes up to `count` top-level windows concurrently.
    pub fn parallel(mut self, count: usize) -> Self {
        self.parallel_windows = count.max(1);
        self
    }

    /// Enables recursive windowing down to `depth` levels.
    pub fn recursive(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Automatic window sizing from the device budget via the Moon–Moser
    /// bound (see [`WindowConfig::size`]).
    pub fn auto() -> Self {
        Self {
            size: 0,
            ..Self::default()
        }
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self::with_size(32_768)
    }
}

/// Full solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Lower-bound heuristic run before the exact search.
    pub heuristic: HeuristicKind,
    /// Seed count `h` for multi-run heuristics (`None` = all vertices).
    pub heuristic_seeds: Option<usize>,
    /// Edge orientation rule.
    pub orientation: OrientationRule,
    /// Edge-membership structure for the expansion kernels.
    pub edge_index: EdgeIndexKind,
    /// Candidate ordering within sublists.
    pub candidate_order: CandidateOrder,
    /// Sublist pruning bound at setup.
    pub sublist_bound: SublistBound,
    /// Apply (1,2)-interchange local search to the heuristic witness before
    /// the exact phase — a cheap bound improvement beyond the paper's greedy
    /// heuristics (§II-B1's preprocessing/quality ladder). Off by default to
    /// match the paper's configurations.
    pub polish_witness: bool,
    /// Windowed search; `None` runs the full breadth-first search.
    pub window: Option<WindowConfig>,
    /// Allow the search to stop as soon as the surviving candidates provably
    /// form the unique remaining maximum clique (paper Algorithm 2 line 36).
    pub early_exit: bool,
    /// Use the fused expansion pipeline: the count kernel records adjacency
    /// bitmasks the output kernel replays (instead of re-querying the edge
    /// oracle), with a single-pass scan and arena-recycled level scratch.
    /// `false` selects the paper-literal count → scan → re-walk pipeline —
    /// kept as the ablation baseline.
    pub fused: bool,
    /// Sublist-local bitmap fast path inside the fused count kernel (no
    /// effect on the unfused pipeline). See [`LocalBitsMode`].
    pub local_bits: LocalBitsMode,
    /// How the executor maps launches onto workers for the duration of the
    /// solve: the solver installs this [`Schedule`] on the device executor
    /// and restores the previous one afterwards. The clique set is
    /// bit-identical under every schedule; dynamic modes only rebalance
    /// skewed launches across workers. Defaults to `GMC_SCHED`
    /// (`static`/`morsel[:grain]`/`guided`/`auto`) or [`Schedule::Auto`]
    /// when unset.
    pub schedule: Schedule,
    /// Recording handle for profiling: the solver installs it on the
    /// device's executor and memory accountant for the duration of each
    /// solve, and wraps every phase, BFS level and window in spans.
    /// Disabled by default (cost: one branch per instrumented site).
    pub trace: Tracer,
    /// Deterministic fault injection: when set to an active plan, the
    /// solver arms a [`gmc_dpp::FaultInjector`] on the device for the
    /// expansion phase, making allocations and launches fail at the plan's
    /// rates; the recovery ladder (arena release → window shrink →
    /// bitmap→scalar fallback) must then reproduce the fault-free clique
    /// set bit for bit. Defaults to `GMC_FAULTS`
    /// (`seed=S,alloc=R,launch=R,retries=N`) or `None` when unset.
    pub faults: Option<FaultPlan>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            heuristic: HeuristicKind::MultiDegree,
            heuristic_seeds: None,
            orientation: OrientationRule::Degree,
            edge_index: EdgeIndexKind::BinarySearch,
            candidate_order: CandidateOrder::DegreeAscending,
            sublist_bound: SublistBound::Length,
            polish_witness: false,
            window: None,
            early_exit: true,
            fused: true,
            local_bits: LocalBitsMode::from_env(),
            schedule: Schedule::from_env(),
            trace: Tracer::disabled(),
            faults: FaultPlan::from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        let cfg = SolverConfig::default();
        assert_eq!(cfg.heuristic, HeuristicKind::MultiDegree);
        assert_eq!(cfg.candidate_order, CandidateOrder::DegreeAscending);
        assert!(cfg.window.is_none());
        assert!(cfg.early_exit);
        assert!(cfg.fused);
        // Default Auto unless the environment overrides it (CI ablation
        // jobs may set GMC_LOCAL_BITS / GMC_SCHED; respect what they say).
        assert_eq!(cfg.local_bits, LocalBitsMode::from_env());
        assert_eq!(cfg.schedule, Schedule::from_env());
        assert!(!cfg.trace.is_enabled());
    }

    #[test]
    fn local_bits_mode_parses_and_displays() {
        use std::str::FromStr;
        for (raw, want) in [
            ("on", LocalBitsMode::On),
            ("ON", LocalBitsMode::On),
            ("1", LocalBitsMode::On),
            ("off", LocalBitsMode::Off),
            ("0", LocalBitsMode::Off),
            ("auto", LocalBitsMode::Auto),
            ("persistent", LocalBitsMode::Persistent),
            ("PERSISTENT", LocalBitsMode::Persistent),
        ] {
            assert_eq!(LocalBitsMode::from_str(raw), Ok(want), "{raw}");
            // Display round-trips through FromStr.
            assert_eq!(LocalBitsMode::from_str(&want.to_string()), Ok(want));
        }
        assert!(LocalBitsMode::from_str("banana").is_err());
    }

    #[test]
    fn window_config_builders() {
        let w = WindowConfig::with_size(1024);
        assert_eq!(w.size, 1024);
        assert!(!w.enumerate_all);
        assert_eq!(WindowConfig::default().size, 32_768);
    }
}
