//! The iterative breadth-first expansion (paper §IV-D, Algorithm 2).
//!
//! Each level launches one virtual thread per candidate entry:
//!
//! 1. **Count kernel** (`COUNTCLIQUES`): entry `i` walks the entries after
//!    it in its sublist, counting those adjacent to its own vertex (a binary
//!    search per check). If the count cannot reach the target clique size
//!    (`k + connected < target`), the count is zeroed — the branch is
//!    pruned.
//! 2. **Scan** over the counts yields the output offsets and the size of the
//!    next level.
//! 3. **Output kernel** (`OUTPUTNEWCLIQUES`): each unpruned entry re-walks
//!    its sublist tail and emits one `(vertex, parent)` pair per adjacent
//!    candidate into its span of the next level's arrays.
//!
//! The loop ends when a level produces no entries; every entry of the last
//! level is then a maximum clique (each entry of level `L` is a valid
//! `(L + 2)`-clique, and each clique appears exactly once because the
//! orientation makes its vertex order unique).

use gmc_cliquelist::{CliqueLevel, CliqueList};
use gmc_dpp::{Device, DeviceOom, SharedSlice};
use gmc_graph::{Csr, EdgeOracle};

/// Result of expanding one clique list to exhaustion.
#[derive(Debug)]
pub(crate) struct ExpansionOutcome {
    /// Cliques stored at the deepest non-empty level (unsorted read-out
    /// order), or the single early-exit clique.
    pub cliques: Vec<Vec<u32>>,
    /// Size of those cliques (0 when the initial level was empty).
    pub clique_size: usize,
    /// Entry count at each level, including the initial one.
    pub level_entries: Vec<usize>,
    /// Whether the provably-unique-remainder early exit fired.
    pub early_exit: bool,
}

/// Largest head level for which the early-exit mutual-adjacency check is
/// attempted; the check costs `len²` edge lookups.
const EARLY_EXIT_CHECK_LIMIT: usize = 512;

/// Expands `level0` breadth-first until no further cliques exist, returning
/// the cliques of the deepest level whose size reaches `min_target`.
///
/// `min_target` is the pruning bound: branches that cannot reach a clique of
/// at least this size are cut. For full enumeration pass `ω̄` (ties kept);
/// for find-one-better pass `best + 1`.
pub(crate) fn expand<O: EdgeOracle + ?Sized>(
    device: &Device,
    graph: &Csr,
    oracle: &O,
    level0: CliqueLevel,
    min_target: u32,
    early_exit_enabled: bool,
) -> Result<ExpansionOutcome, DeviceOom> {
    let _ = graph; // connectivity goes through the oracle; kept for debug asserts
    let exec = device.exec();
    let mut list = CliqueList::new();
    let mut level_entries = vec![level0.len()];
    if level0.is_empty() {
        return Ok(ExpansionOutcome {
            cliques: Vec::new(),
            clique_size: 0,
            level_entries,
            early_exit: false,
        });
    }
    list.push_level(level0);

    loop {
        let head = list.head().expect("list is non-empty");
        let k = list.clique_size_at(list.num_levels() - 1); // entries are k-cliques
        let len = head.len();
        assert!(len < u32::MAX as usize, "level exceeds u32 indexing");
        let vertex_id = head.vertex_ids();
        let sublist_id = head.sublist_ids();

        // COUNTCLIQUES: adjacent successors within the sublist, pruned
        // against the target.
        let counts: Vec<usize> = exec.map_indexed(len, |i| {
            let mut connected = 0usize;
            let mut j = i + 1;
            while j < len && sublist_id[j] == sublist_id[i] {
                if oracle.connected(vertex_id[i], vertex_id[j]) {
                    connected += 1;
                }
                j += 1;
            }
            if k + connected < min_target as usize {
                0
            } else {
                connected
            }
        });

        let (offsets, total) = gmc_dpp::exclusive_scan(exec, &counts);
        if total == 0 {
            break;
        }

        // OUTPUTNEWCLIQUES: emit each entry's adjacent successors.
        let mut new_vertex = vec![0u32; total];
        let mut new_sublist = vec![0u32; total];
        {
            let vertex_shared = SharedSlice::new(&mut new_vertex);
            let sublist_shared = SharedSlice::new(&mut new_sublist);
            exec.for_each_indexed(len, |i| {
                if counts[i] == 0 {
                    return;
                }
                let mut cursor = offsets[i];
                let mut j = i + 1;
                while j < len && sublist_id[j] == sublist_id[i] {
                    if oracle.connected(vertex_id[i], vertex_id[j]) {
                        // SAFETY: entry i owns offsets[i]..offsets[i]+counts[i].
                        unsafe {
                            vertex_shared.write(cursor, vertex_id[j]);
                            sublist_shared.write(cursor, i as u32);
                        }
                        cursor += 1;
                    }
                    j += 1;
                }
            });
        }

        let new_level = CliqueLevel::from_vecs(device.memory(), new_vertex, new_sublist)?;
        level_entries.push(new_level.len());
        list.push_level(new_level);

        // Early exit (paper Algorithm 2, line 36): when every surviving
        // candidate shares one parent and the candidates are mutually
        // adjacent, the chain plus all candidates is the unique remaining
        // maximum clique.
        if early_exit_enabled {
            if let Some(clique) = try_early_exit(oracle, &list, min_target) {
                let clique_size = clique.len();
                return Ok(ExpansionOutcome {
                    cliques: vec![clique],
                    clique_size,
                    level_entries,
                    early_exit: true,
                });
            }
        }
    }

    // Read out the deepest level.
    let final_idx = list.num_levels() - 1;
    let clique_size = list.clique_size_at(final_idx);
    if (clique_size as u32) < min_target {
        // Every branch died before reaching the target: nothing to report
        // (this happens in windowed mode when a window holds no clique
        // beating the incumbent).
        return Ok(ExpansionOutcome {
            cliques: Vec::new(),
            clique_size: 0,
            level_entries,
            early_exit: false,
        });
    }
    let cliques = list.read_all_cliques(final_idx);
    Ok(ExpansionOutcome {
        cliques,
        clique_size,
        level_entries,
        early_exit: false,
    })
}

/// Checks whether the head level is a single, mutually-adjacent sublist; if
/// so, returns `chain ∪ candidates` — provably the unique maximum clique
/// still reachable.
fn try_early_exit<O: EdgeOracle + ?Sized>(
    oracle: &O,
    list: &CliqueList,
    min_target: u32,
) -> Option<Vec<u32>> {
    let head = list.head()?;
    let len = head.len();
    if len == 0 || len > EARLY_EXIT_CHECK_LIMIT {
        return None;
    }
    let sublist_id = head.sublist_ids();
    if sublist_id.iter().any(|&s| s != sublist_id[0]) {
        return None; // more than one sublist survives
    }
    let candidates = head.vertex_ids();
    for (i, &u) in candidates.iter().enumerate() {
        for &v in &candidates[i + 1..] {
            if !oracle.connected(u, v) {
                return None;
            }
        }
    }
    // Chain = the clique of the shared parent entry.
    let head_idx = list.num_levels() - 1;
    let mut clique = if head_idx == 0 {
        vec![sublist_id[0]] // level 0 packs the source vertex directly
    } else {
        list.read_clique(head_idx - 1, sublist_id[0] as usize)
    };
    clique.extend_from_slice(candidates);
    if (clique.len() as u32) < min_target {
        return None;
    }
    Some(clique)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidateOrder;
    use crate::setup::build_two_clique_list;
    use gmc_graph::generators;

    fn run(graph: &Csr, lower: u32, early_exit: bool) -> ExpansionOutcome {
        let device = Device::unlimited();
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            lower,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        expand(&device, graph, graph, level0, lower.max(2), early_exit).unwrap()
    }

    fn normalize(mut cliques: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut cliques {
            c.sort_unstable();
        }
        cliques.sort();
        cliques
    }

    #[test]
    fn triangle_with_tail() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 3);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn enumerates_multiple_maximum_cliques() {
        // Two disjoint triangles.
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 3);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn complete_graph_has_one_maximum() {
        let g = generators::complete(6);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 6);
        assert_eq!(out.cliques.len(), 1);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn overlapping_cliques_enumerated_once_each() {
        // K4 {0,1,2,3} and K4 {2,3,4,5} sharing an edge.
        let mut edges = Vec::new();
        for set in [[0u32, 1, 2, 3], [2, 3, 4, 5]] {
            for (i, &u) in set.iter().enumerate() {
                for &v in &set[i + 1..] {
                    edges.push((u, v));
                }
            }
        }
        let g = Csr::from_edges(6, &edges);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 4);
        assert_eq!(
            normalize(out.cliques),
            vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]]
        );
    }

    #[test]
    fn pruning_with_valid_bound_preserves_enumeration() {
        let g = generators::gnp(60, 0.2, 5);
        let unpruned = run(&g, 0, false);
        let pruned = run(&g, unpruned.clique_size as u32, false);
        assert_eq!(pruned.clique_size, unpruned.clique_size);
        assert_eq!(normalize(pruned.cliques), normalize(unpruned.cliques));
        // And pruning must not inflate the intermediate levels.
        for (a, b) in pruned.level_entries.iter().zip(&unpruned.level_entries) {
            assert!(a <= b);
        }
    }

    #[test]
    fn early_exit_finds_unique_maximum() {
        // A 5-clique planted in a sparse graph: after a couple of levels the
        // survivors collapse to one sublist.
        let base = generators::gnp(80, 0.03, 9);
        let (g, members) = generators::plant_clique(&base, 5, 10);
        let without = run(&g, 0, false);
        let with = run(&g, 0, true);
        assert_eq!(with.clique_size, without.clique_size);
        assert_eq!(normalize(with.cliques.clone()), normalize(without.cliques));
        if with.early_exit {
            assert_eq!(with.cliques.len(), 1);
            let mut c = with.cliques[0].clone();
            c.sort_unstable();
            assert_eq!(c, members);
        }
    }

    #[test]
    fn empty_level_yields_no_cliques() {
        let g = Csr::empty(4);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 0);
        assert!(out.cliques.is_empty());
    }

    #[test]
    fn min_target_above_omega_returns_nothing() {
        let device = Device::unlimited();
        let g = generators::complete(4);
        let setup = build_two_clique_list(
            device.exec(),
            &g,
            0,
            &g.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::Index,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        // Ask for cliques of size ≥ 5 in a K4.
        let out = expand(&device, &g, &g, level0, 5, false).unwrap();
        assert!(out.cliques.is_empty());
        assert_eq!(out.clique_size, 0);
    }

    #[test]
    fn oom_propagates_from_level_growth() {
        // K20 with a tiny budget: level 0 fits, deeper levels cannot.
        let g = generators::complete(20);
        let device = Device::with_memory_budget(8 * 190 + 64);
        let setup = build_two_clique_list(
            device.exec(),
            &g,
            0,
            &g.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::Index,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let err = expand(&device, &g, &g, level0, 2, false);
        assert!(err.is_err(), "expected OOM");
    }

    #[test]
    fn level_counts_are_monotone_then_shrink() {
        // On a complete graph, level entries follow binomial growth/decay:
        // C(n,2), 1·C(n,3)... the exact sequence is Σ over entries; just
        // check the first level matches C(n,2) and the last level is 1.
        let g = generators::complete(7);
        let out = run(&g, 0, false);
        assert_eq!(out.level_entries[0], 21);
        assert_eq!(*out.level_entries.last().unwrap(), 1);
    }
}
