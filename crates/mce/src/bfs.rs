//! The iterative breadth-first expansion (paper §IV-D, Algorithm 2).
//!
//! Each level launches one virtual thread per candidate entry:
//!
//! 1. **Count kernel** (`COUNTCLIQUES`): entry `i` walks the entries after
//!    it in its sublist, counting those adjacent to its own vertex (a binary
//!    search per check). If the count cannot reach the target clique size
//!    (`k + connected < target`), the count is zeroed — the branch is
//!    pruned.
//! 2. **Scan** over the counts yields the output offsets and the size of the
//!    next level.
//! 3. **Output kernel** (`OUTPUTNEWCLIQUES`): each unpruned entry emits one
//!    `(vertex, parent)` pair per adjacent candidate into its span of the
//!    next level's arrays.
//!
//! Two pipelines implement that level step:
//!
//! * **Fused** (the default, [`SolverConfig::fused`]): the count walk
//!   records each adjacency answer as a bitmask — one inline `u64` covers
//!   the first [`INLINE_BITS`] tail positions, longer tails spill whole
//!   `u64` words into a shared side buffer — and the output kernel *replays*
//!   the bits instead of re-querying the [`EdgeOracle`]. The count walk is
//!   also *bound-directed*: it stops as soon as the candidates left cannot
//!   lift the entry to the target (such an entry is pruned to zero either
//!   way, so the truncation never changes the output). Sublist tail
//!   lengths are threaded level to level (the emit kernel writes each new
//!   entry's tail), so neither kernel compares `sublist_id` values. The scan
//!   is the single-pass chunk-carry [`gmc_dpp::exclusive_scan_into`]. Three
//!   launches per level instead of four, and typically well under half the
//!   oracle queries; all scratch lives in a [`LevelArena`] recycled across
//!   levels and windows.
//! * **Unfused** (the ablation baseline): the seed pipeline verbatim — the
//!   paper-literal full count walk, an output kernel that re-walks every
//!   unpruned sublist tail (repeating the count kernel's oracle queries),
//!   fresh per-level allocations and the two-phase scan.
//!
//! Both pipelines count their `EdgeOracle::connected` calls exactly into
//! [`ExpansionOutcome::oracle_queries`]. The unfused walks are fully
//! deterministic, so their tally is computed analytically on the host; the
//! fused count kernel records each pruned entry's truncated walk length in
//! that entry's otherwise-dead mask slot, and the host folds the tally from
//! there at zero hot-path cost.
//!
//! The loop ends when a level produces no entries; every entry of the last
//! level is then a maximum clique (each entry of level `L` is a valid
//! `(L + 2)`-clique, and each clique appears exactly once because the
//! orientation makes its vertex order unique).
//!
//! [`SolverConfig::fused`]: crate::SolverConfig::fused

use crate::arena::LevelArena;
use gmc_cliquelist::{CliqueLevel, CliqueList};
use gmc_dpp::{Device, DeviceOom, SharedSlice, UninitSlice};
use gmc_graph::{Csr, EdgeOracle};

/// Result of expanding one clique list to exhaustion.
#[derive(Debug)]
pub(crate) struct ExpansionOutcome {
    /// Cliques stored at the deepest non-empty level (unsorted read-out
    /// order), or the single early-exit clique.
    pub cliques: Vec<Vec<u32>>,
    /// Size of those cliques (0 when the initial level was empty).
    pub clique_size: usize,
    /// Entry count at each level, including the initial one.
    pub level_entries: Vec<usize>,
    /// Whether the provably-unique-remainder early exit fired.
    pub early_exit: bool,
    /// Exact number of `EdgeOracle::connected` calls this expansion made
    /// (count/output walks plus early-exit checks). The fused pipeline's
    /// saving over the unfused baseline shows up here.
    pub oracle_queries: u64,
}

/// Largest head level for which the early-exit mutual-adjacency check is
/// attempted; the check costs `len²` edge lookups.
const EARLY_EXIT_CHECK_LIMIT: usize = 512;

/// Tail positions covered by the per-entry inline adjacency mask; longer
/// tails spill whole `u64` words into the arena's side buffer.
const INLINE_BITS: usize = 64;

/// Expands `level0` breadth-first until no further cliques exist, returning
/// the cliques of the deepest level whose size reaches `min_target`.
///
/// `min_target` is the pruning bound: branches that cannot reach a clique of
/// at least this size are cut. For full enumeration pass `ω̄` (ties kept);
/// for find-one-better pass `best + 1`. `fused` selects the pipeline (see
/// the module docs); `arena` supplies recycled scratch and absorbs the
/// retired levels' buffers on return, including the OOM path.
#[allow(clippy::too_many_arguments)] // mirrors the solver's knobs 1:1
pub(crate) fn expand<O: EdgeOracle + ?Sized>(
    device: &Device,
    graph: &Csr,
    oracle: &O,
    level0: CliqueLevel,
    min_target: u32,
    early_exit_enabled: bool,
    fused: bool,
    arena: &mut LevelArena,
) -> Result<ExpansionOutcome, DeviceOom> {
    let _ = graph; // connectivity goes through the oracle; kept for debug asserts
    let mut list = CliqueList::new();
    let mut level_entries = vec![level0.len()];
    if level0.is_empty() {
        return Ok(ExpansionOutcome {
            cliques: Vec::new(),
            clique_size: 0,
            level_entries,
            early_exit: false,
            oracle_queries: 0,
        });
    }
    list.push_level(level0);

    let mut queries = 0u64;
    let grown = if fused {
        grow_fused(
            device,
            oracle,
            &mut list,
            &mut level_entries,
            min_target,
            early_exit_enabled,
            arena,
            &mut queries,
        )
    } else {
        grow_unfused(
            device,
            oracle,
            &mut list,
            &mut level_entries,
            min_target,
            early_exit_enabled,
            arena,
            &mut queries,
        )
    };
    let outcome = match grown {
        Err(oom) => {
            recycle(arena, &mut list);
            arena.release_charges();
            return Err(oom);
        }
        Ok(Some(clique)) => {
            // Early exit (paper Algorithm 2, line 36) fired.
            let clique_size = clique.len();
            ExpansionOutcome {
                cliques: vec![clique],
                clique_size,
                level_entries,
                early_exit: true,
                oracle_queries: queries,
            }
        }
        Ok(None) => {
            // Read out the deepest level.
            let final_idx = list.num_levels() - 1;
            let clique_size = list.clique_size_at(final_idx);
            if (clique_size as u32) < min_target {
                // Every branch died before reaching the target: nothing to
                // report (this happens in windowed mode when a window holds
                // no clique beating the incumbent).
                ExpansionOutcome {
                    cliques: Vec::new(),
                    clique_size: 0,
                    level_entries,
                    early_exit: false,
                    oracle_queries: queries,
                }
            } else {
                ExpansionOutcome {
                    cliques: list.read_all_cliques(final_idx),
                    clique_size,
                    level_entries,
                    early_exit: false,
                    oracle_queries: queries,
                }
            }
        }
    };
    recycle(arena, &mut list);
    arena.release_charges();
    Ok(outcome)
}

/// Pops every level back into the arena's staging freelist: the device
/// charges drop with the [`CliqueLevel`]s while the host buffers survive for
/// the next level or window.
fn recycle(arena: &mut LevelArena, list: &mut CliqueList) {
    while let Some(level) = list.pop_level() {
        let (vertex, sublist) = level.into_vecs();
        arena.retire_staging(vertex);
        arena.retire_staging(sublist);
    }
}

/// The fused level loop: record-and-replay adjacency bitmasks, threaded
/// sublist tails, single-pass scan, arena-recycled scratch. Returns the
/// early-exit clique when that check fires, `None` when the level loop
/// drains normally.
#[allow(clippy::too_many_arguments)]
fn grow_fused<O: EdgeOracle + ?Sized>(
    device: &Device,
    oracle: &O,
    list: &mut CliqueList,
    level_entries: &mut Vec<usize>,
    min_target: u32,
    early_exit_enabled: bool,
    arena: &mut LevelArena,
    queries: &mut u64,
) -> Result<Option<Vec<u32>>, DeviceOom> {
    let exec = device.exec();
    let tracer = exec.tracer();
    arena.set_tails_from_sublists(list.head().expect("list is non-empty").sublist_ids());
    loop {
        let head = list.head().expect("list is non-empty");
        let k = list.clique_size_at(list.num_levels() - 1); // entries are k-cliques
        let len = head.len();
        assert!(len < u32::MAX as usize, "level exceeds u32 indexing");
        let vertex_id = head.vertex_ids();
        debug_assert_eq!(arena.tails.len(), len, "tails out of sync with head");
        let mut level_span = tracer
            .is_enabled()
            .then(|| tracer.span_with("bfs_level", &[("k", k as i64), ("entries", len as i64)]));
        let queries_before = *queries;

        // Candidates an entry must still find adjacent to reach the target;
        // the count walk stops the moment that becomes impossible.
        let need = (min_target as usize).saturating_sub(k);
        // The longest tail decides whether any bitmask spills past its
        // inline word.
        let max_tail = arena.tails.iter().copied().max().unwrap_or(0);

        // Size and charge the spill buffer only when some tail overflows
        // the inline mask (its bytes are device-resident between the two
        // kernels, charged at the arena's high-water mark).
        let spill_total = if max_tail as usize > INLINE_BITS {
            let tails = &arena.tails;
            let words_dst = UninitSlice::for_vec(&mut arena.spill_words, len);
            exec.for_each_indexed_named("bfs_spill_words", len, |i| {
                let words = (tails[i] as usize).saturating_sub(INLINE_BITS).div_ceil(64);
                // SAFETY: one write per index.
                unsafe { words_dst.write(i, words) };
            });
            // SAFETY: the launch above wrote every index in 0..len.
            unsafe { arena.spill_words.set_len(len) };
            let total =
                gmc_dpp::exclusive_scan_into(exec, &arena.spill_words, &mut arena.spill_offsets);
            arena.charge_spill(device.memory(), total * std::mem::size_of::<u64>())?;
            total
        } else {
            0
        };

        // Fused COUNTCLIQUES: the single adjacency walk records both the
        // pruned count and the raw adjacency bitmask the emit kernel will
        // replay. The walk is *bound-directed*: it runs only while
        // `connected + remaining >= need`, so a hopeless entry stops at the
        // first position where pruning is already certain (an entry whose
        // whole tail is shorter than `need` makes no queries at all) — the
        // truncated walk is safe because such an entry is zeroed by the
        // pruning rule either way. A pruned entry's mask slot is dead (the
        // emit kernel skips it), so the kernel stores the entry's actual
        // query count there instead, keeping the host-side tally exact.
        // Spill words are assembled locally and each is stored exactly once
        // (bailing entries zero-fill the rest of their span), so the side
        // buffer needs no pre-zeroing.
        {
            let tails = &arena.tails;
            let spill_offsets = &arena.spill_offsets;
            let counts_dst = UninitSlice::for_vec(&mut arena.counts, len);
            let masks_dst = UninitSlice::for_vec(&mut arena.masks, len);
            let spill_dst = UninitSlice::for_vec(&mut arena.spill, spill_total);
            exec.for_each_indexed_fused_named("bfs_count_cliques_fused", len, |i| {
                let t = tails[i] as usize;
                let spill_base = if t > INLINE_BITS { spill_offsets[i] } else { 0 };
                let spill_len = t.saturating_sub(INLINE_BITS).div_ceil(64);
                let mut connected = 0usize;
                let mut inline = 0u64;
                let mut word = 0u64;
                let mut flushed = 0usize;
                let mut walked = 0usize;
                while walked < t && connected + (t - walked) >= need {
                    let b = walked;
                    if oracle.connected(vertex_id[i], vertex_id[i + 1 + b]) {
                        connected += 1;
                        if b < INLINE_BITS {
                            inline |= 1u64 << b;
                        } else {
                            word |= 1u64 << ((b - INLINE_BITS) % 64);
                        }
                    }
                    walked += 1;
                    if b >= INLINE_BITS && (b - INLINE_BITS) % 64 == 63 {
                        // SAFETY: entry i owns its spill span; each word is
                        // completed, and therefore written, exactly once.
                        unsafe { spill_dst.write(spill_base + flushed, word) };
                        flushed += 1;
                        word = 0;
                    }
                }
                for w in flushed..spill_len {
                    // SAFETY: the walk flushed words 0..flushed; this writes
                    // the trailing partial word plus zeros for the span a
                    // bailed walk never reached, exactly once each.
                    unsafe { spill_dst.write(spill_base + w, if w == flushed { word } else { 0 }) };
                }
                let count = if connected < need { 0 } else { connected };
                // SAFETY: one write per index. A zero-count entry is never
                // replayed, so its mask slot carries the query tally the
                // truncated walk actually made.
                unsafe {
                    counts_dst.write(i, count);
                    masks_dst.write(i, if count == 0 { walked as u64 } else { inline });
                }
            });
            // SAFETY: the launch wrote every index of all three buffers
            // (spill spans tile 0..spill_total across entries with long
            // tails).
            unsafe {
                arena.counts.set_len(len);
                arena.masks.set_len(len);
                arena.spill.set_len(spill_total);
            }
        }

        // Exact query tally: a surviving entry always walked its whole tail
        // (a bailed walk implies pruning), a pruned entry recorded its
        // truncated walk length in the dead mask slot.
        *queries += arena
            .counts
            .iter()
            .zip(&arena.tails)
            .zip(&arena.masks)
            .map(|((&c, &t), &m)| if c > 0 { u64::from(t) } else { m })
            .sum::<u64>();

        let total = gmc_dpp::exclusive_scan_into(exec, &arena.counts, &mut arena.offsets);
        if let Some(span) = level_span.as_mut() {
            span.arg("emitted", total as i64);
            span.arg(
                "pruned",
                arena.counts.iter().filter(|&&c| c == 0).count() as i64,
            );
            span.arg("oracle_queries", (*queries - queries_before) as i64);
        }
        if total == 0 {
            return Ok(None);
        }

        // Fused OUTPUTNEWCLIQUES: replay the recorded bits — zero oracle
        // queries — and write each emitted entry's sublist tail for the
        // next level (its sublist is exactly its parent's span).
        let mut new_vertex = arena.take_staging();
        let mut new_sublist = arena.take_staging();
        {
            let tails = &arena.tails;
            let counts = &arena.counts;
            let offsets = &arena.offsets;
            let masks = &arena.masks;
            let spill = &arena.spill;
            let spill_offsets = &arena.spill_offsets;
            let vertex_dst = UninitSlice::for_vec(&mut new_vertex, total);
            let sublist_dst = UninitSlice::for_vec(&mut new_sublist, total);
            let tails_dst = UninitSlice::for_vec(&mut arena.next_tails, total);
            exec.for_each_indexed_fused_named("bfs_emit_cliques_fused", len, |i| {
                if counts[i] == 0 {
                    return;
                }
                let end = offsets[i] + counts[i];
                let mut cursor = offsets[i];
                let emit = |b: usize, cursor: usize| {
                    // SAFETY: entry i owns offsets[i]..end; the spans tile
                    // 0..total and each slot is written exactly once.
                    unsafe {
                        vertex_dst.write(cursor, vertex_id[i + 1 + b]);
                        sublist_dst.write(cursor, i as u32);
                        tails_dst.write(cursor, (end - 1 - cursor) as u32);
                    }
                };
                // Inline bits replay in ascending order, matching the
                // unfused walk byte for byte.
                let mut m = masks[i];
                while m != 0 {
                    emit(m.trailing_zeros() as usize, cursor);
                    m &= m - 1;
                    cursor += 1;
                }
                let t = tails[i] as usize;
                if t > INLINE_BITS {
                    let base = spill_offsets[i];
                    for w in 0..(t - INLINE_BITS).div_ceil(64) {
                        let mut m = spill[base + w];
                        while m != 0 {
                            emit(INLINE_BITS + w * 64 + m.trailing_zeros() as usize, cursor);
                            m &= m - 1;
                            cursor += 1;
                        }
                    }
                }
                debug_assert_eq!(cursor, end, "mask replay disagrees with count");
            });
            // SAFETY: counts/offsets tile 0..total, so the launch wrote
            // every slot of all three buffers.
            unsafe {
                new_vertex.set_len(total);
                new_sublist.set_len(total);
                arena.next_tails.set_len(total);
            }
        }
        std::mem::swap(&mut arena.tails, &mut arena.next_tails);

        let new_level = CliqueLevel::from_vecs(device.memory(), new_vertex, new_sublist)?;
        level_entries.push(new_level.len());
        list.push_level(new_level);

        if early_exit_enabled {
            if let Some(clique) = try_early_exit(oracle, list, min_target, queries) {
                return Ok(Some(clique));
            }
        }
    }
}

/// The unfused level loop — the seed pipeline kept verbatim as the ablation
/// baseline: the output kernel re-walks every unpruned sublist tail
/// (repeating the count kernel's oracle queries), the scan is two-phase,
/// and each level allocates fresh buffers.
#[allow(clippy::too_many_arguments)]
fn grow_unfused<O: EdgeOracle + ?Sized>(
    device: &Device,
    oracle: &O,
    list: &mut CliqueList,
    level_entries: &mut Vec<usize>,
    min_target: u32,
    early_exit_enabled: bool,
    arena: &mut LevelArena,
    queries: &mut u64,
) -> Result<Option<Vec<u32>>, DeviceOom> {
    let exec = device.exec();
    let tracer = exec.tracer();
    loop {
        let head = list.head().expect("list is non-empty");
        let k = list.clique_size_at(list.num_levels() - 1); // entries are k-cliques
        let len = head.len();
        assert!(len < u32::MAX as usize, "level exceeds u32 indexing");
        let vertex_id = head.vertex_ids();
        let sublist_id = head.sublist_ids();
        let mut level_span = tracer
            .is_enabled()
            .then(|| tracer.span_with("bfs_level", &[("k", k as i64), ("entries", len as i64)]));
        let queries_before = *queries;

        // Analytic query accounting: the count walk visits exactly the
        // sublist tail of every entry.
        arena.set_tails_from_sublists(sublist_id);
        *queries += arena.tails.iter().map(|&t| u64::from(t)).sum::<u64>();

        // COUNTCLIQUES: adjacent successors within the sublist, pruned
        // against the target.
        let counts: Vec<usize> = exec.map_indexed_named("bfs_count_cliques", len, |i| {
            let mut connected = 0usize;
            let mut j = i + 1;
            while j < len && sublist_id[j] == sublist_id[i] {
                if oracle.connected(vertex_id[i], vertex_id[j]) {
                    connected += 1;
                }
                j += 1;
            }
            if k + connected < min_target as usize {
                0
            } else {
                connected
            }
        });

        let (offsets, total) = gmc_dpp::exclusive_scan(exec, &counts);

        // The output kernel re-walks the full tail of every unpruned entry.
        *queries += arena
            .tails
            .iter()
            .zip(&counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&t, _)| u64::from(t))
            .sum::<u64>();

        if let Some(span) = level_span.as_mut() {
            span.arg("emitted", total as i64);
            span.arg("pruned", counts.iter().filter(|&&c| c == 0).count() as i64);
            span.arg("oracle_queries", (*queries - queries_before) as i64);
        }
        if total == 0 {
            return Ok(None);
        }

        // OUTPUTNEWCLIQUES: emit each entry's adjacent successors.
        let mut new_vertex = vec![0u32; total];
        let mut new_sublist = vec![0u32; total];
        {
            let vertex_shared = SharedSlice::new(&mut new_vertex);
            let sublist_shared = SharedSlice::new(&mut new_sublist);
            exec.for_each_indexed_named("bfs_output_new_cliques", len, |i| {
                if counts[i] == 0 {
                    return;
                }
                let mut cursor = offsets[i];
                let mut j = i + 1;
                while j < len && sublist_id[j] == sublist_id[i] {
                    if oracle.connected(vertex_id[i], vertex_id[j]) {
                        // SAFETY: entry i owns offsets[i]..offsets[i]+counts[i].
                        unsafe {
                            vertex_shared.write(cursor, vertex_id[j]);
                            sublist_shared.write(cursor, i as u32);
                        }
                        cursor += 1;
                    }
                    j += 1;
                }
            });
        }

        let new_level = CliqueLevel::from_vecs(device.memory(), new_vertex, new_sublist)?;
        level_entries.push(new_level.len());
        list.push_level(new_level);

        if early_exit_enabled {
            if let Some(clique) = try_early_exit(oracle, list, min_target, queries) {
                return Ok(Some(clique));
            }
        }
    }
}

/// Checks whether the head level is a single, mutually-adjacent sublist; if
/// so, returns `chain ∪ candidates` — provably the unique maximum clique
/// still reachable. Oracle calls are tallied into `queries`.
fn try_early_exit<O: EdgeOracle + ?Sized>(
    oracle: &O,
    list: &CliqueList,
    min_target: u32,
    queries: &mut u64,
) -> Option<Vec<u32>> {
    let head = list.head()?;
    let len = head.len();
    if len == 0 || len > EARLY_EXIT_CHECK_LIMIT {
        return None;
    }
    let sublist_id = head.sublist_ids();
    if sublist_id.iter().any(|&s| s != sublist_id[0]) {
        return None; // more than one sublist survives
    }
    let candidates = head.vertex_ids();
    for (i, &u) in candidates.iter().enumerate() {
        for &v in &candidates[i + 1..] {
            *queries += 1;
            if !oracle.connected(u, v) {
                return None;
            }
        }
    }
    // Chain = the clique of the shared parent entry.
    let head_idx = list.num_levels() - 1;
    let mut clique = if head_idx == 0 {
        vec![sublist_id[0]] // level 0 packs the source vertex directly
    } else {
        list.read_clique(head_idx - 1, sublist_id[0] as usize)
    };
    clique.extend_from_slice(candidates);
    if (clique.len() as u32) < min_target {
        return None;
    }
    Some(clique)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidateOrder;
    use crate::setup::build_two_clique_list;
    use gmc_graph::generators;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn run_with(graph: &Csr, lower: u32, early_exit: bool, fused: bool) -> ExpansionOutcome {
        let device = Device::unlimited();
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            lower,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let mut arena = LevelArena::new();
        expand(
            &device,
            graph,
            graph,
            level0,
            lower.max(2),
            early_exit,
            fused,
            &mut arena,
        )
        .unwrap()
    }

    fn run(graph: &Csr, lower: u32, early_exit: bool) -> ExpansionOutcome {
        run_with(graph, lower, early_exit, true)
    }

    fn normalize(mut cliques: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut cliques {
            c.sort_unstable();
        }
        cliques.sort();
        cliques
    }

    /// Wraps an oracle and counts actual `connected` calls, to pin the
    /// analytic `oracle_queries` tally to reality.
    struct CountingOracle<'a> {
        inner: &'a Csr,
        calls: AtomicU64,
    }

    impl EdgeOracle for CountingOracle<'_> {
        fn connected(&self, u: u32, v: u32) -> bool {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.connected(u, v)
        }

        fn footprint_bytes(&self) -> usize {
            self.inner.footprint_bytes()
        }
    }

    #[test]
    fn triangle_with_tail() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 3);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn enumerates_multiple_maximum_cliques() {
        // Two disjoint triangles.
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 3);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn complete_graph_has_one_maximum() {
        let g = generators::complete(6);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 6);
        assert_eq!(out.cliques.len(), 1);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn overlapping_cliques_enumerated_once_each() {
        // K4 {0,1,2,3} and K4 {2,3,4,5} sharing an edge.
        let mut edges = Vec::new();
        for set in [[0u32, 1, 2, 3], [2, 3, 4, 5]] {
            for (i, &u) in set.iter().enumerate() {
                for &v in &set[i + 1..] {
                    edges.push((u, v));
                }
            }
        }
        let g = Csr::from_edges(6, &edges);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 4);
        assert_eq!(
            normalize(out.cliques),
            vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]]
        );
    }

    #[test]
    fn pruning_with_valid_bound_preserves_enumeration() {
        let g = generators::gnp(60, 0.2, 5);
        let unpruned = run(&g, 0, false);
        let pruned = run(&g, unpruned.clique_size as u32, false);
        assert_eq!(pruned.clique_size, unpruned.clique_size);
        assert_eq!(normalize(pruned.cliques), normalize(unpruned.cliques));
        // And pruning must not inflate the intermediate levels.
        for (a, b) in pruned.level_entries.iter().zip(&unpruned.level_entries) {
            assert!(a <= b);
        }
    }

    #[test]
    fn early_exit_finds_unique_maximum() {
        // A 5-clique planted in a sparse graph: after a couple of levels the
        // survivors collapse to one sublist.
        let base = generators::gnp(80, 0.03, 9);
        let (g, members) = generators::plant_clique(&base, 5, 10);
        let without = run(&g, 0, false);
        let with = run(&g, 0, true);
        assert_eq!(with.clique_size, without.clique_size);
        assert_eq!(normalize(with.cliques.clone()), normalize(without.cliques));
        if with.early_exit {
            assert_eq!(with.cliques.len(), 1);
            let mut c = with.cliques[0].clone();
            c.sort_unstable();
            assert_eq!(c, members);
        }
    }

    #[test]
    fn empty_level_yields_no_cliques() {
        let g = Csr::empty(4);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 0);
        assert!(out.cliques.is_empty());
        assert_eq!(out.oracle_queries, 0);
    }

    #[test]
    fn min_target_above_omega_returns_nothing() {
        let device = Device::unlimited();
        let g = generators::complete(4);
        let setup = build_two_clique_list(
            device.exec(),
            &g,
            0,
            &g.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::Index,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        // Ask for cliques of size ≥ 5 in a K4.
        let mut arena = LevelArena::new();
        let out = expand(&device, &g, &g, level0, 5, false, true, &mut arena).unwrap();
        assert!(out.cliques.is_empty());
        assert_eq!(out.clique_size, 0);
    }

    #[test]
    fn oom_propagates_from_level_growth() {
        // K20 with a tiny budget: level 0 fits, deeper levels cannot.
        let g = generators::complete(20);
        for fused in [true, false] {
            let device = Device::with_memory_budget(8 * 190 + 64);
            let setup = build_two_clique_list(
                device.exec(),
                &g,
                0,
                &g.degrees(),
                crate::config::OrientationRule::Degree,
                CandidateOrder::Index,
                crate::config::SublistBound::Length,
            );
            let level0 =
                CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
            let mut arena = LevelArena::new();
            let err = expand(&device, &g, &g, level0, 2, false, fused, &mut arena);
            assert!(err.is_err(), "expected OOM (fused={fused})");
            // The failed expansion must leave nothing charged — the level
            // charges and any spill charge are all released on the way out.
            assert_eq!(device.memory().live(), 0, "leak (fused={fused})");
        }
    }

    #[test]
    fn level_counts_are_monotone_then_shrink() {
        // On a complete graph, level entries follow binomial growth/decay:
        // C(n,2), 1·C(n,3)... the exact sequence is Σ over entries; just
        // check the first level matches C(n,2) and the last level is 1.
        let g = generators::complete(7);
        let out = run(&g, 0, false);
        assert_eq!(out.level_entries[0], 21);
        assert_eq!(*out.level_entries.last().unwrap(), 1);
    }

    #[test]
    fn fused_matches_unfused_exactly() {
        // The emit kernel replays bits in ascending order — the same order
        // as the unfused re-walk — so even the raw read-out must agree.
        for seed in 0..6 {
            let g = generators::gnp(50, 0.18, seed);
            for early_exit in [false, true] {
                let fused = run_with(&g, 0, early_exit, true);
                let unfused = run_with(&g, 0, early_exit, false);
                let tag = format!("seed {seed} early_exit {early_exit}");
                assert_eq!(fused.clique_size, unfused.clique_size, "{tag}");
                assert_eq!(fused.cliques, unfused.cliques, "{tag}");
                assert_eq!(fused.level_entries, unfused.level_entries, "{tag}");
                assert_eq!(fused.early_exit, unfused.early_exit, "{tag}");
            }
        }
    }

    fn counted(graph: &Csr, fused: bool) -> (ExpansionOutcome, u64) {
        let device = Device::unlimited();
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            0,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let oracle = CountingOracle {
            inner: graph,
            calls: AtomicU64::new(0),
        };
        let mut arena = LevelArena::new();
        let out = expand(&device, graph, &oracle, level0, 2, false, fused, &mut arena).unwrap();
        (out, oracle.calls.load(Ordering::Relaxed))
    }

    #[test]
    fn oracle_query_counter_is_exact_and_fusion_skips_the_rewalk() {
        let g = generators::gnp(100, 0.3, 7);
        let (fused, fused_actual) = counted(&g, true);
        let (unfused, unfused_actual) = counted(&g, false);
        // The analytic tally must match the oracle's own call count.
        assert_eq!(fused.oracle_queries, fused_actual);
        assert_eq!(unfused.oracle_queries, unfused_actual);
        // On a dense graph most entries survive pruning, so the unfused
        // output kernel repeats nearly the whole count walk: fusion must
        // save at least 40% of the queries.
        assert!(
            fused.oracle_queries * 10 <= unfused.oracle_queries * 6,
            "fused {} vs unfused {}",
            fused.oracle_queries,
            unfused.oracle_queries
        );
    }

    #[test]
    fn spill_masks_cover_tails_beyond_inline_bits() {
        // A hub with 70 successors in one sublist: tails reach 69 > 64, so
        // the inline mask overflows into the spill buffer. The only deep
        // structure is the K4 {0,1,2,3}.
        let mut edges: Vec<(u32, u32)> = (1..=70).map(|v| (0u32, v)).collect();
        edges.extend([(1, 2), (1, 3), (2, 3)]);
        let g = Csr::from_edges(71, &edges);
        let device = Device::unlimited();
        let mut arena = LevelArena::new();
        let level0 = |device: &Device| {
            CliqueLevel::from_vecs(device.memory(), (1..=70).collect(), vec![0; 70]).unwrap()
        };
        let fused = expand(&device, &g, &g, level0(&device), 2, false, true, &mut arena).unwrap();
        let unfused = expand(
            &device,
            &g,
            &g,
            level0(&device),
            2,
            false,
            false,
            &mut arena,
        )
        .unwrap();
        assert_eq!(fused.clique_size, 4);
        assert_eq!(fused.cliques, vec![vec![0, 1, 2, 3]]);
        assert_eq!(fused.cliques, unfused.cliques);
        assert_eq!(fused.level_entries, unfused.level_entries);
        assert_eq!(device.memory().live(), 0, "spill charges must be released");
    }

    #[test]
    fn fused_pipeline_saves_launches() {
        let g = generators::gnp(60, 0.25, 11);
        let launches = |fused: bool| {
            let device = Device::new(4, usize::MAX);
            // Force chunked dispatch even for these small test levels, so
            // the scans actually launch (below the sequential grid limit
            // both scan variants take a zero-launch host path).
            device.exec().set_sequential_grid_limit(1);
            let base = device.exec().stats();
            run_on(&device, &g, fused);
            device.exec().stats().since(&base)
        };
        let fused = launches(true);
        let unfused = launches(false);
        // Count + emit run as fused launches; the single-pass scan replaces
        // the two-phase scan, dropping one launch per level.
        assert!(fused.fused_launches > 0);
        assert_eq!(unfused.fused_launches, 0);
        assert!(
            fused.launches < unfused.launches,
            "fused {} vs unfused {}",
            fused.launches,
            unfused.launches
        );
    }

    fn run_on(device: &Device, graph: &Csr, fused: bool) -> ExpansionOutcome {
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            0,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let mut arena = LevelArena::new();
        expand(device, graph, graph, level0, 2, false, fused, &mut arena).unwrap()
    }

    #[test]
    fn arena_reuse_across_expansions_is_clean() {
        // The same arena serves back-to-back expansions (as windows do):
        // results must not depend on what the previous run left behind.
        let mut arena = LevelArena::new();
        let device = Device::unlimited();
        let mut reference = Vec::new();
        for round in 0..3 {
            for seed in [13, 29] {
                let g = generators::gnp(40, 0.25, seed);
                let setup = build_two_clique_list(
                    device.exec(),
                    &g,
                    0,
                    &g.degrees(),
                    crate::config::OrientationRule::Degree,
                    CandidateOrder::DegreeAscending,
                    crate::config::SublistBound::Length,
                );
                let level0 =
                    CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id)
                        .unwrap();
                let out = expand(&device, &g, &g, level0, 2, false, true, &mut arena).unwrap();
                if round == 0 {
                    reference.push(out.cliques);
                } else {
                    assert_eq!(out.cliques, reference[(seed == 29) as usize], "seed {seed}");
                }
            }
        }
        assert_eq!(device.memory().live(), 0);
    }
}
