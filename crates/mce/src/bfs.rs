//! The iterative breadth-first expansion (paper §IV-D, Algorithm 2).
//!
//! Each level launches one virtual thread per candidate entry:
//!
//! 1. **Count kernel** (`COUNTCLIQUES`): entry `i` walks the entries after
//!    it in its sublist, counting those adjacent to its own vertex (a binary
//!    search per check). If the count cannot reach the target clique size
//!    (`k + connected < target`), the count is zeroed — the branch is
//!    pruned.
//! 2. **Scan** over the counts yields the output offsets and the size of the
//!    next level.
//! 3. **Output kernel** (`OUTPUTNEWCLIQUES`): each unpruned entry emits one
//!    `(vertex, parent)` pair per adjacent candidate into its span of the
//!    next level's arrays.
//!
//! Two pipelines implement that level step:
//!
//! * **Fused** (the default, [`SolverConfig::fused`]): the count walk
//!   records each adjacency answer as a bitmask — one inline `u64` covers
//!   the first [`INLINE_BITS`] tail positions, longer tails spill whole
//!   `u64` words into a shared side buffer — and the output kernel *replays*
//!   the bits instead of re-querying the [`EdgeOracle`]. The count walk is
//!   also *bound-directed*: it stops as soon as the candidates left cannot
//!   lift the entry to the target (such an entry is pruned to zero either
//!   way, so the truncation never changes the output). Sublist tail
//!   lengths are threaded level to level (the emit kernel writes each new
//!   entry's tail), so neither kernel compares `sublist_id` values. The scan
//!   is the single-pass chunk-carry [`gmc_dpp::exclusive_scan_into`]. Three
//!   launches per level instead of four, and typically well under half the
//!   oracle queries; all scratch lives in a [`LevelArena`] recycled across
//!   levels and windows.
//! * **Unfused** (the ablation baseline): the seed pipeline verbatim — the
//!   paper-literal full count walk, an output kernel that re-walks every
//!   unpruned sublist tail (repeating the count kernel's oracle queries),
//!   fresh per-level allocations and the two-phase scan.
//!
//! The fused pipeline additionally carries a **sublist-local bitmap fast
//! path** ([`SolverConfig::local_bits`]): before each count kernel the head
//! level is segmented by sublist (boundaries fall out of the threaded
//! tails), and every sublist that is long enough — and, under `Auto`,
//! whose provable walk savings at this level's bound cover the build cost
//! — gets an m×m sublist-local adjacency bitmap. Two
//! launches build it with *zero* oracle probes: one sorts each such
//! sublist's packed member keys, one builds each row by galloping the row
//! vertex's sorted CSR neighbor list against the sorted member slice. The
//! count kernel then derives entry `i`'s tail mask directly from its row —
//! tail bit `b` is row bit `r + 1 + b` for local position `r`, so the
//! inline word and every spill word are 64-wide funnel shifts of the row,
//! the surviving count is one suffix popcount, and bound-directed pruning
//! collapses to a popcount comparison. Scalar sublists in the same level
//! walk exactly as before and the emit kernel is untouched, so the fast
//! path is bit-identical to the scalar walk, spill layout included.
//!
//! Both pipelines count their `EdgeOracle::connected` calls exactly into
//! [`ExpansionOutcome::oracle_queries`]. The unfused walks are fully
//! deterministic, so their tally is computed analytically on the host; the
//! fused count kernel records each pruned entry's truncated walk length in
//! that entry's otherwise-dead mask slot, and the host folds the tally from
//! there at zero hot-path cost. Bitmap segments make no oracle calls at
//! all; the probes the scalar walk *would* have made are reconstructed
//! from the rows by the same rule and tallied into
//! [`LocalBitsStats::probes_avoided`], so local-bits on/off query tallies
//! always reconcile exactly.
//!
//! The loop ends when a level produces no entries; every entry of the last
//! level is then a maximum clique (each entry of level `L` is a valid
//! `(L + 2)`-clique, and each clique appears exactly once because the
//! orientation makes its vertex order unique).
//!
//! [`SolverConfig::fused`]: crate::SolverConfig::fused
//! [`SolverConfig::local_bits`]: crate::SolverConfig::local_bits

use crate::arena::{LevelArena, LocalSeg};
use crate::config::LocalBitsMode;
use gmc_cliquelist::{CliqueLevel, CliqueList};
use gmc_dpp::{bits, Device, DeviceError, SharedSlice, UninitSlice};
use gmc_graph::{local_row_intersect, pack_member, CoreBitmap, Csr, EdgeOracle};

/// Result of expanding one clique list to exhaustion.
#[derive(Debug)]
pub(crate) struct ExpansionOutcome {
    /// Cliques stored at the deepest non-empty level (unsorted read-out
    /// order), or the single early-exit clique.
    pub cliques: Vec<Vec<u32>>,
    /// Size of those cliques (0 when the initial level was empty).
    pub clique_size: usize,
    /// Entry count at each level, including the initial one.
    pub level_entries: Vec<usize>,
    /// Whether the provably-unique-remainder early exit fired.
    pub early_exit: bool,
    /// Exact number of `EdgeOracle::connected` calls this expansion made
    /// (count/output walks plus early-exit checks). The fused pipeline's
    /// saving over the unfused baseline shows up here.
    pub oracle_queries: u64,
    /// Sublist-local bitmap fast-path counters (all zero when the path
    /// never fired).
    pub local_bits: LocalBitsStats,
}

/// Counters for the adjacency-bitmap fast paths (fused pipeline only):
/// the per-level sublist-local tier and the persistent core-bitmap tier.
///
/// All counters are exact, not sampled: `probes_avoided` is reconstructed
/// with the same walk-length rule the scalar tally uses (from the bitmap
/// rows per-level, or from the walk the persistent probe path actually
/// performed), so for any expansion `oracle_queries(bitmaps on) +
/// probes_avoided == oracle_queries(bitmaps off)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalBitsStats {
    /// Per-level bitmap rows built across all levels — one per member of
    /// each bitmap-covered sublist. Stays zero under the persistent tier:
    /// the core bitmap is built once, outside the level loop.
    pub rows_built: u64,
    /// Row words the count kernel scanned; each replaces up to 64 scalar
    /// oracle probes with one shift/AND/popcount.
    pub words_anded: u64,
    /// Scalar `EdgeOracle::connected` probes the bitmap paths made
    /// unnecessary (what the scalar walk would have cost on those entries).
    pub probes_avoided: u64,
    /// The subset of `probes_avoided` answered by the *persistent* core
    /// bitmap: each was a single word test instead of a scalar oracle
    /// probe, with zero per-level rebuild cost.
    pub persistent_probes: u64,
    /// Device bytes charged for the persistent core bitmap, zero when the
    /// persistent tier never fired. A capacity, not a flow: folding takes
    /// the max so window-level tallies do not double-count the one bitmap.
    pub persistent_bytes: u64,
}

impl LocalBitsStats {
    /// Folds another tally (a level's, or a window's) into this one.
    pub fn accumulate(&mut self, other: LocalBitsStats) {
        self.rows_built += other.rows_built;
        self.words_anded += other.words_anded;
        self.probes_avoided += other.probes_avoided;
        self.persistent_probes += other.persistent_probes;
        self.persistent_bytes = self.persistent_bytes.max(other.persistent_bytes);
    }
}

/// Largest head level for which the early-exit mutual-adjacency check is
/// attempted; the check costs `len²` edge lookups.
const EARLY_EXIT_CHECK_LIMIT: usize = 512;

/// Tail positions covered by the per-entry inline adjacency mask; longer
/// tails spill whole `u64` words into the arena's side buffer.
const INLINE_BITS: usize = 64;

/// Sublists shorter than this never get a local bitmap, even when forced
/// on: a single-entry sublist has no tail to intersect.
const LOCAL_BITS_FORCED_MIN: usize = 2;

/// `Auto` builds a bitmap only for sublists at least this long — below it
/// the m²-bit payoff cannot recoup the build's sort-and-merge cost.
const LOCAL_BITS_AUTO_MIN: usize = 32;

/// `Auto` cost guard: measured cost of one edge-oracle probe relative to
/// one CSR merge step of the row build (a binary-search probe is ~5 merge
/// steps on this executor). The bitmap fires only when the walk it provably
/// replaces, weighted by this ratio, covers the build's `Σ deg(member) + m²`
/// merge-and-write work — see [`min_walk_lower_bound`].
const LOCAL_BITS_PROBE_WEIGHT: usize = 5;

/// Lower bound on the scalar probes a length-`m` sublist walks at bound
/// `need`: the bound-directed walk of an entry with tail `t` stops right
/// after its `t − need + 1`-th miss, so it performs at least
/// `t − need + 1` probes when `t ≥ need` (and surviving entries walk the
/// full `t ≥ need ≥ t − need + 1` anyway); entries with `t < need` may
/// walk nothing. At `need == 0` every entry walks its full tail. Summing
/// over the sublist's tails `0..m` gives a triangular number either way.
fn min_walk_lower_bound(m: usize, need: usize) -> usize {
    let span = if need == 0 {
        m.saturating_sub(1)
    } else {
        m.saturating_sub(need)
    };
    span * (span + 1) / 2
}

/// Expands `level0` breadth-first until no further cliques exist, returning
/// the cliques of the deepest level whose size reaches `min_target`.
///
/// `min_target` is the pruning bound: branches that cannot reach a clique of
/// at least this size are cut. For full enumeration pass `ω̄` (ties kept);
/// for find-one-better pass `best + 1`. `fused` selects the pipeline and
/// `local_bits` the sublist-bitmap fast path within it (see the module
/// docs); `persistent` supplies the solve-lifetime core bitmap when the
/// persistent tier fired — the fused count kernel then answers every probe
/// from it (single word tests, tallied into
/// [`LocalBitsStats::persistent_probes`]) and skips per-level planning and
/// builds entirely; the unfused pipeline ignores it. `arena` supplies
/// recycled scratch and absorbs the retired levels' buffers on return,
/// including the error path. The graph backs the bitmap builds — all scalar
/// connectivity goes through the oracle.
///
/// Failures — genuine OOM or injected allocation/launch faults — surface as
/// [`DeviceError`] with the arena released, so the caller can retry (fault
/// recovery) or split the window (OOM). One fault is recovered *inside* the
/// loop: an injected failure while building a level's local bitmaps drops
/// that level back to the scalar walk, which is bit-identical by design.
#[allow(clippy::too_many_arguments)] // mirrors the solver's knobs 1:1
pub(crate) fn expand<O: EdgeOracle + ?Sized>(
    device: &Device,
    graph: &Csr,
    oracle: &O,
    level0: CliqueLevel,
    min_target: u32,
    early_exit_enabled: bool,
    fused: bool,
    local_bits: LocalBitsMode,
    persistent: Option<&CoreBitmap>,
    arena: &mut LevelArena,
) -> Result<ExpansionOutcome, DeviceError> {
    let mut list = CliqueList::new();
    let mut level_entries = vec![level0.len()];
    if level0.is_empty() {
        return Ok(ExpansionOutcome {
            cliques: Vec::new(),
            clique_size: 0,
            level_entries,
            early_exit: false,
            oracle_queries: 0,
            local_bits: LocalBitsStats::default(),
        });
    }
    list.push_level(level0);

    let mut queries = 0u64;
    let mut local_stats = LocalBitsStats::default();
    let grown = if fused {
        grow_fused(
            device,
            graph,
            oracle,
            &mut list,
            &mut level_entries,
            min_target,
            early_exit_enabled,
            local_bits,
            persistent,
            arena,
            &mut queries,
            &mut local_stats,
        )
    } else {
        grow_unfused(
            device,
            oracle,
            &mut list,
            &mut level_entries,
            min_target,
            early_exit_enabled,
            arena,
            &mut queries,
        )
    };
    let outcome = match grown {
        Err(err) => {
            recycle(arena, &mut list);
            arena.release_charges();
            return Err(err);
        }
        Ok(Some(clique)) => {
            // Early exit (paper Algorithm 2, line 36) fired.
            let clique_size = clique.len();
            ExpansionOutcome {
                cliques: vec![clique],
                clique_size,
                level_entries,
                early_exit: true,
                oracle_queries: queries,
                local_bits: local_stats,
            }
        }
        Ok(None) => {
            // Read out the deepest level.
            let final_idx = list.num_levels() - 1;
            let clique_size = list.clique_size_at(final_idx);
            if (clique_size as u32) < min_target {
                // Every branch died before reaching the target: nothing to
                // report (this happens in windowed mode when a window holds
                // no clique beating the incumbent).
                ExpansionOutcome {
                    cliques: Vec::new(),
                    clique_size: 0,
                    level_entries,
                    early_exit: false,
                    oracle_queries: queries,
                    local_bits: local_stats,
                }
            } else {
                ExpansionOutcome {
                    cliques: list.read_all_cliques(final_idx),
                    clique_size,
                    level_entries,
                    early_exit: false,
                    oracle_queries: queries,
                    local_bits: local_stats,
                }
            }
        }
    };
    recycle(arena, &mut list);
    arena.release_charges();
    Ok(outcome)
}

/// Pops every level back into the arena's staging freelist: the device
/// charges drop with the [`CliqueLevel`]s while the host buffers survive for
/// the next level or window.
fn recycle(arena: &mut LevelArena, list: &mut CliqueList) {
    while let Some(level) = list.pop_level() {
        let (vertex, sublist) = level.into_vecs();
        arena.retire_staging(vertex);
        arena.retire_staging(sublist);
    }
}

/// The fused level loop: record-and-replay adjacency bitmasks, threaded
/// sublist tails, single-pass scan, arena-recycled scratch, and the
/// sublist-local bitmap fast path when `local_bits` selects it. Returns the
/// early-exit clique when that check fires, `None` when the level loop
/// drains normally.
#[allow(clippy::too_many_arguments)]
fn grow_fused<O: EdgeOracle + ?Sized>(
    device: &Device,
    graph: &Csr,
    oracle: &O,
    list: &mut CliqueList,
    level_entries: &mut Vec<usize>,
    min_target: u32,
    early_exit_enabled: bool,
    local_bits: LocalBitsMode,
    persistent: Option<&CoreBitmap>,
    arena: &mut LevelArena,
    queries: &mut u64,
    local_stats: &mut LocalBitsStats,
) -> Result<Option<Vec<u32>>, DeviceError> {
    let exec = device.exec();
    let tracer = exec.tracer();
    let injector = exec.fault_injector();
    arena.set_tails_from_sublists(list.head().expect("list is non-empty").sublist_ids());
    loop {
        // Level boundaries are the launch boundaries of the pipeline:
        // cancellation observed here unwinds through `expand`'s error path,
        // which recycles the list and releases every arena charge.
        exec.check_cancelled()?;
        let head = list.head().expect("list is non-empty");
        let k = list.clique_size_at(list.num_levels() - 1); // entries are k-cliques
        let len = head.len();
        assert!(len < u32::MAX as usize, "level exceeds u32 indexing");
        let vertex_id = head.vertex_ids();
        debug_assert_eq!(arena.tails.len(), len, "tails out of sync with head");
        let mut level_span = tracer
            .is_enabled()
            .then(|| tracer.span_with("bfs_level", &[("k", k as i64), ("entries", len as i64)]));
        let queries_before = *queries;

        // Candidates an entry must still find adjacent to reach the target;
        // the count walk stops the moment that becomes impossible.
        let need = (min_target as usize).saturating_sub(k);
        // The longest tail decides whether any bitmask spills past its
        // inline word.
        let max_tail = arena.tails.iter().copied().max().unwrap_or(0);

        // Size and charge the spill buffer only when some tail overflows
        // the inline mask (its bytes are device-resident between the two
        // kernels, charged at the arena's high-water mark).
        let spill_total = if max_tail as usize > INLINE_BITS {
            let tails = &arena.tails;
            let words_dst = UninitSlice::for_vec(&mut arena.spill_words, len);
            exec.try_for_each_indexed_named("bfs_spill_words", len, |i| {
                let words = (tails[i] as usize).saturating_sub(INLINE_BITS).div_ceil(64);
                // SAFETY: one write per index.
                unsafe { words_dst.write(i, words) };
            })?;
            // SAFETY: the launch above wrote every index in 0..len.
            unsafe { arena.spill_words.set_len(len) };
            let total = gmc_dpp::try_exclusive_scan_into(
                exec,
                &arena.spill_words,
                &mut arena.spill_offsets,
            )?;
            arena.charge_spill(device.memory(), total * std::mem::size_of::<u64>())?;
            total
        } else {
            0
        };

        // Segment the head level by sublist and plan which sublists get a
        // local adjacency bitmap (see the module docs). An empty plan —
        // mode off, or every sublist rejected — keeps the level on the
        // plain scalar kernel with zero dispatch overhead. The persistent
        // tier answers every probe from the solve-lifetime core bitmap, so
        // per-level planning and builds are skipped outright (zero
        // rebuilds after the one up-front build).
        let local_words = if persistent.is_some() {
            0
        } else {
            plan_local_segments(graph, vertex_id, arena, local_bits, need)
        };
        let mut local_active = local_words > 0;
        if local_active {
            if let Err(err) = build_local_bitmaps(device, graph, vertex_id, arena, local_words) {
                let recoverable = err.is_injected() && injector.is_some();
                if !recoverable {
                    return Err(err);
                }
                // Recovery ladder, first rung: an injected fault in the
                // bitmap build drops this level back to the scalar walk —
                // bit-identical output by design, only the query tally
                // shifts from `probes_avoided` to real probes.
                injector
                    .as_ref()
                    .expect("recoverable implies an armed injector")
                    .note_bitmap_fallback(&err);
                if tracer.is_enabled() {
                    tracer.instant("fault_bitmap_fallback", &[("k", k as i64)]);
                }
                local_active = false;
            }
        }

        // Fused COUNTCLIQUES: the single adjacency walk records both the
        // pruned count and the raw adjacency bitmask the emit kernel will
        // replay (see `scalar_count_walk` for the walk's invariants).
        // Entries of bitmap segments skip the walk entirely and derive
        // their mask by shifting their bitmap row past their own position.
        // Spill words are assembled locally and each is stored exactly once
        // (bailing entries zero-fill the rest of their span), so the side
        // buffer needs no pre-zeroing.
        {
            let tails = &arena.tails;
            let spill_offsets = &arena.spill_offsets;
            let counts_dst = UninitSlice::for_vec(&mut arena.counts, len);
            let masks_dst = UninitSlice::for_vec(&mut arena.masks, len);
            let spill_dst = UninitSlice::for_vec(&mut arena.spill, spill_total);
            if let Some(core) = persistent {
                // Persistent tier: the identical bound-directed record walk,
                // but every adjacency answer is a single word test against
                // the core bitmap — same masks, same spill layout, same
                // truncation rule, so the output is bit-identical to the
                // scalar walk while the edge oracle is never touched.
                let tail_cost = |i: usize| u64::from(tails[i]) + 1;
                exec.try_for_each_weighted_fused_named(
                    "bfs_count_cliques_persistent",
                    len,
                    tail_cost,
                    |i| {
                        let t = tails[i] as usize;
                        let spill_base = if t > INLINE_BITS { spill_offsets[i] } else { 0 };
                        scalar_count_walk(
                            core,
                            vertex_id,
                            i,
                            t,
                            need,
                            spill_base,
                            &counts_dst,
                            &masks_dst,
                            &spill_dst,
                        );
                    },
                )?;
            } else if local_active {
                let segs = &arena.segs;
                let seg_of = &arena.seg_of;
                let local_rows = &arena.local_rows;
                // Cost hint: the walk visits exactly the entry's tail.
                let tail_cost = |i: usize| u64::from(tails[i]) + 1;
                exec.try_for_each_weighted_fused_named(
                    "bfs_count_cliques_local",
                    len,
                    tail_cost,
                    |i| {
                        let t = tails[i] as usize;
                        let spill_base = if t > INLINE_BITS { spill_offsets[i] } else { 0 };
                        let seg = &segs[seg_of[i] as usize];
                        if seg.bitmap {
                            let r = i - seg.start;
                            let base = seg.rows_off + r * seg.words_per_row;
                            let row = &local_rows[base..base + seg.words_per_row];
                            bitmap_count_walk(
                                row,
                                r,
                                i,
                                t,
                                need,
                                spill_base,
                                &counts_dst,
                                &masks_dst,
                                &spill_dst,
                            );
                        } else {
                            scalar_count_walk(
                                oracle,
                                vertex_id,
                                i,
                                t,
                                need,
                                spill_base,
                                &counts_dst,
                                &masks_dst,
                                &spill_dst,
                            );
                        }
                    },
                )?;
            } else {
                let tail_cost = |i: usize| u64::from(tails[i]) + 1;
                exec.try_for_each_weighted_fused_named(
                    "bfs_count_cliques_fused",
                    len,
                    tail_cost,
                    |i| {
                        let t = tails[i] as usize;
                        let spill_base = if t > INLINE_BITS { spill_offsets[i] } else { 0 };
                        scalar_count_walk(
                            oracle,
                            vertex_id,
                            i,
                            t,
                            need,
                            spill_base,
                            &counts_dst,
                            &masks_dst,
                            &spill_dst,
                        );
                    },
                )?;
            }
            // SAFETY: the launch wrote every index of all three buffers
            // (spill spans tile 0..spill_total across entries with long
            // tails).
            unsafe {
                arena.counts.set_len(len);
                arena.masks.set_len(len);
                arena.spill.set_len(spill_total);
            }
        }

        // Exact query tally: a surviving entry always walked its whole tail
        // (a bailed walk implies pruning), a pruned entry recorded its
        // truncated walk length in the dead mask slot. Bitmap segments made
        // no oracle calls — the same rule reconstructs the probes the
        // scalar walk would have made, which feed the avoided counter.
        let mut level_local = LocalBitsStats::default();
        if persistent.is_some() {
            // The persistent walk probed the core bitmap exactly where the
            // scalar walk would have probed the oracle, so the same rule
            // tallies those word tests — into the avoided/persistent
            // counters, never into `queries`.
            let avoided = arena
                .counts
                .iter()
                .zip(&arena.tails)
                .zip(&arena.masks)
                .map(|((&c, &t), &m)| if c > 0 { u64::from(t) } else { m })
                .sum::<u64>();
            level_local.probes_avoided = avoided;
            level_local.persistent_probes = avoided;
            local_stats.accumulate(level_local);
        } else if local_active {
            for seg in &arena.segs {
                let would_walk = |i: usize| {
                    if arena.counts[i] > 0 {
                        u64::from(arena.tails[i])
                    } else {
                        arena.masks[i]
                    }
                };
                if seg.bitmap {
                    level_local.rows_built += seg.len as u64;
                    for i in seg.start..seg.start + seg.len {
                        let r = i - seg.start;
                        level_local.words_anded += (seg.words_per_row - (r + 1) / 64) as u64;
                        level_local.probes_avoided += would_walk(i);
                    }
                } else {
                    for i in seg.start..seg.start + seg.len {
                        *queries += would_walk(i);
                    }
                }
            }
            local_stats.accumulate(level_local);
        } else {
            *queries += arena
                .counts
                .iter()
                .zip(&arena.tails)
                .zip(&arena.masks)
                .map(|((&c, &t), &m)| if c > 0 { u64::from(t) } else { m })
                .sum::<u64>();
        }

        let total = gmc_dpp::try_exclusive_scan_into(exec, &arena.counts, &mut arena.offsets)?;
        if let Some(span) = level_span.as_mut() {
            span.arg("emitted", total as i64);
            span.arg(
                "pruned",
                arena.counts.iter().filter(|&&c| c == 0).count() as i64,
            );
            span.arg("oracle_queries", (*queries - queries_before) as i64);
            if persistent.is_some() {
                span.arg("persistent_probes", level_local.persistent_probes as i64);
            } else if local_active {
                span.arg("bitmap_rows", level_local.rows_built as i64);
                span.arg("probes_avoided", level_local.probes_avoided as i64);
            }
        }
        if total == 0 {
            return Ok(None);
        }

        // Fused OUTPUTNEWCLIQUES: replay the recorded bits — zero oracle
        // queries — and write each emitted entry's sublist tail for the
        // next level (its sublist is exactly its parent's span).
        let mut new_vertex = arena.take_staging();
        let mut new_sublist = arena.take_staging();
        {
            let tails = &arena.tails;
            let counts = &arena.counts;
            let offsets = &arena.offsets;
            let masks = &arena.masks;
            let spill = &arena.spill;
            let spill_offsets = &arena.spill_offsets;
            let vertex_dst = UninitSlice::for_vec(&mut new_vertex, total);
            let sublist_dst = UninitSlice::for_vec(&mut new_sublist, total);
            let tails_dst = UninitSlice::for_vec(&mut arena.next_tails, total);
            // Cost hint: an entry replays exactly `counts[i]` recorded bits.
            let emit_cost = |i: usize| counts[i] as u64 + 1;
            exec.try_for_each_weighted_fused_named(
                "bfs_emit_cliques_fused",
                len,
                emit_cost,
                |i| {
                    if counts[i] == 0 {
                        return;
                    }
                    let end = offsets[i] + counts[i];
                    let mut cursor = offsets[i];
                    let emit = |b: usize, cursor: usize| {
                        // SAFETY: entry i owns offsets[i]..end; the spans tile
                        // 0..total and each slot is written exactly once.
                        unsafe {
                            vertex_dst.write(cursor, vertex_id[i + 1 + b]);
                            sublist_dst.write(cursor, i as u32);
                            tails_dst.write(cursor, (end - 1 - cursor) as u32);
                        }
                    };
                    // Inline bits replay in ascending order, matching the
                    // unfused walk byte for byte.
                    let mut m = masks[i];
                    while m != 0 {
                        emit(m.trailing_zeros() as usize, cursor);
                        m &= m - 1;
                        cursor += 1;
                    }
                    let t = tails[i] as usize;
                    if t > INLINE_BITS {
                        let base = spill_offsets[i];
                        for w in 0..(t - INLINE_BITS).div_ceil(64) {
                            let mut m = spill[base + w];
                            while m != 0 {
                                emit(INLINE_BITS + w * 64 + m.trailing_zeros() as usize, cursor);
                                m &= m - 1;
                                cursor += 1;
                            }
                        }
                    }
                    debug_assert_eq!(cursor, end, "mask replay disagrees with count");
                },
            )?;
            // SAFETY: counts/offsets tile 0..total, so the launch wrote
            // every slot of all three buffers.
            unsafe {
                new_vertex.set_len(total);
                new_sublist.set_len(total);
                arena.next_tails.set_len(total);
            }
        }
        std::mem::swap(&mut arena.tails, &mut arena.next_tails);

        let new_level = CliqueLevel::from_vecs(device.memory(), new_vertex, new_sublist)?;
        level_entries.push(new_level.len());
        list.push_level(new_level);

        if early_exit_enabled {
            // Under the persistent tier the mutual-adjacency check probes
            // the core bitmap too; its word tests feed the same avoided
            // tally so the on/off query invariant keeps holding exactly.
            let clique = if let Some(core) = persistent {
                let mut word_tests = 0u64;
                let clique = try_early_exit(core, list, min_target, &mut word_tests);
                local_stats.probes_avoided += word_tests;
                local_stats.persistent_probes += word_tests;
                clique
            } else {
                try_early_exit(oracle, list, min_target, queries)
            };
            if let Some(clique) = clique {
                return Ok(Some(clique));
            }
        }
    }
}

/// Segments the head level by sublist (a sublist starting at `s` has length
/// `tails[s] + 1`) and plans which sublists take the bitmap fast path:
/// every one at least [`LOCAL_BITS_FORCED_MIN`] long under
/// [`LocalBitsMode::On`], none under `Off`, and under `Auto` only sublists
/// of at least [`LOCAL_BITS_AUTO_MIN`] members where the scalar walk the
/// bitmap replaces provably outweighs the CSR build — the
/// [`min_walk_lower_bound`] at this level's `need`, weighted by
/// [`LOCAL_BITS_PROBE_WEIGHT`] and amortised over the `need` expected
/// remaining levels, must cover `Σ deg(member) + m²`. Returns
/// the total bitmap words to build; zero means the level runs the plain
/// scalar kernel.
fn plan_local_segments(
    graph: &Csr,
    vertex_id: &[u32],
    arena: &mut LevelArena,
    mode: LocalBitsMode,
    need: usize,
) -> usize {
    arena.segs.clear();
    arena.seg_of.clear();
    arena.row_seg.clear();
    if mode == LocalBitsMode::Off {
        return 0;
    }
    let len = vertex_id.len();
    let mut rows = 0usize;
    let mut words = 0usize;
    let mut start = 0usize;
    while start < len {
        let m = arena.tails[start] as usize + 1;
        let bitmap = match mode {
            LocalBitsMode::Off => unreachable!("handled above"),
            // `Persistent` reaching the per-level planner means the core
            // bitmap could not be built (degrade ladder) — behave as the
            // forced per-level tier so the solve keeps its bitmap coverage.
            LocalBitsMode::On | LocalBitsMode::Persistent => m >= LOCAL_BITS_FORCED_MIN,
            LocalBitsMode::Auto => {
                // A sublist worth covering now keeps paying off as its
                // descendants walk toward the bound, so the build cost is
                // amortised over the expected remaining levels (`need`,
                // the ω̂-derived distance to the target) instead of being
                // charged to this level alone. The degree sum only lowers
                // the budget, so reject on the O(1) `m²` term alone before
                // walking member degrees.
                let levels = need.max(1);
                let budget = LOCAL_BITS_PROBE_WEIGHT * min_walk_lower_bound(m, need) * levels;
                m >= LOCAL_BITS_AUTO_MIN && budget >= m * m && {
                    let deg: usize = vertex_id[start..start + m]
                        .iter()
                        .map(|&v| graph.degree(v))
                        .sum();
                    budget >= deg + m * m
                }
            }
        };
        let seg_idx = arena.segs.len() as u32;
        let words_per_row = m.div_ceil(64);
        arena.segs.push(LocalSeg {
            start,
            len: m,
            row0: rows,
            rows_off: words,
            words_per_row,
            bitmap,
        });
        if bitmap {
            rows += m;
            words += m * words_per_row;
            // Rows of this segment all map back to it.
            arena.row_seg.resize(rows, seg_idx);
        }
        arena.seg_of.resize(start + m, seg_idx);
        start += m;
    }
    words
}

/// Charges, sorts and builds the per-sublist local bitmaps planned by
/// [`plan_local_segments`] — with *zero* oracle probes. One launch sorts
/// each bitmap sublist's packed member keys; a second builds each row by
/// galloping the row vertex's sorted CSR neighbor list against the sorted
/// member slice ([`local_row_intersect`]).
fn build_local_bitmaps(
    device: &Device,
    graph: &Csr,
    vertex_id: &[u32],
    arena: &mut LevelArena,
    total_words: usize,
) -> Result<(), DeviceError> {
    let exec = device.exec();
    let total_rows = arena.row_seg.len();
    // Member keys and row words are device-resident between these launches
    // and the count kernel; charge both at the arena's high-water mark.
    arena.charge_local(
        device.memory(),
        (total_rows + total_words) * std::mem::size_of::<u64>(),
    )?;

    // Sort each bitmap sublist's members once. Keys pack vertex then local
    // position (`pack_member`), so rows sort by vertex for the merge and
    // still recover each match's bit position.
    {
        let segs = &arena.segs;
        let members_dst = UninitSlice::for_vec(&mut arena.members, total_rows);
        exec.try_for_each_indexed_named("bfs_local_sort_members", segs.len(), |s| {
            let seg = &segs[s];
            if !seg.bitmap {
                return;
            }
            let mut keys: Vec<u64> = (0..seg.len)
                .map(|p| pack_member(vertex_id[seg.start + p], p as u32))
                .collect();
            keys.sort_unstable();
            for (idx, key) in keys.into_iter().enumerate() {
                // SAFETY: bitmap segments' member spans tile 0..total_rows
                // and each slot is written exactly once.
                unsafe { members_dst.write(seg.row0 + idx, key) };
            }
        })?;
        // SAFETY: every span of 0..total_rows was written by the launch.
        unsafe { arena.members.set_len(total_rows) };
    }

    // Build the rows: thread j exclusively owns row j's word span, OR-ing
    // one bit per adjacent member. Matches arrive in member-vertex order —
    // not bit order — so the span is pre-zeroed and read-modify-written by
    // its owner.
    arena.local_rows.clear();
    arena.local_rows.resize(total_words, 0);
    {
        let segs = &arena.segs;
        let row_seg = &arena.row_seg;
        let members = &arena.members;
        let rows = SharedSlice::new(&mut arena.local_rows);
        // Cost hint: row j's merge walks its member's adjacency list
        // against the segment's members.
        let row_cost = |j: usize| {
            let seg = &segs[row_seg[j] as usize];
            (graph.degree(vertex_id[seg.start + (j - seg.row0)]) + seg.len) as u64
        };
        exec.try_for_each_weighted_named("bfs_local_build_rows", total_rows, row_cost, |j| {
            let seg = &segs[row_seg[j] as usize];
            let r = j - seg.row0;
            let base = seg.rows_off + r * seg.words_per_row;
            let mem = &members[seg.row0..seg.row0 + seg.len];
            local_row_intersect(graph.neighbors(vertex_id[seg.start + r]), mem, |pos| {
                let w = base + pos as usize / 64;
                // SAFETY: row j's words are touched by thread j alone.
                unsafe { rows.write(w, rows.read(w) | (1u64 << (pos % 64))) };
            });
        })?;
    }
    Ok(())
}

/// One entry's scalar bound-directed record walk — the body shared by the
/// plain fused count kernel and the scalar segments of the local-bitmap
/// kernel.
///
/// The walk runs only while `connected + remaining >= need`, so a hopeless
/// entry stops at the first position where pruning is already certain (an
/// entry whose whole tail is shorter than `need` makes no queries at all) —
/// the truncation is safe because such an entry is zeroed by the pruning
/// rule either way. A pruned entry's mask slot is dead (the emit kernel
/// skips it), so the walk stores the entry's actual query count there
/// instead, keeping the host-side tally exact.
#[allow(clippy::too_many_arguments)] // kernel body: mirrors the launch captures
#[inline]
fn scalar_count_walk<O: EdgeOracle + ?Sized>(
    oracle: &O,
    vertex_id: &[u32],
    i: usize,
    t: usize,
    need: usize,
    spill_base: usize,
    counts_dst: &UninitSlice<usize>,
    masks_dst: &UninitSlice<u64>,
    spill_dst: &UninitSlice<u64>,
) {
    let spill_len = t.saturating_sub(INLINE_BITS).div_ceil(64);
    let mut connected = 0usize;
    let mut inline = 0u64;
    let mut word = 0u64;
    let mut flushed = 0usize;
    let mut walked = 0usize;
    while walked < t && connected + (t - walked) >= need {
        let b = walked;
        if oracle.connected(vertex_id[i], vertex_id[i + 1 + b]) {
            connected += 1;
            if b < INLINE_BITS {
                inline |= 1u64 << b;
            } else {
                word |= 1u64 << ((b - INLINE_BITS) % 64);
            }
        }
        walked += 1;
        if b >= INLINE_BITS && (b - INLINE_BITS) % 64 == 63 {
            // SAFETY: entry i owns its spill span; each word is completed,
            // and therefore written, exactly once.
            unsafe { spill_dst.write(spill_base + flushed, word) };
            flushed += 1;
            word = 0;
        }
    }
    for w in flushed..spill_len {
        // SAFETY: the walk flushed words 0..flushed; this writes the
        // trailing partial word plus zeros for the span a bailed walk never
        // reached, exactly once each.
        unsafe { spill_dst.write(spill_base + w, if w == flushed { word } else { 0 }) };
    }
    let count = if connected < need { 0 } else { connected };
    // SAFETY: one write per index. A zero-count entry is never replayed, so
    // its mask slot carries the query tally the truncated walk made.
    unsafe {
        counts_dst.write(i, count);
        masks_dst.write(i, if count == 0 { walked as u64 } else { inline });
    }
}

/// One entry's bitmap fast-path body: entry `i` sits at local position `r`
/// of a bitmap segment, and its tail mask is the segment's row `r` shifted
/// past its own position — tail bit `b` is row bit `r + 1 + b`, so the
/// inline mask and every spill word are 64-wide funnel shifts of the row
/// and the surviving count is one suffix popcount. The row carries exactly
/// `m` member bits, so everything past the tail is already zero and the
/// stored words match the scalar walk's bit for bit. A pruned entry's dead
/// mask slot records the length the scalar bound-directed walk *would*
/// have made ([`scalar_walk_len`]), keeping the probes-avoided tally exact.
#[allow(clippy::too_many_arguments)] // kernel body: mirrors the launch captures
#[inline]
fn bitmap_count_walk(
    row: &[u64],
    r: usize,
    i: usize,
    t: usize,
    need: usize,
    spill_base: usize,
    counts_dst: &UninitSlice<usize>,
    masks_dst: &UninitSlice<u64>,
    spill_dst: &UninitSlice<u64>,
) {
    let spill_len = t.saturating_sub(INLINE_BITS).div_ceil(64);
    let connected = bits::count_ones_from(row, r + 1);
    if connected >= need && connected > 0 {
        // SAFETY: one write per index; entry i owns its spill span and
        // writes each word exactly once.
        unsafe {
            counts_dst.write(i, connected);
            masks_dst.write(i, bits::read_word_at(row, r + 1));
        }
        for w in 0..spill_len {
            let word = bits::read_word_at(row, r + 1 + INLINE_BITS + 64 * w);
            unsafe { spill_dst.write(spill_base + w, word) };
        }
    } else {
        // Pruned (or nothing to emit): dead mask slot carries the scalar
        // walk length for the probes-avoided tally; the spill span is
        // zero-filled exactly as a bailed scalar walk leaves it.
        unsafe {
            counts_dst.write(i, 0);
            masks_dst.write(i, scalar_walk_len(row, r + 1, t, need) as u64);
        }
        for w in 0..spill_len {
            unsafe { spill_dst.write(spill_base + w, 0) };
        }
    }
}

/// How many tail positions the scalar bound-directed walk of this entry
/// would probe before stopping, reconstructed from the entry's bitmap row
/// (tail bit `b` = row bit `start_bit + b`). The walk stops right after
/// the miss that makes the bound unreachable — the `(t - need + 1)`-th zero
/// bit — and never starts when even a full tail cannot reach `need`.
fn scalar_walk_len(row: &[u64], start_bit: usize, t: usize, need: usize) -> usize {
    if need > t {
        return 0;
    }
    let mut remaining = t - need + 1;
    let mut bit = 0usize;
    while bit < t {
        let span = (t - bit).min(64) as u32;
        let misses = !bits::read_word_at(row, start_bit + bit) & bits::prefix_mask(span);
        let zeros = misses.count_ones() as usize;
        if zeros >= remaining {
            // Select the `remaining`-th zero: the walk ends on it.
            let mut w = misses;
            for _ in 1..remaining {
                w &= w - 1;
            }
            return bit + w.trailing_zeros() as usize + 1;
        }
        remaining -= zeros;
        bit += span as usize;
    }
    t // fewer misses than the cutoff: the walk runs the whole tail
}

/// The unfused level loop — the seed pipeline kept verbatim as the ablation
/// baseline: the output kernel re-walks every unpruned sublist tail
/// (repeating the count kernel's oracle queries), the scan is two-phase,
/// and each level allocates fresh buffers.
#[allow(clippy::too_many_arguments)]
fn grow_unfused<O: EdgeOracle + ?Sized>(
    device: &Device,
    oracle: &O,
    list: &mut CliqueList,
    level_entries: &mut Vec<usize>,
    min_target: u32,
    early_exit_enabled: bool,
    arena: &mut LevelArena,
    queries: &mut u64,
) -> Result<Option<Vec<u32>>, DeviceError> {
    let exec = device.exec();
    let tracer = exec.tracer();
    loop {
        // Same per-level cancellation poll as the fused loop.
        exec.check_cancelled()?;
        let head = list.head().expect("list is non-empty");
        let k = list.clique_size_at(list.num_levels() - 1); // entries are k-cliques
        let len = head.len();
        assert!(len < u32::MAX as usize, "level exceeds u32 indexing");
        let vertex_id = head.vertex_ids();
        let sublist_id = head.sublist_ids();
        let mut level_span = tracer
            .is_enabled()
            .then(|| tracer.span_with("bfs_level", &[("k", k as i64), ("entries", len as i64)]));
        let queries_before = *queries;

        // Analytic query accounting: the count walk visits exactly the
        // sublist tail of every entry.
        arena.set_tails_from_sublists(sublist_id);
        *queries += arena.tails.iter().map(|&t| u64::from(t)).sum::<u64>();

        // COUNTCLIQUES: adjacent successors within the sublist, pruned
        // against the target.
        let counts: Vec<usize> = exec.try_map_indexed_named("bfs_count_cliques", len, |i| {
            let mut connected = 0usize;
            let mut j = i + 1;
            while j < len && sublist_id[j] == sublist_id[i] {
                if oracle.connected(vertex_id[i], vertex_id[j]) {
                    connected += 1;
                }
                j += 1;
            }
            if k + connected < min_target as usize {
                0
            } else {
                connected
            }
        })?;

        let (offsets, total) = gmc_dpp::try_exclusive_scan(exec, &counts)?;

        // The output kernel re-walks the full tail of every unpruned entry.
        *queries += arena
            .tails
            .iter()
            .zip(&counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&t, _)| u64::from(t))
            .sum::<u64>();

        if let Some(span) = level_span.as_mut() {
            span.arg("emitted", total as i64);
            span.arg("pruned", counts.iter().filter(|&&c| c == 0).count() as i64);
            span.arg("oracle_queries", (*queries - queries_before) as i64);
        }
        if total == 0 {
            return Ok(None);
        }

        // OUTPUTNEWCLIQUES: emit each entry's adjacent successors.
        let mut new_vertex = vec![0u32; total];
        let mut new_sublist = vec![0u32; total];
        {
            let vertex_shared = SharedSlice::new(&mut new_vertex);
            let sublist_shared = SharedSlice::new(&mut new_sublist);
            // Cost hint: an unpruned entry re-walks its whole sublist tail.
            let emit_cost = |i: usize| {
                if counts[i] == 0 {
                    1
                } else {
                    u64::from(arena.tails[i]) + 1
                }
            };
            exec.try_for_each_weighted_named("bfs_output_new_cliques", len, emit_cost, |i| {
                if counts[i] == 0 {
                    return;
                }
                let mut cursor = offsets[i];
                let mut j = i + 1;
                while j < len && sublist_id[j] == sublist_id[i] {
                    if oracle.connected(vertex_id[i], vertex_id[j]) {
                        // SAFETY: entry i owns offsets[i]..offsets[i]+counts[i].
                        unsafe {
                            vertex_shared.write(cursor, vertex_id[j]);
                            sublist_shared.write(cursor, i as u32);
                        }
                        cursor += 1;
                    }
                    j += 1;
                }
            })?;
        }

        let new_level = CliqueLevel::from_vecs(device.memory(), new_vertex, new_sublist)?;
        level_entries.push(new_level.len());
        list.push_level(new_level);

        if early_exit_enabled {
            if let Some(clique) = try_early_exit(oracle, list, min_target, queries) {
                return Ok(Some(clique));
            }
        }
    }
}

/// Checks whether the head level is a single, mutually-adjacent sublist; if
/// so, returns `chain ∪ candidates` — provably the unique maximum clique
/// still reachable. Oracle calls are tallied into `queries`.
fn try_early_exit<O: EdgeOracle + ?Sized>(
    oracle: &O,
    list: &CliqueList,
    min_target: u32,
    queries: &mut u64,
) -> Option<Vec<u32>> {
    let head = list.head()?;
    let len = head.len();
    if len == 0 || len > EARLY_EXIT_CHECK_LIMIT {
        return None;
    }
    let sublist_id = head.sublist_ids();
    if sublist_id.iter().any(|&s| s != sublist_id[0]) {
        return None; // more than one sublist survives
    }
    let candidates = head.vertex_ids();
    for (i, &u) in candidates.iter().enumerate() {
        for &v in &candidates[i + 1..] {
            *queries += 1;
            if !oracle.connected(u, v) {
                return None;
            }
        }
    }
    // Chain = the clique of the shared parent entry.
    let head_idx = list.num_levels() - 1;
    let mut clique = if head_idx == 0 {
        vec![sublist_id[0]] // level 0 packs the source vertex directly
    } else {
        list.read_clique(head_idx - 1, sublist_id[0] as usize)
    };
    clique.extend_from_slice(candidates);
    if (clique.len() as u32) < min_target {
        return None;
    }
    Some(clique)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidateOrder;
    use crate::setup::build_two_clique_list;
    use gmc_graph::generators;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn run_with(
        graph: &Csr,
        lower: u32,
        early_exit: bool,
        fused: bool,
        local: LocalBitsMode,
    ) -> ExpansionOutcome {
        let device = Device::unlimited();
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            lower,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let mut arena = LevelArena::new();
        expand(
            &device,
            graph,
            graph,
            level0,
            lower.max(2),
            early_exit,
            fused,
            local,
            None,
            &mut arena,
        )
        .unwrap()
    }

    fn run(graph: &Csr, lower: u32, early_exit: bool) -> ExpansionOutcome {
        run_with(graph, lower, early_exit, true, LocalBitsMode::Auto)
    }

    fn normalize(mut cliques: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut cliques {
            c.sort_unstable();
        }
        cliques.sort();
        cliques
    }

    /// Wraps an oracle and counts actual `connected` calls, to pin the
    /// analytic `oracle_queries` tally to reality.
    struct CountingOracle<'a> {
        inner: &'a Csr,
        calls: AtomicU64,
    }

    impl EdgeOracle for CountingOracle<'_> {
        fn connected(&self, u: u32, v: u32) -> bool {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.connected(u, v)
        }

        fn footprint_bytes(&self) -> usize {
            self.inner.footprint_bytes()
        }
    }

    #[test]
    fn triangle_with_tail() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 3);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn enumerates_multiple_maximum_cliques() {
        // Two disjoint triangles.
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 3);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn complete_graph_has_one_maximum() {
        let g = generators::complete(6);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 6);
        assert_eq!(out.cliques.len(), 1);
        assert_eq!(normalize(out.cliques), vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn overlapping_cliques_enumerated_once_each() {
        // K4 {0,1,2,3} and K4 {2,3,4,5} sharing an edge.
        let mut edges = Vec::new();
        for set in [[0u32, 1, 2, 3], [2, 3, 4, 5]] {
            for (i, &u) in set.iter().enumerate() {
                for &v in &set[i + 1..] {
                    edges.push((u, v));
                }
            }
        }
        let g = Csr::from_edges(6, &edges);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 4);
        assert_eq!(
            normalize(out.cliques),
            vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]]
        );
    }

    #[test]
    fn pruning_with_valid_bound_preserves_enumeration() {
        let g = generators::gnp(60, 0.2, 5);
        let unpruned = run(&g, 0, false);
        let pruned = run(&g, unpruned.clique_size as u32, false);
        assert_eq!(pruned.clique_size, unpruned.clique_size);
        assert_eq!(normalize(pruned.cliques), normalize(unpruned.cliques));
        // And pruning must not inflate the intermediate levels.
        for (a, b) in pruned.level_entries.iter().zip(&unpruned.level_entries) {
            assert!(a <= b);
        }
    }

    #[test]
    fn early_exit_finds_unique_maximum() {
        // A 5-clique planted in a sparse graph: after a couple of levels the
        // survivors collapse to one sublist.
        let base = generators::gnp(80, 0.03, 9);
        let (g, members) = generators::plant_clique(&base, 5, 10);
        let without = run(&g, 0, false);
        let with = run(&g, 0, true);
        assert_eq!(with.clique_size, without.clique_size);
        assert_eq!(normalize(with.cliques.clone()), normalize(without.cliques));
        if with.early_exit {
            assert_eq!(with.cliques.len(), 1);
            let mut c = with.cliques[0].clone();
            c.sort_unstable();
            assert_eq!(c, members);
        }
    }

    #[test]
    fn empty_level_yields_no_cliques() {
        let g = Csr::empty(4);
        let out = run(&g, 0, false);
        assert_eq!(out.clique_size, 0);
        assert!(out.cliques.is_empty());
        assert_eq!(out.oracle_queries, 0);
    }

    #[test]
    fn min_target_above_omega_returns_nothing() {
        let device = Device::unlimited();
        let g = generators::complete(4);
        let setup = build_two_clique_list(
            device.exec(),
            &g,
            0,
            &g.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::Index,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        // Ask for cliques of size ≥ 5 in a K4.
        let mut arena = LevelArena::new();
        let out = expand(
            &device,
            &g,
            &g,
            level0,
            5,
            false,
            true,
            LocalBitsMode::Auto,
            None,
            &mut arena,
        )
        .unwrap();
        assert!(out.cliques.is_empty());
        assert_eq!(out.clique_size, 0);
    }

    #[test]
    fn oom_propagates_from_level_growth() {
        // K20 with a tiny budget: level 0 fits, deeper levels cannot.
        let g = generators::complete(20);
        for fused in [true, false] {
            let device = Device::with_memory_budget(8 * 190 + 64);
            let setup = build_two_clique_list(
                device.exec(),
                &g,
                0,
                &g.degrees(),
                crate::config::OrientationRule::Degree,
                CandidateOrder::Index,
                crate::config::SublistBound::Length,
            );
            let level0 =
                CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
            let mut arena = LevelArena::new();
            let err = expand(
                &device,
                &g,
                &g,
                level0,
                2,
                false,
                fused,
                LocalBitsMode::Auto,
                None,
                &mut arena,
            );
            assert!(err.is_err(), "expected OOM (fused={fused})");
            // The failed expansion must leave nothing charged — the level
            // charges and any spill charge are all released on the way out.
            assert_eq!(device.memory().live(), 0, "leak (fused={fused})");
        }
    }

    #[test]
    fn level_counts_are_monotone_then_shrink() {
        // On a complete graph, level entries follow binomial growth/decay:
        // C(n,2), 1·C(n,3)... the exact sequence is Σ over entries; just
        // check the first level matches C(n,2) and the last level is 1.
        let g = generators::complete(7);
        let out = run(&g, 0, false);
        assert_eq!(out.level_entries[0], 21);
        assert_eq!(*out.level_entries.last().unwrap(), 1);
    }

    #[test]
    fn fused_matches_unfused_exactly() {
        // The emit kernel replays bits in ascending order — the same order
        // as the unfused re-walk — so even the raw read-out must agree.
        // Every local-bits mode must be bit-identical too.
        for seed in 0..6 {
            let g = generators::gnp(50, 0.18, seed);
            for early_exit in [false, true] {
                let unfused = run_with(&g, 0, early_exit, false, LocalBitsMode::Off);
                // `Persistent` here runs without a core bitmap handle (the
                // degrade path), which must behave as forced-on bitmaps.
                for local in [
                    LocalBitsMode::Off,
                    LocalBitsMode::Auto,
                    LocalBitsMode::On,
                    LocalBitsMode::Persistent,
                ] {
                    let fused = run_with(&g, 0, early_exit, true, local);
                    let tag = format!("seed {seed} early_exit {early_exit} local {local}");
                    assert_eq!(fused.clique_size, unfused.clique_size, "{tag}");
                    assert_eq!(fused.cliques, unfused.cliques, "{tag}");
                    assert_eq!(fused.level_entries, unfused.level_entries, "{tag}");
                    assert_eq!(fused.early_exit, unfused.early_exit, "{tag}");
                }
            }
        }
    }

    #[test]
    fn local_bits_tallies_reconcile_with_scalar() {
        // Forced-on bitmaps make zero oracle calls for covered segments and
        // reconstruct the walk the scalar kernel would have made, so the
        // on/off tallies must reconcile to the probe: on + avoided == off.
        for (name, g) in [
            ("dense", generators::gnp(60, 0.4, 3)),
            ("sparse", generators::gnp(80, 0.05, 4)),
            ("complete", generators::complete(10)),
        ] {
            let on = run_with(&g, 0, false, true, LocalBitsMode::On);
            let off = run_with(&g, 0, false, true, LocalBitsMode::Off);
            assert_eq!(off.local_bits, LocalBitsStats::default(), "{name}");
            assert_eq!(
                on.oracle_queries + on.local_bits.probes_avoided,
                off.oracle_queries,
                "{name}"
            );
            assert!(on.local_bits.rows_built > 0, "{name}");
            assert!(on.local_bits.words_anded > 0, "{name}");
            assert_eq!(on.cliques, off.cliques, "{name}");
        }
    }

    fn counted(graph: &Csr, fused: bool, local: LocalBitsMode) -> (ExpansionOutcome, u64) {
        let device = Device::unlimited();
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            0,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let oracle = CountingOracle {
            inner: graph,
            calls: AtomicU64::new(0),
        };
        let mut arena = LevelArena::new();
        let out = expand(
            &device, graph, &oracle, level0, 2, false, fused, local, None, &mut arena,
        )
        .unwrap();
        (out, oracle.calls.load(Ordering::Relaxed))
    }

    #[test]
    fn persistent_bitmap_matches_scalar_and_never_rebuilds() {
        for (tag, g, early_exit) in [
            ("gnp-dense", generators::gnp(60, 0.3, 2), true),
            ("gnp-sparse", generators::gnp(90, 0.06, 5), false),
            ("complete", generators::complete(12), true),
        ] {
            let device = Device::unlimited();
            let keep = vec![true; g.num_vertices()];
            let core = CoreBitmap::try_build(device.exec(), &g, &keep).unwrap();
            let run = |persistent: Option<&CoreBitmap>, local: LocalBitsMode| {
                let setup = build_two_clique_list(
                    device.exec(),
                    &g,
                    0,
                    &g.degrees(),
                    crate::config::OrientationRule::Degree,
                    CandidateOrder::DegreeAscending,
                    crate::config::SublistBound::Length,
                );
                let level0 =
                    CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id)
                        .unwrap();
                let oracle = CountingOracle {
                    inner: &g,
                    calls: AtomicU64::new(0),
                };
                let mut arena = LevelArena::new();
                let out = expand(
                    &device, &g, &oracle, level0, 2, early_exit, true, local, persistent,
                    &mut arena,
                )
                .unwrap();
                (out, oracle.calls.load(Ordering::Relaxed))
            };
            let (off, _) = run(None, LocalBitsMode::Off);
            let (per, actual) = run(Some(&core), LocalBitsMode::Persistent);
            assert_eq!(per.cliques, off.cliques, "{tag}");
            assert_eq!(per.level_entries, off.level_entries, "{tag}");
            assert_eq!(per.early_exit, off.early_exit, "{tag}");
            // The edge oracle is never touched on the persistent path...
            assert_eq!(actual, 0, "{tag}");
            assert_eq!(per.oracle_queries, actual, "{tag}");
            // ...every probe it would have made is a tallied word test...
            assert_eq!(
                per.oracle_queries + per.local_bits.probes_avoided,
                off.oracle_queries,
                "{tag}"
            );
            assert_eq!(
                per.local_bits.persistent_probes, per.local_bits.probes_avoided,
                "{tag}"
            );
            // ...and nothing is ever rebuilt per level.
            assert_eq!(per.local_bits.rows_built, 0, "{tag}");
            assert_eq!(per.local_bits.words_anded, 0, "{tag}");
        }
    }

    #[test]
    fn persistent_bitmap_covers_spill_tails_and_pruned_vertices() {
        // A hub with 70 successors (tails cross the inline/spill seam) and
        // a pruned appendix vertex, so the core bitmap is built over a
        // strict subset of the graph.
        let mut edges: Vec<(u32, u32)> = (1..=70).map(|v| (0u32, v)).collect();
        edges.extend([(1, 2), (1, 3), (2, 3), (70, 71)]);
        let g = Csr::from_edges(72, &edges);
        let device = Device::unlimited();
        let mut keep = vec![true; 72];
        keep[71] = false; // the appendix is pruned, rows must skip it
        let core = CoreBitmap::try_build(device.exec(), &g, &keep).unwrap();
        let mut arena = LevelArena::new();
        let level0 = |device: &Device| {
            CliqueLevel::from_vecs(device.memory(), (1..=70).collect(), vec![0; 70]).unwrap()
        };
        let off = expand(
            &device,
            &g,
            &g,
            level0(&device),
            2,
            false,
            true,
            LocalBitsMode::Off,
            None,
            &mut arena,
        )
        .unwrap();
        let per = expand(
            &device,
            &g,
            &g,
            level0(&device),
            2,
            false,
            true,
            LocalBitsMode::Persistent,
            Some(&core),
            &mut arena,
        )
        .unwrap();
        assert_eq!(per.cliques, vec![vec![0, 1, 2, 3]]);
        assert_eq!(per.cliques, off.cliques);
        assert_eq!(per.level_entries, off.level_entries);
        assert_eq!(
            per.oracle_queries + per.local_bits.probes_avoided,
            off.oracle_queries
        );
        assert_eq!(per.local_bits.rows_built, 0);
        assert_eq!(device.memory().live(), 0);
    }

    #[test]
    fn oracle_query_counter_is_exact_and_fusion_skips_the_rewalk() {
        let g = generators::gnp(100, 0.3, 7);
        let (fused, fused_actual) = counted(&g, true, LocalBitsMode::Off);
        let (unfused, unfused_actual) = counted(&g, false, LocalBitsMode::Off);
        // The analytic tally must match the oracle's own call count.
        assert_eq!(fused.oracle_queries, fused_actual);
        assert_eq!(unfused.oracle_queries, unfused_actual);
        // On a dense graph most entries survive pruning, so the unfused
        // output kernel repeats nearly the whole count walk: fusion must
        // save at least 40% of the queries.
        assert!(
            fused.oracle_queries * 10 <= unfused.oracle_queries * 6,
            "fused {} vs unfused {}",
            fused.oracle_queries,
            unfused.oracle_queries
        );
    }

    #[test]
    fn local_bits_counter_is_exact_and_skips_covered_probes() {
        let g = generators::gnp(100, 0.3, 7);
        let (off, off_actual) = counted(&g, true, LocalBitsMode::Off);
        for local in [LocalBitsMode::Auto, LocalBitsMode::On] {
            let (on, on_actual) = counted(&g, true, local);
            // The analytic tally stays exact with bitmaps active, and the
            // avoided counter accounts for every skipped probe.
            assert_eq!(on.oracle_queries, on_actual, "{local}");
            assert_eq!(
                on.oracle_queries + on.local_bits.probes_avoided,
                off.oracle_queries,
                "{local}"
            );
            assert_eq!(on.cliques, off.cliques, "{local}");
        }
        // Forced on, every multi-entry sublist is covered: the bitmaps must
        // eliminate the bulk of the scalar probes on a dense graph (the
        // leftovers are early-exit checks and single-entry sublists).
        let (on, on_actual) = counted(&g, true, LocalBitsMode::On);
        assert!(on_actual < off_actual);
        assert!(
            on.local_bits.probes_avoided * 10 >= off.oracle_queries * 8,
            "on avoided {} of {}",
            on.local_bits.probes_avoided,
            off.oracle_queries
        );
    }

    #[test]
    fn auto_heuristic_covers_hub_sublists() {
        // A Facebook-like shape in miniature: a few 40-member sublists well
        // past the Auto threshold dominate the probe count, plus a couple
        // of short scalar sublists. Auto must cover the hubs and so avoid
        // most probes.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut vertex_id = Vec::new();
        let mut sublist_id = Vec::new();
        for hub in 0..3u32 {
            let base = 10 + hub * 40;
            for v in 0..40u32 {
                edges.push((hub, base + v));
                vertex_id.push(base + v);
                sublist_id.push(hub);
            }
            // Internal edges give each hub sublist depth to expand.
            for u in 0..6 {
                for v in (u + 1)..6 {
                    edges.push((base + u, base + v));
                }
            }
        }
        // Two short scalar sublists (a shared triangle over 3, 4, 5).
        edges.extend([(3, 4), (3, 5), (4, 5)]);
        for (s, v) in [(3u32, 4u32), (3, 5), (4, 5)] {
            vertex_id.push(v);
            sublist_id.push(s);
        }
        let g = Csr::from_edges(130, &edges);
        let run = |local: LocalBitsMode| {
            let device = Device::unlimited();
            let level0 =
                CliqueLevel::from_vecs(device.memory(), vertex_id.clone(), sublist_id.clone())
                    .unwrap();
            let oracle = CountingOracle {
                inner: &g,
                calls: AtomicU64::new(0),
            };
            let mut arena = LevelArena::new();
            let out = expand(
                &device, &g, &oracle, level0, 2, false, true, local, None, &mut arena,
            )
            .unwrap();
            (out, oracle.calls.load(Ordering::Relaxed))
        };
        let (auto, auto_actual) = run(LocalBitsMode::Auto);
        let (off, _) = run(LocalBitsMode::Off);
        assert_eq!(auto.oracle_queries, auto_actual);
        assert_eq!(auto.cliques, off.cliques);
        assert!(auto.local_bits.rows_built >= 120, "hub sublists covered");
        assert!(
            auto.local_bits.probes_avoided * 10 >= off.oracle_queries * 8,
            "auto avoided {} of {}",
            auto.local_bits.probes_avoided,
            off.oracle_queries
        );
    }

    #[test]
    fn spill_masks_cover_tails_beyond_inline_bits() {
        // A hub with 70 successors in one sublist: tails reach 69 > 64, so
        // the inline mask overflows into the spill buffer. The only deep
        // structure is the K4 {0,1,2,3}.
        let mut edges: Vec<(u32, u32)> = (1..=70).map(|v| (0u32, v)).collect();
        edges.extend([(1, 2), (1, 3), (2, 3)]);
        let g = Csr::from_edges(71, &edges);
        let device = Device::unlimited();
        let mut arena = LevelArena::new();
        let level0 = |device: &Device| {
            CliqueLevel::from_vecs(device.memory(), (1..=70).collect(), vec![0; 70]).unwrap()
        };
        let unfused = expand(
            &device,
            &g,
            &g,
            level0(&device),
            2,
            false,
            false,
            LocalBitsMode::Off,
            None,
            &mut arena,
        )
        .unwrap();
        // The 70-entry sublist crosses the inline/spill boundary for both
        // the scalar walk and the bitmap fast path (Auto and On both cover
        // it: 70 ≥ 32 and the hub members are degree-light).
        for local in [LocalBitsMode::Off, LocalBitsMode::Auto, LocalBitsMode::On] {
            let fused = expand(
                &device,
                &g,
                &g,
                level0(&device),
                2,
                false,
                true,
                local,
                None,
                &mut arena,
            )
            .unwrap();
            assert_eq!(fused.clique_size, 4, "{local}");
            assert_eq!(fused.cliques, vec![vec![0, 1, 2, 3]], "{local}");
            assert_eq!(fused.cliques, unfused.cliques, "{local}");
            assert_eq!(fused.level_entries, unfused.level_entries, "{local}");
            if local != LocalBitsMode::Off {
                assert!(fused.local_bits.rows_built >= 70, "{local}");
            }
            assert_eq!(
                device.memory().live(),
                0,
                "spill/local charges must be released ({local})"
            );
        }
    }

    #[test]
    fn local_bits_handles_word_boundary_sublists() {
        // Sublist lengths straddling every interesting boundary: the forced
        // minimum, the Auto threshold, and the 64-bit word edges (63/64/65
        // tails exercise the inline/spill seam inside the bitmap shifts).
        for n in [2usize, 31, 32, 33, 63, 64, 65, 66, 129] {
            let mut edges: Vec<(u32, u32)> = (1..=n as u32).map(|v| (0u32, v)).collect();
            // A clique among the first few successors gives depth.
            let k = n.min(5) as u32;
            for u in 1..=k {
                for v in (u + 1)..=k {
                    edges.push((u, v));
                }
            }
            let g = Csr::from_edges(n + 1, &edges);
            let device = Device::unlimited();
            let mut arena = LevelArena::new();
            let level0 = |device: &Device| {
                CliqueLevel::from_vecs(device.memory(), (1..=n as u32).collect(), vec![0; n])
                    .unwrap()
            };
            let off = expand(
                &device,
                &g,
                &g,
                level0(&device),
                2,
                false,
                true,
                LocalBitsMode::Off,
                None,
                &mut arena,
            )
            .unwrap();
            let on = expand(
                &device,
                &g,
                &g,
                level0(&device),
                2,
                false,
                true,
                LocalBitsMode::On,
                None,
                &mut arena,
            )
            .unwrap();
            assert_eq!(on.cliques, off.cliques, "n={n}");
            assert_eq!(on.level_entries, off.level_entries, "n={n}");
            assert_eq!(
                on.oracle_queries + on.local_bits.probes_avoided,
                off.oracle_queries,
                "n={n}"
            );
            assert_eq!(device.memory().live(), 0, "n={n}");
        }
    }

    #[test]
    fn local_charges_are_released_on_oom_and_success() {
        // Sweep budgets from starvation to plenty with bitmaps forced on:
        // whether the run OOMs (anywhere — level growth, spill, or the
        // local-bitmap charge) or completes, nothing may stay charged.
        let g = generators::complete(16);
        let reference = run_with(&g, 0, false, true, LocalBitsMode::Off);
        for budget in (64..6000).step_by(97) {
            let device = Device::with_memory_budget(budget);
            let setup = build_two_clique_list(
                device.exec(),
                &g,
                0,
                &g.degrees(),
                crate::config::OrientationRule::Degree,
                CandidateOrder::Index,
                crate::config::SublistBound::Length,
            );
            let Ok(level0) =
                CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id)
            else {
                continue; // level 0 itself does not fit this budget
            };
            let mut arena = LevelArena::new();
            let out = expand(
                &device,
                &g,
                &g,
                level0,
                2,
                false,
                true,
                LocalBitsMode::On,
                None,
                &mut arena,
            );
            if let Ok(out) = out {
                assert_eq!(out.cliques, reference.cliques, "budget {budget}");
            }
            assert_eq!(device.memory().live(), 0, "leak at budget {budget}");
        }
    }

    #[test]
    fn fused_pipeline_saves_launches() {
        let g = generators::gnp(60, 0.25, 11);
        let launches = |fused: bool| {
            let device = Device::new(4, usize::MAX);
            // Force chunked dispatch even for these small test levels, so
            // the scans actually launch (below the sequential grid limit
            // both scan variants take a zero-launch host path).
            device.exec().set_sequential_grid_limit(1);
            let base = device.exec().stats();
            run_on(&device, &g, fused);
            device.exec().stats().since(&base)
        };
        let fused = launches(true);
        let unfused = launches(false);
        // Count + emit run as fused launches; the single-pass scan replaces
        // the two-phase scan, dropping one launch per level.
        assert!(fused.fused_launches > 0);
        assert_eq!(unfused.fused_launches, 0);
        assert!(
            fused.launches < unfused.launches,
            "fused {} vs unfused {}",
            fused.launches,
            unfused.launches
        );
    }

    fn run_on(device: &Device, graph: &Csr, fused: bool) -> ExpansionOutcome {
        let setup = build_two_clique_list(
            device.exec(),
            graph,
            0,
            &graph.degrees(),
            crate::config::OrientationRule::Degree,
            CandidateOrder::DegreeAscending,
            crate::config::SublistBound::Length,
        );
        let level0 =
            CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id).unwrap();
        let mut arena = LevelArena::new();
        expand(
            device,
            graph,
            graph,
            level0,
            2,
            false,
            fused,
            LocalBitsMode::Auto,
            None,
            &mut arena,
        )
        .unwrap()
    }

    #[test]
    fn arena_reuse_across_expansions_is_clean() {
        // The same arena serves back-to-back expansions (as windows do):
        // results must not depend on what the previous run left behind.
        let mut arena = LevelArena::new();
        let device = Device::unlimited();
        let mut reference = Vec::new();
        for round in 0..3 {
            for seed in [13, 29] {
                let g = generators::gnp(40, 0.25, seed);
                let setup = build_two_clique_list(
                    device.exec(),
                    &g,
                    0,
                    &g.degrees(),
                    crate::config::OrientationRule::Degree,
                    CandidateOrder::DegreeAscending,
                    crate::config::SublistBound::Length,
                );
                let level0 =
                    CliqueLevel::from_vecs(device.memory(), setup.vertex_id, setup.sublist_id)
                        .unwrap();
                let out = expand(
                    &device,
                    &g,
                    &g,
                    level0,
                    2,
                    false,
                    true,
                    LocalBitsMode::On,
                    None,
                    &mut arena,
                )
                .unwrap();
                if round == 0 {
                    reference.push(out.cliques);
                } else {
                    assert_eq!(out.cliques, reference[(seed == 29) as usize], "seed {seed}");
                }
            }
        }
        assert_eq!(device.memory().live(), 0);
    }
}
