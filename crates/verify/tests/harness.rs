//! End-to-end tests of the verification harness: a clean fixed-seed run
//! against the real solvers, replay of the repo's regression corpus, and —
//! the harness's own acceptance test — proof that a deliberately broken
//! solver (the test-only [`Sabotage`] hook) is caught, shrunk to a tiny
//! reproducer, persisted, and re-caught on replay.

use gmc_verify::{corpus, run, Sabotage, VerifyConfig};
use std::path::PathBuf;
use std::time::Duration;

/// The repo-level `tests/regressions/` corpus, located relative to this
/// crate so the test works from any working directory.
fn repo_regressions() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/regressions")
}

fn temp_corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmc-verify-harness-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fixed_seed_run_is_clean_and_replays_the_repo_corpus() {
    let config = VerifyConfig {
        seed: 0xBEEF,
        budget: Duration::ZERO,
        max_cases: Some(10),
        regressions_dir: Some(repo_regressions()),
        persist_failures: false,
        ..VerifyConfig::default()
    };
    let report = run(&config);
    assert!(
        report.is_clean(),
        "harness found real disagreements: {:#?}",
        report.failures
    );
    assert_eq!(report.cases, 10);
    assert!(
        report.replayed >= 3,
        "expected the seed corpus to be replayed, got {}",
        report.replayed
    );
    assert!(report.differential_checks > 0);
    assert!(report.metamorphic_checks > 0);
    assert!(report.solves > report.cases);
}

#[test]
fn replay_only_skips_generation() {
    let config = VerifyConfig {
        replay_only: true,
        regressions_dir: Some(repo_regressions()),
        persist_failures: false,
        ..VerifyConfig::default()
    };
    let report = run(&config);
    assert!(report.is_clean(), "{:#?}", report.failures);
    assert_eq!(report.cases, 0);
    assert!(report.replayed >= 3);
}

/// The acceptance test: each sabotage mode must be caught by the
/// differential lanes, shrunk to a ≤ 12-vertex reproducer, persisted to
/// the corpus, and re-caught by a replay-only run — then a replay with the
/// honest solver passes, proving the corpus file documents a fixed bug.
#[test]
fn sabotage_is_caught_shrunk_persisted_and_replayed() {
    for (tag, sabotage, max_vertices) in [
        ("drop-ties", Sabotage::DropTies, 2),
        ("under-report", Sabotage::UnderReport, 3),
    ] {
        let dir = temp_corpus(tag);
        let config = VerifyConfig {
            seed: 0xABAD_1DEA,
            budget: Duration::ZERO,
            max_cases: Some(40),
            max_failures: 2,
            regressions_dir: Some(dir.clone()),
            persist_failures: true,
            sabotage: Some(sabotage),
            ..VerifyConfig::default()
        };
        let report = run(&config);
        assert!(
            !report.failures.is_empty(),
            "{tag}: sabotaged solver was not caught in {} cases",
            report.cases
        );
        for failure in &report.failures {
            assert!(
                failure.check.starts_with("differential:"),
                "{tag}: wrong check caught it: {}",
                failure.check
            );
            assert!(
                failure.graph.n <= 12,
                "{tag}: reproducer not shrunk enough: {} vertices ({:?})",
                failure.graph.n,
                failure.graph
            );
            // The strongest shrink guarantee this suite asserts: the
            // known-minimal reproducer for each mode.
            assert!(
                failure.graph.n <= max_vertices,
                "{tag}: expected a ≤ {max_vertices}-vertex reproducer, got {:?}",
                failure.graph
            );
            let path = failure.persisted.as_ref().expect("failure not persisted");
            assert!(path.exists(), "{tag}: {} missing", path.display());
        }

        // The persisted corpus re-catches the broken solver on replay...
        let replay_broken = run(&VerifyConfig {
            replay_only: true,
            regressions_dir: Some(dir.clone()),
            persist_failures: false,
            sabotage: Some(sabotage),
            ..VerifyConfig::default()
        });
        assert!(
            !replay_broken.failures.is_empty(),
            "{tag}: replay did not re-catch the sabotaged solver"
        );
        assert!(replay_broken
            .failures
            .iter()
            .all(|f| f.category.starts_with("replay:")));

        // ...and passes once the solver is honest again.
        let replay_fixed = run(&VerifyConfig {
            replay_only: true,
            regressions_dir: Some(dir.clone()),
            persist_failures: false,
            sabotage: None,
            ..VerifyConfig::default()
        });
        assert!(
            replay_fixed.is_clean(),
            "{tag}: honest solver fails the persisted cases: {:#?}",
            replay_fixed.failures
        );
        assert!(replay_fixed.replayed >= 1);

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn repo_corpus_files_parse_and_match_their_advertised_structure() {
    let cases = corpus::load_all(&repo_regressions());
    assert!(cases.len() >= 3, "seed corpus missing");
    for (path, graph) in &cases {
        assert!(graph.n > 0, "{}: empty graph", path.display());
        // Every seed case was chosen for tie structure: the solver must
        // report more than one maximum clique on each.
        let (omega, cliques) = gmc_verify::lanes::oracle(&graph.to_csr());
        assert!(omega >= 1);
        assert!(
            cliques.len() > 1,
            "{}: expected a tie, found {} maximum cliques",
            path.display(),
            cliques.len()
        );
    }
}
