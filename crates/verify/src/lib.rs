//! # gmc-verify: differential + metamorphic fuzzing for the clique solvers
//!
//! The workspace's central correctness claim is that every solver variant —
//! breadth-first expansion under any combination of fused/unfused pipeline,
//! local-bits tier, launch schedule, windowing mode and worker count, the
//! PMC-style depth-first baseline, and the sequential reference oracle —
//! computes the *same* maximum cliques. The hand-written property tests in
//! `tests/` spot-check pairs of configurations; this crate turns the claim
//! into standing tooling:
//!
//! * **Generation** ([`gen`]) — seeded adversarial graphs: planted cliques,
//!   near-regular cores (Moon–Moser multipartite), wheels, disjoint unions,
//!   complements, and corpus-category mutants, all driven by
//!   [`gmc_dpp::Rng`].
//! * **Differential lanes** ([`lanes`]) — each case runs through a seeded
//!   selection of BFS configurations plus `gmc_pmc` and the
//!   [`ReferenceEnumerator`](gmc_pmc::ReferenceEnumerator) oracle, asserting
//!   identical clique numbers, identical clique *sets* for enumerating
//!   lanes, and the exact counter invariants (`oracle_queries +
//!   probes_avoided == scalar_queries`, `recovered == injected`,
//!   `live() == 0` after cancellation).
//! * **Metamorphic relations** ([`checks`]) — vertex-relabeling invariance,
//!   planted k-clique ⇒ ω ≥ k, disjoint union ⇒ ω = max, edge deletion ⇒
//!   ω non-increasing, universal vertex ⇒ ω + 1, and capacity / fault-plan
//!   changes that don't OOM ⇒ bit-identical output.
//! * **Shrinking** ([`shrink`]) — failures are greedily minimised by
//!   dropping vertices and edges while the disagreement still reproduces.
//! * **Regression corpus** ([`corpus`]) — shrunk counterexamples persist as
//!   replayable graph files under `tests/regressions/`; every run replays
//!   the corpus *first*, so a once-found bug can never silently return.
//!
//! The harness is exposed as `gmc verify --seed S --budget-ms N` on the CLI
//! and as the `verify-smoke` CI job. A deliberately broken solver can be
//! simulated with the test-only [`Sabotage`] hook, which the integration
//! suite uses to prove the harness catches and shrinks real disagreements.

#![warn(missing_docs)]

pub mod checks;
pub mod corpus;
pub mod gen;
pub mod lanes;
pub mod shrink;

pub use checks::Check;
pub use lanes::{LaneSpec, WindowSpec};

use gmc_dpp::Rng;
use gmc_graph::Csr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A case graph in plain edge-list form — the representation every stage
/// (generation, checking, shrinking, persistence) agrees on. Edges are
/// undirected `(u, v)` pairs with `u < v`, deduplicated and sorted, so two
/// structurally equal cases compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CaseGraph {
    /// Number of vertices (vertex ids are `0..n`).
    pub n: usize,
    /// Undirected edges, canonicalised: `u < v`, sorted, deduplicated.
    pub edges: Vec<(u32, u32)>,
}

impl CaseGraph {
    /// A case over `n` vertices with the given edges, canonicalised
    /// (self-loops dropped, endpoints ordered, duplicates removed).
    pub fn new(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut edges: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(u, v)| u != v && (u as usize) < n && (v as usize) < n)
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        Self { n, edges }
    }

    /// Rebuilds the case from a CSR graph.
    pub fn from_csr(graph: &Csr) -> Self {
        let mut edges = Vec::with_capacity(graph.num_edges());
        for u in 0..graph.num_vertices() as u32 {
            for &v in graph.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        Self::new(graph.num_vertices(), edges)
    }

    /// Materialises the CSR the solvers consume.
    pub fn to_csr(&self) -> Csr {
        Csr::from_edges(self.n, &self.edges)
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// A deliberate, test-only corruption of every BFS lane's output — the
/// "broken solver mutation" hook. The harness must catch each mode as a
/// lane disagreement and shrink it to a tiny reproducer; nothing in the
/// production solve path ever consults this. `None` everywhere outside the
/// harness's own tests and the CLI's explicitly-requested self-test mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Drop all tie cliques from enumeration results, keeping only the
    /// lexicographically first — breaks complete enumeration whenever the
    /// maximum clique is not unique (minimal reproducer: two vertices, no
    /// edges — two tied 1-cliques).
    DropTies,
    /// Under-report the clique number by one (and truncate every witness)
    /// whenever ω ≥ 3 — breaks the clique number itself (minimal
    /// reproducer: a triangle).
    UnderReport,
}

impl std::str::FromStr for Sabotage {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "drop-ties" => Ok(Sabotage::DropTies),
            "under-report" => Ok(Sabotage::UnderReport),
            _ => Err(()),
        }
    }
}

impl std::fmt::Display for Sabotage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Sabotage::DropTies => "drop-ties",
            Sabotage::UnderReport => "under-report",
        })
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Master seed: the whole run — graphs, lane selection, auxiliary
    /// randomness — is a pure function of it.
    pub seed: u64,
    /// Wall-clock budget for the generation loop (replay of the regression
    /// corpus always runs to completion first and does not count against
    /// it). [`Duration::ZERO`] disables the time limit; `max_cases` then
    /// bounds the run.
    pub budget: Duration,
    /// Hard cap on generated cases (`None` = budget-bounded only).
    pub max_cases: Option<u64>,
    /// Stop after collecting this many distinct failures.
    pub max_failures: usize,
    /// Regression corpus directory. When set, every `*.case` file in it is
    /// replayed before generation, and new shrunk failures are persisted
    /// into it (unless `persist_failures` is off).
    pub regressions_dir: Option<PathBuf>,
    /// Write newly found (shrunk) failures into `regressions_dir`.
    pub persist_failures: bool,
    /// Skip generation entirely: replay the regression corpus and stop.
    pub replay_only: bool,
    /// Test-only broken-solver hook (see [`Sabotage`]).
    pub sabotage: Option<Sabotage>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            seed: 0xD1FF_F52E,
            budget: Duration::from_millis(10_000),
            max_cases: None,
            max_failures: 8,
            regressions_dir: None,
            persist_failures: true,
            replay_only: false,
            sabotage: None,
        }
    }
}

impl VerifyConfig {
    /// Defaults overridden by `GMC_VERIFY_SEED` and `GMC_VERIFY_BUDGET_MS`
    /// (fail-loud parsing via [`gmc_trace::env`]).
    pub fn from_env() -> Self {
        let mut config = Self::default();
        config.seed = gmc_trace::env::parse_or("GMC_VERIFY_SEED", config.seed);
        let budget_ms: u64 =
            gmc_trace::env::parse_or("GMC_VERIFY_BUDGET_MS", config.budget.as_millis() as u64);
        config.budget = Duration::from_millis(budget_ms);
        config
    }
}

/// One caught (and shrunk) disagreement.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The check that failed, e.g. `differential: bfs[unfused,persistent,
    /// morsel,w2] vs oracle`.
    pub check: String,
    /// Generator category (or `regression`/`replay` provenance).
    pub category: String,
    /// Case seed the failing graph was generated from (0 for replays).
    pub case_seed: u64,
    /// The minimised counterexample.
    pub graph: CaseGraph,
    /// Accepted shrink steps between the original and minimal graph.
    pub shrink_steps: u32,
    /// The failing assertion's message on the minimal graph.
    pub detail: String,
    /// Where the reproducer was persisted, when it was.
    pub persisted: Option<PathBuf>,
}

/// Aggregate outcome of one harness run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Generated cases executed.
    pub cases: u64,
    /// Regression-corpus cases replayed before generation.
    pub replayed: u64,
    /// Differential lane comparisons performed (each compares one solver
    /// lane against the freshly computed oracle).
    pub differential_checks: u64,
    /// Metamorphic relations checked.
    pub metamorphic_checks: u64,
    /// Total solver invocations (all lanes, twins, metamorphic re-solves).
    pub solves: u64,
    /// Disagreements found, shrunk and recorded.
    pub failures: Vec<Failure>,
    /// Wall time of the whole run.
    pub elapsed: Duration,
}

impl VerifyReport {
    /// `true` when no lane disagreement or metamorphic violation was found.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Shared mutable tallies threaded through every check evaluation.
#[derive(Debug, Default)]
pub struct Tally {
    /// Differential lane comparisons performed.
    pub differential: u64,
    /// Metamorphic relations checked.
    pub metamorphic: u64,
    /// Solver invocations made.
    pub solves: u64,
}

/// Runs the harness: replay the regression corpus, then generate and check
/// seeded adversarial cases until the budget, case cap or failure cap is
/// reached.
pub fn run(config: &VerifyConfig) -> VerifyReport {
    let start = Instant::now();
    let mut report = VerifyReport::default();
    let mut tally = Tally::default();

    // Phase 1: replay the persistent regression corpus first — a previously
    // shrunk counterexample must stay fixed before any new fuzzing counts.
    if let Some(dir) = &config.regressions_dir {
        for (path, graph) in corpus::load_all(dir) {
            report.replayed += 1;
            let category = format!("replay:{}", path.file_name().unwrap().to_string_lossy());
            run_case_battery(
                config,
                &mut report,
                &mut tally,
                graph,
                0,
                &category,
                // Replays are already minimal; re-shrinking is cheap and
                // keeps the reported reproducer tight if the corpus file
                // was edited by hand.
                true,
            );
            if report.failures.len() >= config.max_failures {
                break;
            }
        }
    }

    // Phase 2: budgeted generation loop.
    let deadline = (!config.budget.is_zero()).then(|| start + config.budget);
    if !config.replay_only {
        let mut case_index = 0u64;
        loop {
            if report.failures.len() >= config.max_failures {
                break;
            }
            if let Some(cap) = config.max_cases {
                if case_index >= cap {
                    break;
                }
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    break;
                }
            } else if config.max_cases.is_none() {
                // No budget and no cap would loop forever; refuse.
                break;
            }
            let case_seed = config
                .seed
                .wrapping_add(case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = Rng::seed_from_u64(case_seed);
            let (graph, category) = gen::sample(&mut rng);
            run_case_battery(
                config,
                &mut report,
                &mut tally,
                graph,
                case_seed,
                category,
                false,
            );
            report.cases += 1;
            case_index += 1;
        }
    }

    report.differential_checks = tally.differential;
    report.metamorphic_checks = tally.metamorphic;
    report.solves = tally.solves;
    report.elapsed = start.elapsed();
    report
}

/// Runs the full check battery for one graph; failing checks are shrunk,
/// recorded and (optionally) persisted.
#[allow(clippy::too_many_arguments)] // internal plumbing, not API
fn run_case_battery(
    config: &VerifyConfig,
    report: &mut VerifyReport,
    tally: &mut Tally,
    graph: CaseGraph,
    case_seed: u64,
    category: &str,
    replay: bool,
) {
    let mut rng = Rng::seed_from_u64(case_seed ^ 0xC0DE_C0DE);
    let battery = checks::battery(&mut rng, replay);
    for check in battery {
        let outcome = checks::eval(&check, &graph, config.sabotage, tally);
        let Err(detail) = outcome else { continue };
        // Shrink while this exact check still fails. Each probe re-runs
        // solver lanes, so bound the work by steps and wall clock.
        let shrink_deadline = Instant::now() + Duration::from_secs(10);
        let (minimal, steps) = shrink::shrink_graph(
            graph.clone(),
            |candidate| {
                checks::eval(&check, candidate, config.sabotage, tally)
                    .err()
                    .map(|_| true)
                    .unwrap_or(false)
            },
            256,
            shrink_deadline,
        );
        let final_detail = checks::eval(&check, &minimal, config.sabotage, tally)
            .err()
            .unwrap_or(detail);
        let mut failure = Failure {
            check: check.name(),
            category: category.to_string(),
            case_seed,
            graph: minimal,
            shrink_steps: steps,
            detail: final_detail,
            persisted: None,
        };
        if config.persist_failures && !replay {
            if let Some(dir) = &config.regressions_dir {
                failure.persisted = corpus::save(dir, &failure).ok();
            }
        }
        report.failures.push(failure);
        if report.failures.len() >= config.max_failures {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_graph_canonicalises() {
        let g = CaseGraph::new(4, vec![(2, 1), (1, 2), (3, 3), (0, 3), (9, 1)]);
        assert_eq!(g.edges, vec![(0, 3), (1, 2)]);
        let csr = g.to_csr();
        assert_eq!(CaseGraph::from_csr(&csr), g);
    }

    #[test]
    fn sabotage_parses_and_displays() {
        use std::str::FromStr;
        for s in [Sabotage::DropTies, Sabotage::UnderReport] {
            assert_eq!(Sabotage::from_str(&s.to_string()), Ok(s));
        }
        assert!(Sabotage::from_str("fine").is_err());
    }

    #[test]
    fn zero_budget_without_case_cap_terminates() {
        let config = VerifyConfig {
            budget: Duration::ZERO,
            max_cases: None,
            ..VerifyConfig::default()
        };
        let report = run(&config);
        assert_eq!(report.cases, 0);
        assert!(report.is_clean());
    }
}
