//! The persistent regression corpus.
//!
//! Every shrunk counterexample is written as a plain-text `.case` file —
//! `#` comment lines recording provenance (which check, which generator
//! category, which seed, what went wrong), then `n <vertices>` and one
//! `u v` edge per line. The format is deliberately hand-editable: a
//! reviewer can trim a case or write one from scratch in any editor, and
//! `git diff` shows exactly which graph changed. File names carry a
//! content hash, so re-finding the same minimal graph never duplicates a
//! file, and distinct graphs never collide on a name.
//!
//! Replays load *every* `.case` file in the directory (sorted by name, so
//! runs are reproducible) and push each graph through the full check
//! battery before any fuzzing starts: a once-found bug has to stay fixed
//! before new exploration counts for anything.

use crate::{CaseGraph, Failure};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Renders a case to the text format, with provenance comments.
pub fn render(failure: &Failure) -> String {
    let mut out = String::new();
    out.push_str(
        "# gmc-verify regression case (format: `n <vertices>`, then one `u v` per line)\n",
    );
    for (key, value) in [
        ("check", failure.check.as_str()),
        ("category", failure.category.as_str()),
        ("detail", failure.detail.as_str()),
    ] {
        // Keep comments single-line so the file stays line-oriented.
        let value = value.replace('\n', " ");
        out.push_str(&format!("# {key}: {value}\n"));
    }
    out.push_str(&format!("# seed: {}\n", failure.case_seed));
    out.push_str(&render_graph(&failure.graph));
    out
}

/// Renders just the graph body (`n` line + edge lines).
pub fn render_graph(graph: &CaseGraph) -> String {
    let mut out = format!("n {}\n", graph.n);
    for (u, v) in &graph.edges {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses the text format back into a graph. Comments and blank lines are
/// skipped; the first data line must be `n <vertices>`.
pub fn parse(text: &str) -> Result<CaseGraph, String> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match n {
            None => {
                let (tag, count) = (fields.next(), fields.next());
                if tag != Some("n") {
                    return Err(format!("line {}: expected `n <vertices>`", lineno + 1));
                }
                let count: usize = count
                    .ok_or_else(|| format!("line {}: missing vertex count", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad vertex count: {e}", lineno + 1))?;
                n = Some(count);
            }
            Some(count) => {
                let parse_endpoint = |field: Option<&str>| -> Result<u32, String> {
                    let v: u32 = field
                        .ok_or_else(|| format!("line {}: expected `u v`", lineno + 1))?
                        .parse()
                        .map_err(|e| format!("line {}: bad vertex id: {e}", lineno + 1))?;
                    if v as usize >= count {
                        return Err(format!(
                            "line {}: vertex {v} out of range (n = {count})",
                            lineno + 1
                        ));
                    }
                    Ok(v)
                };
                let u = parse_endpoint(fields.next())?;
                let v = parse_endpoint(fields.next())?;
                if fields.next().is_some() {
                    return Err(format!("line {}: trailing fields", lineno + 1));
                }
                edges.push((u, v));
            }
        }
    }
    let n = n.ok_or("missing `n <vertices>` line")?;
    Ok(CaseGraph::new(n, edges))
}

/// Persists a failure into `dir`, creating it if needed. The file name is
/// derived from the check and a hash of the graph, so saving the same
/// minimal counterexample twice is idempotent. Returns the path written.
pub fn save(dir: &Path, failure: &Failure) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = format!(
        "{}-{:016x}.case",
        slug(&failure.check),
        fingerprint(&failure.graph)
    );
    let path = dir.join(name);
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render(failure).as_bytes())?;
    Ok(path)
}

/// Loads every `.case` file in `dir`, sorted by file name. Missing
/// directories are an empty corpus; an unparsable file panics with its
/// path — a corrupt regression corpus should stop the run loudly, not
/// silently skip the one graph that used to catch a bug.
pub fn load_all(dir: &Path) -> Vec<(PathBuf, CaseGraph)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            let graph = parse(&text)
                .unwrap_or_else(|e| panic!("corrupt regression case {}: {e}", path.display()));
            (path, graph)
        })
        .collect()
}

/// FNV-1a over the canonical graph encoding.
fn fingerprint(graph: &CaseGraph) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(graph.n as u64).to_le_bytes());
    for (u, v) in &graph.edges {
        eat(&u.to_le_bytes());
        eat(&v.to_le_bytes());
    }
    hash
}

/// A filesystem-safe slug of a check name.
fn slug(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    while out.contains("--") {
        out = out.replace("--", "-");
    }
    out.trim_matches('-').chars().take(48).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_failure(graph: CaseGraph) -> Failure {
        Failure {
            check: "differential: bfs[fused,auto,auto,w2] vs oracle".into(),
            category: "planted".into(),
            case_seed: 42,
            graph,
            shrink_steps: 3,
            detail: "ω mismatch\nwith a newline".into(),
            persisted: None,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let graph = CaseGraph::new(5, vec![(0, 1), (1, 2), (3, 4)]);
        let failure = sample_failure(graph.clone());
        let parsed = parse(&render(&failure)).unwrap();
        assert_eq!(parsed, graph);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("0 1\n").is_err(), "edges before the n line");
        assert!(parse("n 2\n0 5\n").is_err(), "out-of-range vertex");
        assert!(parse("n 2\n0\n").is_err(), "half an edge");
        assert!(parse("n 2\n0 1 2\n").is_err(), "trailing fields");
        assert!(parse("n x\n").is_err(), "non-numeric count");
    }

    #[test]
    fn save_and_load_are_idempotent_and_sorted() {
        let dir = std::env::temp_dir().join(format!(
            "gmc-verify-corpus-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let a = sample_failure(CaseGraph::new(3, vec![(0, 1), (1, 2), (0, 2)]));
        let b = sample_failure(CaseGraph::new(2, Vec::new()));
        let pa = save(&dir, &a).unwrap();
        let pb = save(&dir, &b).unwrap();
        // Saving the same graph again hits the same file.
        assert_eq!(save(&dir, &a).unwrap(), pa);
        assert_ne!(pa, pb);
        let loaded = load_all(&dir);
        assert_eq!(loaded.len(), 2);
        let graphs: Vec<&CaseGraph> = loaded.iter().map(|(_, g)| g).collect();
        assert!(graphs.contains(&&a.graph) && graphs.contains(&&b.graph));
        // Non-.case files are ignored.
        std::fs::write(dir.join("README.md"), "docs\n").unwrap();
        assert_eq!(load_all(&dir).len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        assert!(load_all(Path::new("/nonexistent/gmc-verify")).is_empty());
    }
}
