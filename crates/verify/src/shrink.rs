//! Greedy counterexample minimisation.
//!
//! Same discipline as `gmc_dpp::prop::shrink_failure`, specialised to
//! graphs: propose structurally smaller candidates, keep the first one on
//! which the failing check *still* fails, repeat until nothing smaller
//! fails. Candidates move from coarse to fine — drop half the vertices,
//! then single vertices, then half the edges, then single edges — so large
//! accidental structure disappears in a few probes and the endgame trims
//! one element at a time. Every probe re-runs solver lanes, so the loop is
//! bounded both by an accepted-step cap and a wall-clock deadline.

use crate::CaseGraph;
use std::time::Instant;

/// Minimises `initial` while `fails` keeps returning `true`, up to
/// `max_steps` *accepted* shrinks or the `deadline`, whichever comes
/// first. Returns the smallest failing graph found and the number of
/// accepted steps. `initial` itself is assumed to fail.
pub fn shrink_graph(
    initial: CaseGraph,
    mut fails: impl FnMut(&CaseGraph) -> bool,
    max_steps: u32,
    deadline: Instant,
) -> (CaseGraph, u32) {
    let mut current = initial;
    let mut steps = 0u32;
    'outer: while steps < max_steps && Instant::now() < deadline {
        for candidate in candidates(&current) {
            if Instant::now() >= deadline {
                break 'outer;
            }
            debug_assert!(smaller(&candidate, &current));
            if fails(&candidate) {
                current = candidate;
                steps += 1;
                continue 'outer; // restart from the coarsest proposals
            }
        }
        break; // no proposal fails: `current` is locally minimal
    }
    (current, steps)
}

/// Is `a` strictly structurally smaller than `b`?
fn smaller(a: &CaseGraph, b: &CaseGraph) -> bool {
    (a.n, a.num_edges()) < (b.n, b.num_edges())
}

/// Shrink proposals for one graph, coarsest first. Vertex removals
/// re-index the survivors (via the induced subgraph), so every candidate
/// is again a canonical [`CaseGraph`].
fn candidates(graph: &CaseGraph) -> Vec<CaseGraph> {
    let mut out = Vec::new();
    let n = graph.n;

    // Halve the vertex set (each half in turn).
    if n >= 2 {
        let all: Vec<u32> = (0..n as u32).collect();
        let mid = n / 2;
        out.push(induced(graph, &all[..mid]));
        out.push(induced(graph, &all[mid..]));
    }

    // Drop single vertices — all of them when small, a spread sample when
    // large (the halving proposals get us small quickly anyway).
    if n >= 1 {
        let stride = n.div_ceil(8).max(1);
        for v in (0..n).step_by(stride) {
            let keep: Vec<u32> = (0..n as u32).filter(|&u| u != v as u32).collect();
            out.push(induced(graph, &keep));
        }
    }

    // Halve the edge set (keeping all vertices: isolates may matter —
    // DropTies-style bugs need the tied vertex, not its edges).
    let m = graph.num_edges();
    if m >= 2 {
        let mid = m / 2;
        out.push(CaseGraph::new(n, graph.edges[..mid].to_vec()));
        out.push(CaseGraph::new(n, graph.edges[mid..].to_vec()));
    }

    // Drop single edges.
    if m >= 1 {
        let stride = m.div_ceil(16).max(1);
        for i in (0..m).step_by(stride) {
            let mut edges = graph.edges.clone();
            edges.remove(i);
            out.push(CaseGraph::new(n, edges));
        }
    }

    out
}

/// The induced subgraph on `keep`, re-indexed to `0..keep.len()`.
fn induced(graph: &CaseGraph, keep: &[u32]) -> CaseGraph {
    let (sub, _) = graph.to_csr().induced_subgraph(keep);
    CaseGraph::from_csr(&sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn shrinks_triangle_bug_to_the_triangle() {
        // A "bug" that fires whenever the graph contains a triangle: the
        // minimal failing graph is K3 itself.
        let noisy = CaseGraph::from_csr(&gmc_graph::generators::gnp(30, 0.4, 7));
        let has_triangle = |g: &CaseGraph| {
            let csr = g.to_csr();
            gmc_pmc::ReferenceEnumerator::clique_number(&csr) >= 3
        };
        assert!(has_triangle(&noisy), "seed graph must contain a triangle");
        let (minimal, steps) = shrink_graph(noisy, has_triangle, 256, far_deadline());
        assert_eq!((minimal.n, minimal.num_edges()), (3, 3), "{minimal:?}");
        assert!(steps > 0);
    }

    #[test]
    fn shrinks_isolated_vertex_bug_keeping_isolates() {
        // Fires when some vertex is isolated — edge-only shrinks must not
        // be blocked by the vertex halving, and the result is one bare
        // vertex.
        let g = CaseGraph::new(10, vec![(0, 1), (2, 3), (4, 5)]);
        let has_isolate = |g: &CaseGraph| {
            let csr = g.to_csr();
            (0..g.n as u32).any(|v| csr.neighbors(v).is_empty())
        };
        assert!(has_isolate(&g));
        let (minimal, _) = shrink_graph(g, has_isolate, 256, far_deadline());
        assert_eq!((minimal.n, minimal.num_edges()), (1, 0), "{minimal:?}");
    }

    #[test]
    fn respects_the_step_cap() {
        let g = CaseGraph::from_csr(&gmc_graph::generators::complete(12));
        // Everything "fails", so shrinking only stops at the cap (or when
        // proposals run dry at the empty graph).
        let (minimal, steps) = shrink_graph(g, |_| true, 3, far_deadline());
        assert_eq!(steps, 3);
        assert!(minimal.n > 0);
    }
}
