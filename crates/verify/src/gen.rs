//! Seeded adversarial graph generation.
//!
//! Every case is a pure function of an [`Rng`] fork, so a failing case seed
//! reproduces the exact graph on any machine. Sizes are deliberately small
//! (tens of vertices): the sequential oracle must re-enumerate every graph
//! — including once per shrink probe — so case cost, not case count, is
//! what the budget buys. Adversarial *structure* matters more than scale
//! here: ties, near-regular cores, planted optima the heuristic lower
//! bound misses, and the degenerate shapes (empty, edgeless, complete)
//! that exercise solver early-outs.

use crate::CaseGraph;
use gmc_dpp::Rng;
use gmc_graph::{generators, Csr};

/// Generator categories, reported with each failure so corpus files say
/// where their graph came from.
pub const CATEGORIES: &[&str] = &[
    "planted",
    "near-regular",
    "wheel",
    "union",
    "complement",
    "corpus-mutant",
    "gnp-dense",
    "gnm-sparse",
    "degenerate",
];

/// Draws one case: picks a category and builds a graph in it.
pub fn sample(rng: &mut Rng) -> (CaseGraph, &'static str) {
    let category = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
    let graph = sample_category(rng, category);
    (graph, category)
}

/// Builds a graph in a specific category (used by `sample` and by tests
/// that want a particular shape).
pub fn sample_category(rng: &mut Rng, category: &str) -> CaseGraph {
    let csr = match category {
        "planted" => planted(rng),
        "near-regular" => near_regular(rng),
        "wheel" => wheel(rng),
        "union" => union(rng),
        "complement" => complement(rng),
        "corpus-mutant" => corpus_mutant(rng),
        "gnp-dense" => {
            let n = rng.gen_range(4..40usize);
            let p = 0.4 + rng.gen_f64() * 0.5;
            generators::gnp(n, p, rng.next_u64())
        }
        "gnm-sparse" => {
            let n = rng.gen_range(6..80usize);
            let max_m = n * (n - 1) / 2;
            let m = rng.gen_range(0..=3 * n).min(max_m);
            generators::gnm(n, m, rng.next_u64())
        }
        "degenerate" => degenerate(rng),
        other => panic!("unknown generator category {other:?}"),
    };
    CaseGraph::from_csr(&csr)
}

/// Sparse background noise with one or two planted cliques whose size is
/// near (sometimes past) the background's natural clique number — the
/// classic trap for greedy lower bounds and pruning thresholds.
fn planted(rng: &mut Rng) -> Csr {
    let n = rng.gen_range(10..60usize);
    let p = 0.05 + rng.gen_f64() * 0.2;
    let base = generators::gnp(n, p, rng.next_u64());
    let k = rng.gen_range(3..(n / 2).max(4));
    if rng.gen_bool(0.4) {
        // Two planted cliques of equal size: forces a tie the enumerator
        // must report both sides of.
        let (g, _) = generators::plant_cliques(&base, &[k, k], rng.next_u64());
        g
    } else {
        let (g, _) = generators::plant_clique(&base, k, rng.next_u64());
        g
    }
}

/// Near-regular cores: Moon–Moser complete multipartite graphs (the
/// worst case for enumeration — exponentially many maximum cliques) and
/// Watts–Strogatz ring lattices (every vertex degree within one of k).
fn near_regular(rng: &mut Rng) -> Csr {
    if rng.gen_bool(0.5) {
        let parts = rng.gen_range(2..5usize);
        let size = rng.gen_range(2..4usize);
        generators::complete_multipartite(&vec![size; parts])
    } else {
        let k = 2 * rng.gen_range(1..4usize);
        let n = k + 2 + rng.gen_range(0..30usize);
        generators::watts_strogatz(n, k, rng.gen_f64() * 0.4, rng.next_u64())
    }
}

/// A wheel: hub vertex 0 joined to every rim vertex of a cycle. Rim length
/// 3 gives K4 (ω = 4); length ≥ 4 gives ω = 3 with one maximum clique per
/// rim edge — a dense tie structure with a universal vertex.
fn wheel(rng: &mut Rng) -> Csr {
    let rim = rng.gen_range(3..20usize);
    let mut edges = Vec::with_capacity(2 * rim);
    for i in 0..rim {
        let a = 1 + i as u32;
        let b = 1 + ((i + 1) % rim) as u32;
        edges.push((a, b));
        edges.push((0, a));
    }
    Csr::from_edges(rim + 1, &edges)
}

/// Disjoint union of two independently generated components — checks that
/// nothing leaks across components and ties across components are kept.
fn union(rng: &mut Rng) -> Csr {
    let a = small_component(rng);
    let b = small_component(rng);
    let offset = a.num_vertices() as u32;
    let mut edges = CaseGraph::from_csr(&a).edges;
    for (u, v) in CaseGraph::from_csr(&b).edges {
        edges.push((u + offset, v + offset));
    }
    Csr::from_edges(a.num_vertices() + b.num_vertices(), &edges)
}

fn small_component(rng: &mut Rng) -> Csr {
    match rng.gen_range(0..3u32) {
        0 => generators::complete(rng.gen_range(1..8usize)),
        1 => generators::gnp(rng.gen_range(2..20usize), 0.5, rng.next_u64()),
        _ => {
            let parts = rng.gen_range(2..4usize);
            generators::complete_multipartite(&vec![rng.gen_range(1..4usize); parts])
        }
    }
}

/// Complement of a sparse graph: dense, with maximum cliques equal to the
/// sparse graph's maximum independent sets — structure no direct generator
/// here produces.
fn complement(rng: &mut Rng) -> Csr {
    let n = rng.gen_range(4..30usize);
    let sparse = generators::gnp(n, 0.05 + rng.gen_f64() * 0.25, rng.next_u64());
    sparse.complement()
}

/// A tiny instance from one of the experiment-corpus families, then
/// mutated by random edge insertions/deletions — keeps realistic degree
/// structure while breaking any invariant the family guarantees.
fn corpus_mutant(rng: &mut Rng) -> Csr {
    let base = match rng.gen_range(0..4u32) {
        0 => generators::holme_kim(rng.gen_range(6..40usize), 2, 0.5, rng.next_u64()),
        1 => generators::collaboration(
            rng.gen_range(6..30usize),
            rng.gen_range(2..10usize),
            2,
            4,
            1.5,
            rng.next_u64(),
        ),
        2 => generators::random_geometric(rng.gen_range(6..40usize), 0.35, rng.next_u64()),
        _ => generators::rmat(rng.gen_range(3..6u32), 4, 0.57, 0.19, 0.19, rng.next_u64()),
    };
    let mut case = CaseGraph::from_csr(&base);
    let mutations = rng.gen_range(1..8u32);
    for _ in 0..mutations {
        if rng.gen_bool(0.5) && !case.edges.is_empty() {
            let i = rng.gen_range(0..case.edges.len());
            case.edges.remove(i);
        } else if case.n >= 2 {
            let u = rng.gen_range(0..case.n) as u32;
            let v = rng.gen_range(0..case.n) as u32;
            case.edges.push((u, v));
        }
    }
    CaseGraph::new(case.n, case.edges).to_csr()
}

/// The degenerate shapes every solver early-out must agree on.
fn degenerate(rng: &mut Rng) -> Csr {
    match rng.gen_range(0..5u32) {
        0 => Csr::empty(0),
        1 => Csr::empty(rng.gen_range(1..10usize)),
        2 => Csr::from_edges(2, &[(0, 1)]),
        3 => generators::complete(rng.gen_range(2..9usize)),
        // A single edge floating among isolated vertices.
        _ => {
            let n = rng.gen_range(3..12usize);
            Csr::from_edges(n, &[(0, 1)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_generates() {
        let mut rng = Rng::seed_from_u64(7);
        for &cat in CATEGORIES {
            for _ in 0..10 {
                let g = sample_category(&mut rng, cat);
                // Canonical form must round-trip through CSR.
                assert_eq!(CaseGraph::from_csr(&g.to_csr()), g, "category {cat}");
            }
        }
    }

    #[test]
    fn sample_is_deterministic() {
        let a = sample(&mut Rng::seed_from_u64(42));
        let b = sample(&mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn wheel_has_expected_structure() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..20 {
            let g = sample_category(&mut rng, "wheel");
            let csr = g.to_csr();
            // Hub is universal.
            assert_eq!(csr.neighbors(0).len(), g.n - 1);
        }
    }
}
