//! Differential solver lanes.
//!
//! A *lane* is one fully pinned solver configuration — fused or unfused
//! pipeline, a local-bits tier, a schedule, a worker count, optionally a
//! window — run on a fresh device. Lane configurations are built from
//! explicit fields only: [`SolverConfig::default`] reads `GMC_LOCAL_BITS`,
//! `GMC_SCHED` and `GMC_FAULTS` from the environment, so every
//! env-sensitive field is overwritten here to keep the harness
//! deterministic no matter what the surrounding shell exports.

use crate::Sabotage;
use gmc_dpp::Rng;
use gmc_dpp::{Device, FaultPlan, Schedule};
use gmc_graph::Csr;
use gmc_mce::{
    LocalBitsMode, MaxCliqueSolver, SolveError, SolveResult, SolverConfig, WindowConfig,
};
use gmc_pmc::ReferenceEnumerator;

/// Windowing choice for a lane, reduced to what differential testing needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Nominal window size in 2-clique entries (`0` = automatic sizing).
    pub size: usize,
    /// Enumerate every maximum clique window by window (`true`), or run the
    /// paper's find-one mode (`false`) — the latter only promises *a*
    /// witness, so it is compared by membership rather than set equality.
    pub enumerate_all: bool,
}

/// One pinned BFS solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSpec {
    /// Fused record-and-replay pipeline vs the paper-literal baseline.
    pub fused: bool,
    /// Adjacency-bitmap tier.
    pub local_bits: LocalBitsMode,
    /// Executor schedule.
    pub schedule: Schedule,
    /// Device worker count.
    pub workers: usize,
    /// Windowed search, or `None` for the full breadth-first search.
    pub window: Option<WindowSpec>,
}

impl LaneSpec {
    /// The reference BFS lane: fused defaults on a 2-worker device, every
    /// env-sensitive knob pinned. Run against the oracle on *every* case.
    pub fn baseline() -> Self {
        Self {
            fused: true,
            local_bits: LocalBitsMode::Auto,
            schedule: Schedule::Auto,
            workers: 2,
            window: None,
        }
    }

    /// A human-readable lane name for failure reports, e.g.
    /// `bfs[unfused,persistent,morsel,w8,win256]`.
    pub fn name(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(5);
        parts.push(if self.fused { "fused" } else { "unfused" }.into());
        parts.push(self.local_bits.to_string());
        parts.push(match self.schedule {
            Schedule::Static => "static".into(),
            Schedule::Morsel { grain } => format!("morsel:{grain}"),
            Schedule::Guided => "guided".into(),
            Schedule::Auto => "auto".into(),
        });
        parts.push(format!("w{}", self.workers));
        if let Some(w) = &self.window {
            parts.push(format!(
                "win{}{}",
                w.size,
                if w.enumerate_all { "-enum" } else { "-one" }
            ));
        }
        format!("bfs[{}]", parts.join(","))
    }

    /// Does this lane enumerate the complete maximum-clique set (so its
    /// output can be compared to the oracle by set equality)?
    pub fn enumerates(&self) -> bool {
        self.window.map(|w| w.enumerate_all).unwrap_or(true)
    }

    /// The pinned [`SolverConfig`] — every env-read field overwritten.
    pub fn config(&self) -> SolverConfig {
        let mut config = SolverConfig {
            local_bits: self.local_bits,
            schedule: self.schedule,
            faults: None,
            fused: self.fused,
            ..SolverConfig::default()
        };
        config.window = self.window.map(|w| {
            let mut wc = if w.size == 0 {
                WindowConfig::auto()
            } else {
                WindowConfig::with_size(w.size)
            };
            wc.enumerate_all = w.enumerate_all;
            wc
        });
        config
    }

    /// Runs this lane on a fresh unlimited-memory device, optionally with a
    /// fault plan armed (`faults` overrides the pinned `None`).
    pub fn solve_with(
        &self,
        graph: &Csr,
        faults: Option<FaultPlan>,
    ) -> Result<SolveResult, SolveError> {
        let device = Device::new(self.workers, usize::MAX);
        let mut config = self.config();
        config.faults = faults;
        MaxCliqueSolver::with_config(device, config).solve(graph)
    }

    /// Runs this lane fault-free.
    pub fn solve(&self, graph: &Csr) -> Result<SolveResult, SolveError> {
        self.solve_with(graph, None)
    }

    /// The same lane with the local-bits tier forced off — the scalar twin
    /// whose `oracle_queries` anchor the probe-accounting invariant.
    pub fn scalar_twin(&self) -> Self {
        Self {
            local_bits: LocalBitsMode::Off,
            ..*self
        }
    }
}

/// Local-bits tiers the lane sampler draws from.
const LOCAL_BITS: [LocalBitsMode; 4] = [
    LocalBitsMode::Off,
    LocalBitsMode::On,
    LocalBitsMode::Persistent,
    LocalBitsMode::Auto,
];

/// Schedules the lane sampler draws from.
const SCHEDULES: [Schedule; 4] = [
    Schedule::Static,
    Schedule::Morsel { grain: 64 },
    Schedule::Guided,
    Schedule::Auto,
];

/// Worker counts the lane sampler draws from.
const WORKERS: [usize; 3] = [1, 2, 8];

/// Draws `count` distinct lane variants from the full cross-product
/// (fused × local-bits × schedule × window × workers). The baseline lane
/// runs on every case regardless; these are the per-case extras, so over
/// many cases the whole cross-product gets visited.
pub fn sample_lanes(rng: &mut Rng, count: usize) -> Vec<LaneSpec> {
    let mut lanes: Vec<LaneSpec> = Vec::with_capacity(count);
    let mut guard = 0;
    while lanes.len() < count && guard < count * 20 {
        guard += 1;
        let window = match rng.gen_range(0..4u32) {
            // Flat search most of the time; small windows so multi-window
            // paths actually trigger on tens-of-vertices graphs.
            0 => Some(WindowSpec {
                size: *rng.choose(&[0usize, 8, 64, 1024]).unwrap(),
                enumerate_all: rng.gen_bool(0.7),
            }),
            _ => None,
        };
        let lane = LaneSpec {
            fused: rng.gen_bool(0.7),
            local_bits: *rng.choose(&LOCAL_BITS).unwrap(),
            schedule: *rng.choose(&SCHEDULES).unwrap(),
            workers: *rng.choose(&WORKERS).unwrap(),
            window,
        };
        // Local bits only act inside the fused pipeline; forcing them on an
        // unfused lane is a no-op — keep the lane, it still checks the
        // pipeline itself.
        if !lanes.contains(&lane) && lane != LaneSpec::baseline() {
            lanes.push(lane);
        }
    }
    lanes
}

/// Ground truth: the sequential reference enumeration (ω, canonical
/// maximum-clique set).
pub fn oracle(graph: &Csr) -> (u32, Vec<Vec<u32>>) {
    ReferenceEnumerator::enumerate(graph)
}

/// Applies the test-only broken-solver corruption to a BFS lane result (see
/// [`Sabotage`]). Production solves never pass through here with `Some`.
pub fn apply_sabotage(result: &mut SolveResult, sabotage: Option<Sabotage>) {
    match sabotage {
        Some(Sabotage::DropTies) if result.cliques.len() > 1 => {
            result.cliques.truncate(1);
        }
        Some(Sabotage::UnderReport) if result.clique_number >= 3 => {
            result.clique_number -= 1;
            for clique in &mut result.cliques {
                clique.pop();
            }
            result.cliques.dedup();
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_oracle_on_a_planted_graph() {
        let mut rng = Rng::seed_from_u64(11);
        let case = crate::gen::sample_category(&mut rng, "planted");
        let graph = case.to_csr();
        let (omega, cliques) = oracle(&graph);
        let result = LaneSpec::baseline().solve(&graph).unwrap();
        assert_eq!(result.clique_number, omega);
        assert_eq!(result.cliques, cliques);
        assert!(result.complete_enumeration);
    }

    #[test]
    fn lane_names_are_distinct_and_descriptive() {
        let mut rng = Rng::seed_from_u64(5);
        let lanes = sample_lanes(&mut rng, 6);
        assert_eq!(lanes.len(), 6);
        let names: std::collections::HashSet<String> = lanes.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), lanes.len());
        for name in &names {
            assert!(name.starts_with("bfs["), "{name}");
        }
    }

    #[test]
    fn sabotage_corrupts_results() {
        let graph = gmc_graph::generators::complete_multipartite(&[2, 2]);
        let mut result = LaneSpec::baseline().solve(&graph).unwrap();
        let honest = result.cliques.len();
        assert!(honest > 1);
        apply_sabotage(&mut result, Some(Sabotage::DropTies));
        assert_eq!(result.cliques.len(), 1);

        let triangle = gmc_graph::generators::complete(3);
        let mut result = LaneSpec::baseline().solve(&triangle).unwrap();
        apply_sabotage(&mut result, Some(Sabotage::UnderReport));
        assert_eq!(result.clique_number, 2);
    }
}
