//! The check battery: differential lanes and metamorphic relations.
//!
//! Each [`Check`] is *data* — a pure description of one assertion over one
//! graph — so that when a check fails, the shrinker can re-evaluate the
//! exact same check on every candidate subgraph. Evaluation is therefore a
//! pure function of `(check, graph)`: any randomness a check needs (a
//! relabeling permutation, a fault seed, a second union component) is
//! carried *inside* the check as a seed, fixed when the battery is drawn.

use crate::lanes::{self, LaneSpec};
use crate::{CaseGraph, Sabotage, Tally};
use gmc_dpp::{CancelToken, Device, FaultPlan, Rng};
use gmc_graph::{generators, Csr};
use gmc_mce::{LocalBitsMode, MaxCliqueSolver, SolveError, SolveResult};
use gmc_pmc::ParallelBranchBound;
use std::time::Instant;

/// One assertion over one graph. See the module docs for why checks are
/// data rather than closures.
#[derive(Debug, Clone)]
pub enum Check {
    /// A BFS lane must reproduce the oracle: identical ω, and (for
    /// enumerating lanes) the identical canonical clique set; find-one
    /// lanes must return a valid maximum-clique witness from the oracle
    /// set.
    Differential {
        /// The pinned solver configuration under test.
        lane: LaneSpec,
    },
    /// The depth-first branch-and-bound baseline must agree on ω and
    /// return a witness from the oracle set.
    Pmc,
    /// Exact probe accounting: a fused lane with bitmaps enabled and its
    /// scalar twin (same lane, `local_bits = Off`) must reconcile
    /// `oracle_queries + probes_avoided == twin.oracle_queries`.
    ProbeAccounting {
        /// The bitmap-enabled lane (fused; `local_bits != Off`).
        lane: LaneSpec,
    },
    /// Fault-plan equivalence: under two different active fault plans the
    /// baseline lane must produce bit-identical output to the fault-free
    /// solve, with `recovered == injected` on each faulted run.
    FaultEquivalence {
        /// Seed for the two derived fault plans.
        seed: u64,
    },
    /// Cancellation hygiene: a pre-expired deadline must surface
    /// [`SolveError::Cancelled`] with zero bytes still charged to the
    /// device afterwards. Skipped on edgeless graphs (the solver answers
    /// those before its first cancellation poll).
    CancelHygiene,
    /// Vertex relabeling invariance: solving a seeded random relabeling
    /// and mapping the cliques back must reproduce the original clique
    /// set exactly.
    Relabel {
        /// Permutation seed.
        seed: u64,
    },
    /// Planting a k-clique can only raise ω: the planted graph's ω must be
    /// ≥ max(k, original ω). Skipped when the graph has fewer than k
    /// vertices.
    PlantClique {
        /// Seed for the planted member choice; also fixes k.
        seed: u64,
    },
    /// Disjoint union with a second seeded component: ω must be the max of
    /// the parts and the clique set exactly the winners' union.
    Union {
        /// Seed generating the second component.
        seed: u64,
    },
    /// Deleting one edge can lower ω by at most one and never raise it.
    /// Skipped on edgeless graphs.
    DeleteEdge {
        /// Selects which edge is deleted.
        seed: u64,
    },
    /// Adding a universal vertex: ω must grow by exactly one and every
    /// maximum clique must be an original maximum clique plus the new
    /// vertex (for the empty graph: exactly the new singleton).
    UniversalVertex,
    /// Memory-budget replay: re-solving under a finite budget derived from
    /// the observed peak must be bit-identical — or OOM, which the
    /// relation explicitly permits (it promises nothing else changes
    /// *when the solve fits*).
    BudgetReplay,
}

impl Check {
    /// Stable name for failure reports and corpus files.
    pub fn name(&self) -> String {
        match self {
            Check::Differential { lane } => format!("differential: {} vs oracle", lane.name()),
            Check::Pmc => "differential: pmc vs oracle".into(),
            Check::ProbeAccounting { lane } => {
                format!("probe-accounting: {} vs scalar twin", lane.name())
            }
            Check::FaultEquivalence { seed } => format!("fault-equivalence(seed={seed})"),
            Check::CancelHygiene => "cancel-hygiene".into(),
            Check::Relabel { seed } => format!("metamorphic: relabel(seed={seed})"),
            Check::PlantClique { seed } => format!("metamorphic: plant-clique(seed={seed})"),
            Check::Union { seed } => format!("metamorphic: union(seed={seed})"),
            Check::DeleteEdge { seed } => format!("metamorphic: delete-edge(seed={seed})"),
            Check::UniversalVertex => "metamorphic: universal-vertex".into(),
            Check::BudgetReplay => "metamorphic: budget-replay".into(),
        }
    }
}

/// Draws the battery run against one case. Replayed corpus graphs get a
/// wider lane sample — they are tiny, so thoroughness is cheap there.
pub fn battery(rng: &mut Rng, replay: bool) -> Vec<Check> {
    let mut checks = vec![
        Check::Differential {
            lane: LaneSpec::baseline(),
        },
        Check::Pmc,
    ];
    let extra = if replay { 4 } else { 2 };
    for lane in lanes::sample_lanes(rng, extra) {
        checks.push(Check::Differential { lane });
    }
    // Probe accounting needs the fused pipeline (bitmaps are a fused count
    // kernel fast path) and a tier that can actually build bitmaps.
    let tier = *rng
        .choose(&[
            LocalBitsMode::On,
            LocalBitsMode::Persistent,
            LocalBitsMode::Auto,
        ])
        .unwrap();
    checks.push(Check::ProbeAccounting {
        lane: LaneSpec {
            fused: true,
            local_bits: tier,
            window: None,
            ..LaneSpec::baseline()
        },
    });
    checks.push(Check::FaultEquivalence {
        seed: rng.next_u64(),
    });
    checks.push(Check::CancelHygiene);
    checks.push(Check::Relabel {
        seed: rng.next_u64(),
    });
    checks.push(Check::PlantClique {
        seed: rng.next_u64(),
    });
    checks.push(Check::Union {
        seed: rng.next_u64(),
    });
    checks.push(Check::DeleteEdge {
        seed: rng.next_u64(),
    });
    checks.push(Check::UniversalVertex);
    checks.push(Check::BudgetReplay);
    checks
}

/// Evaluates one check against one graph. `Ok(())` means the assertion
/// held (or the check did not apply to this graph); `Err` carries the
/// disagreement message. [`Sabotage`] corrupts BFS differential lanes
/// only — it simulates a broken solver, and the differential lanes are
/// where a broken solver must be caught.
pub fn eval(
    check: &Check,
    case: &CaseGraph,
    sabotage: Option<Sabotage>,
    tally: &mut Tally,
) -> Result<(), String> {
    let graph = case.to_csr();
    match check {
        Check::Differential { lane } => {
            tally.differential += 1;
            let (omega, expected) = lanes::oracle(&graph);
            tally.solves += 1;
            let mut result = lane
                .solve(&graph)
                .map_err(|e| format!("{} failed to solve: {e}", lane.name()))?;
            lanes::apply_sabotage(&mut result, sabotage);
            compare_to_oracle(lane, &graph, &result, omega, &expected)
        }
        Check::Pmc => {
            tally.differential += 1;
            let (omega, expected) = lanes::oracle(&graph);
            tally.solves += 1;
            let result = ParallelBranchBound::new(2).solve(&graph);
            if result.clique_number != omega {
                return Err(format!(
                    "pmc ω = {} but oracle ω = {omega}",
                    result.clique_number
                ));
            }
            if omega == 0 {
                return Ok(());
            }
            if result.clique.len() != omega as usize {
                return Err(format!(
                    "pmc witness has {} vertices, ω = {omega}",
                    result.clique.len()
                ));
            }
            if !expected.contains(&result.clique) {
                return Err(format!(
                    "pmc witness {:?} is not one of the oracle's maximum cliques",
                    result.clique
                ));
            }
            Ok(())
        }
        Check::ProbeAccounting { lane } => {
            tally.differential += 1;
            tally.solves += 2;
            let with_bits = lane
                .solve(&graph)
                .map_err(|e| format!("{} failed to solve: {e}", lane.name()))?;
            let twin = lane.scalar_twin();
            let scalar = twin
                .solve(&graph)
                .map_err(|e| format!("{} failed to solve: {e}", twin.name()))?;
            if with_bits.cliques != scalar.cliques {
                return Err(format!(
                    "{} and {} disagree on the clique set",
                    lane.name(),
                    twin.name()
                ));
            }
            let probed = with_bits.stats.oracle_queries + with_bits.stats.local_bits.probes_avoided;
            if probed != scalar.stats.oracle_queries {
                return Err(format!(
                    "probe accounting broken: {} made {} oracle queries and avoided {}, \
                     but its scalar twin made {}",
                    lane.name(),
                    with_bits.stats.oracle_queries,
                    with_bits.stats.local_bits.probes_avoided,
                    scalar.stats.oracle_queries
                ));
            }
            Ok(())
        }
        Check::FaultEquivalence { seed } => {
            tally.metamorphic += 1;
            tally.solves += 3;
            let lane = LaneSpec::baseline();
            let clean = lane
                .solve(&graph)
                .map_err(|e| format!("fault-free solve failed: {e}"))?;
            for plan_seed in [*seed, seed.wrapping_add(1)] {
                let plan = FaultPlan {
                    seed: plan_seed,
                    alloc_rate: 0.02,
                    launch_rate: 0.02,
                    max_retries: 64,
                };
                let faulted = lane
                    .solve_with(&graph, Some(plan))
                    .map_err(|e| format!("faulted solve (seed {plan_seed}) failed: {e}"))?;
                if faulted.clique_number != clean.clique_number || faulted.cliques != clean.cliques
                {
                    return Err(format!(
                        "fault plan seed {plan_seed} changed the output: \
                         ω {} vs {} fault-free",
                        faulted.clique_number, clean.clique_number
                    ));
                }
                let stats = faulted.stats.faults;
                if stats.recovered() != stats.injected() {
                    return Err(format!(
                        "fault plan seed {plan_seed}: injected {} faults but recovered {}",
                        stats.injected(),
                        stats.recovered()
                    ));
                }
            }
            Ok(())
        }
        Check::CancelHygiene => {
            // The solver answers empty/edgeless graphs before its first
            // cancellation poll; the probe is only meaningful with edges.
            if graph.num_edges() == 0 {
                return Ok(());
            }
            tally.differential += 1;
            tally.solves += 1;
            let device = Device::new(2, usize::MAX);
            device.set_cancel_token(Some(CancelToken::with_deadline(Instant::now())));
            let outcome =
                MaxCliqueSolver::with_config(device.clone(), LaneSpec::baseline().config())
                    .solve(&graph);
            match outcome {
                Err(SolveError::Cancelled(_)) => {}
                Ok(_) => {
                    return Err(
                        "solve under a pre-expired deadline completed instead of cancelling".into(),
                    )
                }
                Err(other) => {
                    return Err(format!(
                        "solve under a pre-expired deadline failed with {other} \
                         instead of Cancelled"
                    ))
                }
            }
            let live = device.memory().live();
            if live != 0 {
                return Err(format!(
                    "cancelled solve left {live} bytes charged to the device"
                ));
            }
            Ok(())
        }
        Check::Relabel { seed } => {
            tally.metamorphic += 1;
            tally.solves += 2;
            let lane = LaneSpec::baseline();
            let original = lane
                .solve(&graph)
                .map_err(|e| format!("solve failed: {e}"))?;
            let (relabelled, perm) = graph.randomize_vertex_ids(*seed);
            let renamed = lane
                .solve(&relabelled)
                .map_err(|e| format!("solve of relabelled graph failed: {e}"))?;
            // Map the relabelled cliques back through the inverse
            // permutation (new_id = perm[old_id]).
            let mut inverse = vec![0u32; perm.len()];
            for (old, &new) in perm.iter().enumerate() {
                inverse[new as usize] = old as u32;
            }
            let mut mapped: Vec<Vec<u32>> = renamed
                .cliques
                .iter()
                .map(|clique| {
                    let mut back: Vec<u32> = clique.iter().map(|&v| inverse[v as usize]).collect();
                    back.sort_unstable();
                    back
                })
                .collect();
            mapped.sort();
            if renamed.clique_number != original.clique_number || mapped != original.cliques {
                return Err(format!(
                    "relabeling changed the answer: ω {} with {} cliques vs \
                     ω {} with {} cliques after mapping back",
                    original.clique_number,
                    original.cliques.len(),
                    renamed.clique_number,
                    mapped.len()
                ));
            }
            Ok(())
        }
        Check::PlantClique { seed } => {
            let k = 3 + (seed % 4) as usize;
            if case.n < k {
                return Ok(());
            }
            tally.metamorphic += 1;
            tally.solves += 2;
            let lane = LaneSpec::baseline();
            let original = lane
                .solve(&graph)
                .map_err(|e| format!("solve failed: {e}"))?;
            let (planted, members) = generators::plant_clique(&graph, k, *seed);
            let grown = lane
                .solve(&planted)
                .map_err(|e| format!("solve of planted graph failed: {e}"))?;
            let floor = (k as u32).max(original.clique_number);
            if grown.clique_number < floor {
                return Err(format!(
                    "planted a {k}-clique on {members:?} but ω fell to {} \
                     (was {}, floor {floor})",
                    grown.clique_number, original.clique_number
                ));
            }
            Ok(())
        }
        Check::Union { seed } => {
            tally.metamorphic += 1;
            tally.solves += 3;
            let lane = LaneSpec::baseline();
            let mine = lane
                .solve(&graph)
                .map_err(|e| format!("solve failed: {e}"))?;
            let mut rng = Rng::seed_from_u64(*seed);
            let other_n = rng.gen_range(1..12usize);
            let other = generators::gnp(other_n, 0.5, rng.next_u64());
            let theirs = lane
                .solve(&other)
                .map_err(|e| format!("solve of union component failed: {e}"))?;
            let offset = case.n as u32;
            let mut edges = case.edges.clone();
            for (u, v) in CaseGraph::from_csr(&other).edges {
                edges.push((u + offset, v + offset));
            }
            let union = CaseGraph::new(case.n + other_n, edges).to_csr();
            let combined = lane
                .solve(&union)
                .map_err(|e| format!("solve of disjoint union failed: {e}"))?;
            let omega = mine.clique_number.max(theirs.clique_number);
            let mut expected: Vec<Vec<u32>> = Vec::new();
            if mine.clique_number == omega {
                expected.extend(mine.cliques.iter().cloned());
            }
            if theirs.clique_number == omega {
                expected.extend(
                    theirs
                        .cliques
                        .iter()
                        .map(|c| c.iter().map(|&v| v + offset).collect()),
                );
            }
            expected.sort();
            if combined.clique_number != omega || combined.cliques != expected {
                return Err(format!(
                    "disjoint union broke ω = max: parts have ω {} and {}, \
                     union reported ω {} with {} cliques (expected {})",
                    mine.clique_number,
                    theirs.clique_number,
                    combined.clique_number,
                    combined.cliques.len(),
                    expected.len()
                ));
            }
            Ok(())
        }
        Check::DeleteEdge { seed } => {
            if case.edges.is_empty() {
                return Ok(());
            }
            tally.metamorphic += 1;
            tally.solves += 2;
            let lane = LaneSpec::baseline();
            let before = lane
                .solve(&graph)
                .map_err(|e| format!("solve failed: {e}"))?;
            let mut edges = case.edges.clone();
            let dropped = edges.remove((*seed as usize) % edges.len());
            let thinner = CaseGraph::new(case.n, edges).to_csr();
            let after = lane
                .solve(&thinner)
                .map_err(|e| format!("solve after edge deletion failed: {e}"))?;
            let (b, a) = (before.clique_number, after.clique_number);
            if a > b || a + 1 < b {
                return Err(format!(
                    "deleting edge {dropped:?} moved ω from {b} to {a} \
                     (must stay or drop by exactly one)"
                ));
            }
            Ok(())
        }
        Check::UniversalVertex => {
            tally.metamorphic += 1;
            tally.solves += 2;
            let lane = LaneSpec::baseline();
            let original = lane
                .solve(&graph)
                .map_err(|e| format!("solve failed: {e}"))?;
            let hub = case.n as u32;
            let mut edges = case.edges.clone();
            edges.extend((0..hub).map(|v| (v, hub)));
            let starred = CaseGraph::new(case.n + 1, edges).to_csr();
            let grown = lane
                .solve(&starred)
                .map_err(|e| format!("solve with universal vertex failed: {e}"))?;
            let expected: Vec<Vec<u32>> = if case.n == 0 {
                // K1: the new vertex is the only (maximum) clique.
                vec![vec![0]]
            } else {
                // Every maximum clique of G + hub; order is preserved
                // because appending the largest id keeps lex order.
                original
                    .cliques
                    .iter()
                    .map(|c| {
                        let mut c = c.clone();
                        c.push(hub);
                        c
                    })
                    .collect()
            };
            if grown.clique_number != original.clique_number + 1 || grown.cliques != expected {
                return Err(format!(
                    "universal vertex: expected ω {} with {} cliques, got ω {} with {}",
                    original.clique_number + 1,
                    expected.len(),
                    grown.clique_number,
                    grown.cliques.len()
                ));
            }
            Ok(())
        }
        Check::BudgetReplay => {
            tally.metamorphic += 1;
            tally.solves += 2;
            let lane = LaneSpec::baseline();
            let roomy = lane
                .solve(&graph)
                .map_err(|e| format!("solve failed: {e}"))?;
            let peak = roomy.stats.peak_device_bytes + roomy.stats.heuristic_peak_bytes;
            let capacity = peak * 2 + (1 << 20);
            let device = Device::new(2, capacity);
            let replay = MaxCliqueSolver::with_config(device, lane.config()).solve(&graph);
            match replay {
                // The relation is conditional: a tighter budget is allowed
                // to OOM, it is not allowed to change the answer.
                Err(SolveError::DeviceOom(_)) => Ok(()),
                Err(other) => Err(format!("budget replay failed unexpectedly: {other}")),
                Ok(tight) => {
                    if tight.clique_number != roomy.clique_number || tight.cliques != roomy.cliques
                    {
                        return Err(format!(
                            "a {capacity}-byte budget changed the answer: ω {} with {} \
                             cliques vs ω {} with {} unlimited",
                            tight.clique_number,
                            tight.cliques.len(),
                            roomy.clique_number,
                            roomy.cliques.len()
                        ));
                    }
                    Ok(())
                }
            }
        }
    }
}

/// Shared comparison of one BFS lane result against the oracle.
fn compare_to_oracle(
    lane: &LaneSpec,
    graph: &Csr,
    result: &SolveResult,
    omega: u32,
    expected: &[Vec<u32>],
) -> Result<(), String> {
    if result.clique_number != omega {
        return Err(format!(
            "{} reported ω = {} but the oracle says {omega}",
            lane.name(),
            result.clique_number
        ));
    }
    if omega == 0 {
        if !result.cliques.is_empty() {
            return Err(format!(
                "{} returned cliques for the empty graph",
                lane.name()
            ));
        }
        return Ok(());
    }
    if result.complete_enumeration {
        if result.cliques != expected {
            return Err(format!(
                "{} enumerated {} maximum cliques, oracle found {}; sets differ",
                lane.name(),
                result.cliques.len(),
                expected.len()
            ));
        }
        return Ok(());
    }
    if !lane.enumerates() {
        // Find-one mode promises exactly one valid maximum-clique witness.
        let [witness] = result.cliques.as_slice() else {
            return Err(format!(
                "{} in find-one mode returned {} cliques",
                lane.name(),
                result.cliques.len()
            ));
        };
        if witness.len() != omega as usize || !graph.is_clique(witness) {
            return Err(format!(
                "{} returned an invalid witness {witness:?} for ω = {omega}",
                lane.name()
            ));
        }
        if !expected.contains(witness) {
            return Err(format!(
                "{} witness {witness:?} is not one of the oracle's maximum cliques",
                lane.name()
            ));
        }
        return Ok(());
    }
    Err(format!(
        "{} promised enumeration but flagged the result incomplete",
        lane.name()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_clean(check: &Check, case: &CaseGraph) -> Result<(), String> {
        eval(check, case, None, &mut Tally::default())
    }

    #[test]
    fn battery_passes_on_seeded_cases() {
        // One case per generator category through the full battery — the
        // smoke version of what `run()` does for a budget.
        for (i, &category) in crate::gen::CATEGORIES.iter().enumerate() {
            let mut rng = Rng::seed_from_u64(100 + i as u64);
            let case = crate::gen::sample_category(&mut rng, category);
            for check in battery(&mut rng, false) {
                if let Err(detail) = eval_clean(&check, &case) {
                    panic!("{category}: {} failed: {detail}", check.name());
                }
            }
        }
    }

    #[test]
    fn sabotage_is_caught_by_the_differential_lane() {
        let mut tally = Tally::default();
        let tie_case = CaseGraph::new(2, Vec::new());
        let baseline = Check::Differential {
            lane: LaneSpec::baseline(),
        };
        assert!(eval(&baseline, &tie_case, Some(Sabotage::DropTies), &mut tally).is_err());
        let triangle = CaseGraph::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert!(eval(
            &baseline,
            &triangle,
            Some(Sabotage::UnderReport),
            &mut tally
        )
        .is_err());
        // And the honest solver passes the same checks.
        assert!(eval(&baseline, &tie_case, None, &mut tally).is_ok());
        assert!(eval(&baseline, &triangle, None, &mut tally).is_ok());
    }

    #[test]
    fn check_names_are_stable() {
        assert_eq!(
            Check::Differential {
                lane: LaneSpec::baseline()
            }
            .name(),
            "differential: bfs[fused,auto,auto,w2] vs oracle"
        );
        assert_eq!(
            Check::UniversalVertex.name(),
            "metamorphic: universal-vertex"
        );
    }
}
