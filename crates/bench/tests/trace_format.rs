//! Chrome-trace export format check: a traced smoke solve must produce
//! JSON that round-trips through this crate's parser with every field the
//! trace-event format requires, and with well-nested spans per thread.

use gmc_bench::json;
use gmc_dpp::Device;
use gmc_graph::generators;
use gmc_mce::{MaxCliqueSolver, SolverConfig, WindowConfig};
use gmc_trace::TraceSession;

fn traced_smoke_solve() -> String {
    let graph = generators::gnp(200, 0.06, 11);
    let session = TraceSession::new();
    let config = SolverConfig {
        window: Some(WindowConfig::with_size(64)),
        trace: session.tracer(),
        ..Default::default()
    };
    MaxCliqueSolver::with_config(Device::unlimited(), config)
        .solve(&graph)
        .expect("smoke solve fits in unlimited memory");
    session.finish().to_chrome_json()
}

#[test]
fn chrome_trace_has_required_fields_and_nests() {
    let text = traced_smoke_solve();
    let value = json::parse(&text).expect("trace JSON parses");
    let events = value["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(value["gmcDroppedEvents"].as_u64() == Some(0));

    // (tid, ts, dur) per complete event, for the nesting check below.
    let mut complete: Vec<(u64, f64, f64)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for event in events {
        let ph = event["ph"].as_str().expect("every event has ph");
        let name = event["name"].as_str().expect("every event has name");
        match ph {
            "X" => {
                assert!(event["pid"].as_u64().is_some(), "X event has pid");
                let tid = event["tid"].as_u64().expect("X event has tid");
                let ts = event["ts"].as_f64().expect("X event has ts");
                let dur = event["dur"].as_f64().expect("X event has dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                complete.push((tid, ts, dur));
                names.push(name.to_string());
            }
            "M" | "C" | "i" => {}
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    assert!(!complete.is_empty(), "solve produced complete (X) events");

    // Every launch, level and phase shows up by name.
    for expected in ["solve", "setup", "windowed_search", "window", "bfs_level"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing `{expected}` span in {names:?}"
        );
    }

    // Per-thread nesting: events are emitted in start order, and each span
    // either nests inside the enclosing open span or starts after it ends.
    let mut tids: Vec<u64> = complete.iter().map(|&(tid, _, _)| tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut stack: Vec<f64> = Vec::new(); // open-span end times
        let mut last_ts = 0.0f64;
        for &(_, ts, dur) in complete.iter().filter(|&&(t, _, _)| t == tid) {
            assert!(ts >= last_ts, "per-thread ts monotonic");
            last_ts = ts;
            while stack.last().is_some_and(|&end| ts >= end) {
                stack.pop();
            }
            let end = ts + dur;
            if let Some(&open_end) = stack.last() {
                assert!(
                    end <= open_end + 1e-9,
                    "span [{ts}, {end}] escapes enclosing span ending at {open_end}"
                );
            }
            stack.push(end);
        }
    }
}

#[test]
fn trace_report_renders_the_smoke_trace() {
    let dir = std::env::temp_dir().join("gmc_trace_format_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smoke.json");
    std::fs::write(&path, traced_smoke_solve()).unwrap();
    let report = gmc_bench::report::render_trace_file(&path).expect("report renders");
    assert!(report.contains("| solve |"), "{report}");
    assert!(report.contains("p99"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}
