//! Counter-shape trend gate over the committed bench records.
//!
//! Re-parses `BENCH_fused.json`, `BENCH_localbits.json`,
//! `BENCH_schedule.json` and `BENCH_serve.json` with the in-tree
//! `gmc_bench::json` parser and re-runs the probe/query/decomposition
//! counter measurements. The gate fails when a current counter
//! *regresses* past a tolerance against its committed value —
//! deterministic counters, not wall-clock, so the gate is stable on any
//! CI machine. Run by the `bench-trend` CI step.

use gmc_bench::json::{self, Json};
use gmc_corpus::{by_name, Tier};
use gmc_dpp::{Device, Executor, Schedule};
use gmc_mce::{LocalBitsMode, MaxCliqueSolver};

/// A counter may regress by at most 10% against its committed value.
/// Improvements (fewer queries, fewer launches) always pass.
const TOLERANCE: f64 = 1.10;

/// Spot-checked datasets: the same per-category representatives the timed
/// micro benches use, so a regression here mirrors a regression there.
const CHECKED: &[&str] = &[
    "road-grid-02",
    "ca-papers-03",
    "socfb-campus-04",
    "web-crawl-03",
];

fn committed(name: &str) -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("reading committed {name}: {e}"));
    json::parse(&text).unwrap_or_else(|e| panic!("parsing committed {name}: {e}"))
}

fn row<'a>(doc: &'a Json, dataset: &str) -> &'a Json {
    doc.as_array()
        .expect("record is an array of rows")
        .iter()
        .find(|row| row["dataset"].as_str() == Some(dataset))
        .unwrap_or_else(|| panic!("dataset {dataset} missing from committed record"))
}

fn load(dataset: &str) -> gmc_graph::Csr {
    by_name(Tier::Smoke, dataset)
        .unwrap_or_else(|| panic!("dataset {dataset}"))
        .load()
}

/// `current` may beat `expected` freely but not regress past tolerance.
fn check_counter(dataset: &str, counter: &str, current: u64, expected: u64) -> Result<(), String> {
    if (current as f64) <= (expected as f64) * TOLERANCE {
        Ok(())
    } else {
        Err(format!(
            "{dataset}: {counter} regressed {current} vs committed {expected} (tolerance {:.0}%)",
            (TOLERANCE - 1.0) * 100.0
        ))
    }
}

#[test]
fn fused_query_and_launch_counters_have_not_regressed() {
    let doc = committed("BENCH_fused.json");
    let mut failures = Vec::new();
    for dataset in CHECKED {
        let expected = row(&doc, dataset);
        let graph = load(dataset);
        let fused = MaxCliqueSolver::new(Device::unlimited())
            .fused(true)
            .solve(&graph)
            .expect("unlimited device");
        for (counter, current, key) in [
            (
                "fused oracle queries",
                fused.stats.oracle_queries,
                "fused_queries",
            ),
            (
                "fused launches",
                fused.stats.launches.launches,
                "fused_launches",
            ),
        ] {
            let committed_value = expected[key]
                .as_u64()
                .unwrap_or_else(|| panic!("{dataset}: {key} is not an integer"));
            if let Err(e) = check_counter(dataset, counter, current, committed_value) {
                failures.push(e);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "bench trend gate failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn local_bitmap_probe_counters_have_not_regressed() {
    let doc = committed("BENCH_localbits.json");
    let mut failures = Vec::new();
    for dataset in CHECKED {
        let expected = row(&doc, dataset);
        let graph = load(dataset);
        let solve = |mode: LocalBitsMode| {
            MaxCliqueSolver::new(Device::unlimited())
                .fused(true)
                .local_bits(mode)
                .solve(&graph)
                .expect("unlimited device")
        };
        let off = solve(LocalBitsMode::Off);
        let on = solve(LocalBitsMode::On);
        for (counter, current, key) in [
            (
                "scalar oracle queries",
                off.stats.oracle_queries,
                "scalar_queries",
            ),
            (
                "bitmap-on oracle queries",
                on.stats.oracle_queries,
                "on_queries",
            ),
        ] {
            let committed_value = expected[key]
                .as_u64()
                .unwrap_or_else(|| panic!("{dataset}: {key} is not an integer"));
            if let Err(e) = check_counter(dataset, counter, current, committed_value) {
                failures.push(e);
            }
        }
        // The bitmap path must still *avoid* probes: at least 90% of the
        // committed avoided count.
        let committed_avoided = expected["on_avoided"].as_u64().expect("on_avoided");
        let current_avoided = on.stats.local_bits.probes_avoided;
        if (current_avoided as f64) < (committed_avoided as f64) / TOLERANCE {
            failures.push(format!(
                "{dataset}: on_avoided fell to {current_avoided} vs committed {committed_avoided}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "bench trend gate failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn schedule_decomposition_counters_match_the_committed_record() {
    // The morsel decomposition is a pure function of the grid size and the
    // schedule grain — worker-count independent by design. Re-run the bench's
    // grid at a *different* worker count than the committed record and
    // require the dynamic schedules' morsel counts to match exactly.
    let doc = committed("BENCH_schedule.json");
    let grid = 8192usize; // micro_schedule's GRID
    let cost = |i: usize| if i < grid / 8 { 63u64 } else { 1 };
    let workers = 4usize;
    for (name, schedule) in [
        ("morsel", Schedule::Morsel { grain: 64 }),
        ("guided", Schedule::Guided),
        ("auto", Schedule::Auto),
    ] {
        let exec = Executor::new(workers);
        exec.set_schedule(schedule);
        let before = exec.schedule_stats();
        exec.for_each_weighted(grid, cost, |i| {
            std::hint::black_box(i);
        });
        let delta = exec.schedule_stats().since(&before);
        let expected = doc
            .as_array()
            .expect("array")
            .iter()
            .find(|r| {
                r["grid"].as_str() == Some("skewed_front") && r["schedule"].as_str() == Some(name)
            })
            .unwrap_or_else(|| panic!("schedule {name} missing from committed record"))["morsels"]
            .as_u64()
            .expect("morsels is an integer");
        assert_eq!(
            delta.morsels, expected,
            "{name}: morsel decomposition changed (committed at a different worker count — \
             the decomposition must not depend on workers)"
        );
        assert_eq!(delta.dynamic_launches, 1, "{name}");
        assert_eq!(delta.weighted_launches, 1, "{name}");
    }
}

#[test]
fn committed_schedule_record_is_internally_consistent() {
    // Every grid × schedule cell is present, wall clocks are positive, and
    // the committed speedup field re-derives from the static row's wall.
    let doc = committed("BENCH_schedule.json");
    let rows = doc.as_array().expect("array");
    for grid in ["skewed_front", "powerlaw", "uniform"] {
        let cell = |schedule: &str| {
            rows.iter()
                .find(|r| {
                    r["grid"].as_str() == Some(grid) && r["schedule"].as_str() == Some(schedule)
                })
                .unwrap_or_else(|| panic!("{grid}/{schedule} missing"))
        };
        let static_ms = cell("static")["wall_ms"].as_f64().expect("wall_ms");
        assert!(static_ms > 0.0, "{grid}: static wall must be positive");
        let workers = cell("static")["workers"].as_u64().expect("workers");
        assert_eq!(
            cell("static")["morsels"].as_u64().expect("morsels"),
            workers,
            "{grid}: static chunking is one chunk per worker"
        );
        for schedule in ["static", "morsel", "guided", "auto"] {
            let row = cell(schedule);
            let wall = row["wall_ms"].as_f64().expect("wall_ms");
            let speedup = row["speedup_vs_static"].as_f64().expect("speedup");
            assert!(wall > 0.0, "{grid}/{schedule}");
            assert!(
                (speedup - static_ms / wall).abs() < 1e-6,
                "{grid}/{schedule}: committed speedup {speedup} != derived {}",
                static_ms / wall
            );
            assert!(row["morsels"].as_u64().expect("morsels") >= 1);
            assert!(
                row["max_worker_morsels"].as_u64().expect("max")
                    <= row["morsels"].as_u64().unwrap(),
                "{grid}/{schedule}: one worker cannot claim more morsels than exist"
            );
        }
    }
}

#[test]
fn committed_records_are_internally_consistent() {
    // Shape check on the full committed records: every row parses, the
    // derived percentages match their inputs, and the fused pipeline never
    // issues more queries than the unfused baseline it replaced.
    let fused = committed("BENCH_fused.json");
    for row in fused.as_array().expect("array") {
        let f = row["fused_queries"].as_f64().expect("fused_queries");
        let u = row["unfused_queries"].as_f64().expect("unfused_queries");
        let pct = row["query_reduction_pct"].as_f64().expect("pct");
        let derived = if u == 0.0 { 0.0 } else { 100.0 * (1.0 - f / u) };
        assert!(
            (pct - derived).abs() < 1e-6,
            "{}: committed reduction {pct} != derived {derived}",
            row["dataset"].as_str().unwrap_or("?")
        );
        assert!(f <= u, "fused pipeline must not add queries");
    }

    let localbits = committed("BENCH_localbits.json");
    for row in localbits.as_array().expect("array") {
        let scalar = row["scalar_queries"].as_f64().expect("scalar_queries");
        let on_q = row["on_queries"].as_f64().expect("on_queries");
        let on_avoided = row["on_avoided"].as_f64().expect("on_avoided");
        assert!(
            (on_q + on_avoided - scalar).abs() < 1e-6,
            "{}: on_queries + on_avoided must equal scalar_queries",
            row["dataset"].as_str().unwrap_or("?")
        );
    }
}

#[test]
fn auto_cost_model_is_not_miscalibrated_per_category() {
    // Satellite gate for the Auto tier's cost model: if an entire corpus
    // category ran scalar under Auto (`auto_avoided == 0` on every row)
    // while the forced bitmap tier eliminated ≥80% of its probes, the
    // model is leaving proven wins on the table and the gate fails.
    let doc = committed("BENCH_localbits.json");
    let mut by_cat: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for row in doc.as_array().expect("array") {
        let cat = row["category"].as_str().expect("category").to_string();
        let entry = by_cat.entry(cat).or_default();
        entry.0 += row["auto_avoided"].as_u64().expect("auto_avoided");
        entry.1 += row["scalar_queries"].as_u64().expect("scalar_queries");
        entry.2 += row["on_queries"].as_u64().expect("on_queries");
    }
    let mut failures = Vec::new();
    for (cat, (auto_avoided, scalar, on)) in &by_cat {
        let on_reduction_pct = if *scalar == 0 {
            0.0
        } else {
            100.0 * (1.0 - *on as f64 / *scalar as f64)
        };
        if *auto_avoided == 0 && on_reduction_pct >= 80.0 {
            failures.push(format!(
                "{cat}: Auto stayed scalar across the whole category while the \
                 forced bitmap tier saved {on_reduction_pct:.1}% of {scalar} probes"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "auto cost model miscalibrated:\n{}",
        failures.join("\n")
    );
}

#[test]
fn committed_core_bits_record_is_internally_consistent() {
    // The persistent tier's exact accounting: every scalar probe is either
    // performed or answered by the core bitmap, the committed elimination
    // percentage re-derives from its inputs, and nothing was rebuilt after
    // the one-time build. The socfb aggregate must clear the ≥95% bar the
    // perf gate enforces.
    let doc = committed("BENCH_corebits.json");
    let (mut socfb_per, mut socfb_scalar) = (0u64, 0u64);
    for row in doc.as_array().expect("array") {
        let name = row["dataset"].as_str().unwrap_or("?");
        let scalar = row["scalar_queries"].as_u64().expect("scalar_queries");
        let per_q = row["persistent_queries"]
            .as_u64()
            .expect("persistent_queries");
        let per_probes = row["persistent_probes"]
            .as_u64()
            .expect("persistent_probes");
        assert_eq!(
            per_q + per_probes,
            scalar,
            "{name}: persistent_queries + persistent_probes must equal scalar_queries"
        );
        assert_eq!(
            row["rebuilds"].as_u64().expect("rebuilds"),
            0,
            "{name}: the persistent tier must never rebuild per-level rows"
        );
        let pct = row["elimination_pct"].as_f64().expect("elimination_pct");
        let derived = if scalar == 0 {
            100.0
        } else {
            100.0 * (1.0 - per_q as f64 / scalar as f64)
        };
        assert!(
            (pct - derived).abs() < 1e-6,
            "{name}: committed elimination {pct} != derived {derived}"
        );
        if row["category"].as_str() == Some("socfb") {
            socfb_per += per_q;
            socfb_scalar += scalar;
        }
    }
    assert!(socfb_scalar > 0, "socfb rows must be present");
    assert!(
        socfb_per * 20 <= socfb_scalar,
        "socfb probe elimination fell below 95%: {socfb_per} of {socfb_scalar} remain"
    );
}

#[test]
fn persistent_probe_counters_have_not_regressed() {
    let doc = committed("BENCH_corebits.json");
    let mut failures = Vec::new();
    for dataset in CHECKED {
        let expected = row(&doc, dataset);
        let graph = load(dataset);
        let per = MaxCliqueSolver::new(Device::unlimited())
            .fused(true)
            .local_bits(LocalBitsMode::Persistent)
            .solve(&graph)
            .expect("unlimited device");
        assert_eq!(
            per.stats.local_bits.rows_built, 0,
            "{dataset}: persistent tier rebuilt per-level rows"
        );
        let committed_value = expected["persistent_queries"]
            .as_u64()
            .unwrap_or_else(|| panic!("{dataset}: persistent_queries is not an integer"));
        if let Err(e) = check_counter(
            dataset,
            "persistent oracle queries",
            per.stats.oracle_queries,
            committed_value,
        ) {
            failures.push(e);
        }
        // The bitmap must keep answering the walk: at least 90% of the
        // committed probe count.
        let committed_probes = expected["persistent_probes"]
            .as_u64()
            .expect("persistent_probes");
        let current_probes = per.stats.local_bits.persistent_probes;
        if (current_probes as f64) < (committed_probes as f64) / TOLERANCE {
            failures.push(format!(
                "{dataset}: persistent_probes fell to {current_probes} vs committed {committed_probes}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "bench trend gate failed:\n{}",
        failures.join("\n")
    );
}

/// Workload constants mirrored from `benches/serve_load.rs` — the
/// committed `BENCH_serve.json` was produced with exactly these.
mod serve_workload {
    pub const DATASETS: &[&str] = &[
        "road-grid-02",
        "ca-papers-03",
        "socfb-campus-04",
        "web-crawl-03",
    ];
    pub const REPEATS: usize = 8;
    pub const DEADLINE_JOBS: usize = 2;
    pub const SEED: u64 = 2024;
}

#[test]
fn committed_serve_record_is_internally_consistent() {
    let doc = committed("BENCH_serve.json");
    let total = doc["total_jobs"].as_u64().expect("total_jobs");
    let uniques = doc["unique_jobs"].as_u64().expect("unique_jobs");
    let repeats = doc["repeat_jobs"].as_u64().expect("repeat_jobs");
    let deadlines = doc["deadline_jobs"].as_u64().expect("deadline_jobs");
    let hits = doc["cache_hits"].as_u64().expect("cache_hits");
    let misses = doc["cache_misses"].as_u64().expect("cache_misses");
    let hit_rate = doc["hit_rate"].as_f64().expect("hit_rate");

    assert_eq!(uniques + repeats + deadlines, total);
    assert_eq!(hits + misses, total, "every job is a hit or a miss");
    assert_eq!(hits, repeats, "every replay draw hits the populated cache");
    assert_eq!(
        misses,
        uniques + deadlines,
        "uniques and sentinels all miss"
    );
    let derived = hits as f64 / (hits + misses) as f64;
    assert!(
        (hit_rate - derived).abs() < 1e-6,
        "committed hit_rate {hit_rate} != derived {derived}"
    );
    assert!(
        hit_rate >= 0.4,
        "the ≥50%-repeat workload must sustain a hit rate ≥ 0.4, got {hit_rate}"
    );
    assert_eq!(
        doc["cancellations"].as_u64().expect("cancellations"),
        deadlines,
        "every past-deadline sentinel cancels"
    );
    assert_eq!(
        doc["bit_identical"].as_bool(),
        Some(true),
        "served results matched the standalone solve when recorded"
    );
    assert!(doc["launches"].as_u64().expect("launches") > 0);
    assert!(doc["wall_ms"].as_f64().expect("wall_ms") > 0.0);
}

#[test]
fn serve_counters_match_the_committed_record_at_a_different_pool_size() {
    // The deterministic counters are a pure function of the workload, not
    // of service sizing: re-run the committed workload on a *single-slot*
    // pool (the committed record used two) and require exact equality.
    use gmc_serve::{loadgen, ServeConfig, SolveService};
    use std::sync::Arc;

    let doc = committed("BENCH_serve.json");
    let uniques: Vec<_> = serve_workload::DATASETS
        .iter()
        .map(|name| Arc::new(load(name)))
        .collect();
    let sentinels: Vec<_> = (0..serve_workload::DEADLINE_JOBS)
        .map(|i| {
            Arc::new(gmc_graph::generators::gnp(
                150,
                0.12,
                serve_workload::SEED + i as u64,
            ))
        })
        .collect();
    let service = SolveService::start(ServeConfig::default().pool(1).queue_depth(4));
    let report = loadgen::run_with_graphs(
        &service,
        &uniques,
        &sentinels,
        serve_workload::REPEATS,
        serve_workload::SEED,
    );
    let stats = service.shutdown();

    assert!(report.bit_identical, "served results must match solve()");
    for (counter, current) in [
        ("total_jobs", report.total_jobs),
        ("cache_hits", report.cache_hits),
        ("cache_misses", report.cache_misses),
        ("cancellations", report.cancellations),
        ("launches", stats.launches),
        ("oracle_queries", stats.oracle_queries),
    ] {
        let expected = doc[counter]
            .as_u64()
            .unwrap_or_else(|| panic!("{counter} is not an integer"));
        assert_eq!(
            current, expected,
            "{counter}: pool-size-independent counter diverged from the committed record"
        );
    }
}
