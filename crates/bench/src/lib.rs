//! # gmc-bench: the experiment harness
//!
//! One bench target per table/figure of the paper's evaluation (run with
//! `cargo bench -p gmc-bench --bench <name>`), plus in-tree
//! micro-benchmarks. Every target prints the paper-style rows/series to
//! stdout and writes a JSON record under `target/experiments/`.
//!
//! Environment knobs:
//!
//! * `GMC_TIER` — `smoke` | `small` (default) | `full`: corpus scale.
//! * `GMC_BUDGET_MB` — device-memory budget in MiB (tier-calibrated
//!   default: 1/3/24 for smoke/small/full). The paper's A100 had 40 GB
//!   against graphs of up to 106M edges; the defaults keep the same
//!   *pressure* against this corpus' scale so the OOM phenomenology of
//!   Table I reproduces.
//! * `GMC_WORKERS` — virtual-GPU worker threads (default: all cores).
//! * `GMC_PMC_THREADS` — CPU baseline threads (default: all cores).
//! * `GMC_LAUNCH_OVERHEAD_US` — simulated per-kernel-launch latency in µs
//!   (default 3), modelling the fixed cost every CUDA launch pays.
//! * `GMC_REPEATS` — timing repetitions per configuration (default 1; the
//!   paper reports the average of 5 runs).

#![warn(missing_docs)]

pub mod harness;
pub mod json;
pub mod report;

use gmc_corpus::{corpus, DatasetSpec, Tier};
use gmc_dpp::Device;
use gmc_graph::Csr;
use gmc_mce::{MaxCliqueSolver, SolveError, SolveResult, SolverConfig};
use json::{Json, ToJson};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Harness configuration resolved from the environment.
pub struct BenchEnv {
    /// Corpus tier.
    pub tier: Tier,
    /// Device-memory budget in bytes.
    pub budget_bytes: usize,
    /// Virtual-GPU workers.
    pub workers: usize,
    /// CPU baseline threads.
    pub pmc_threads: usize,
    /// Simulated per-kernel-launch overhead for the virtual GPU.
    pub launch_overhead: Duration,
    /// Timing repetitions per configuration (averaged).
    pub repeats: usize,
    /// Where JSON records are written.
    pub out_dir: PathBuf,
}

impl BenchEnv {
    /// Reads the `GMC_*` environment variables.
    pub fn from_env() -> Self {
        let tier = match std::env::var("GMC_TIER").as_deref() {
            Ok("smoke") => Tier::Smoke,
            Ok("full") => Tier::Full,
            Ok("small") | Err(_) => Tier::Small,
            Ok(other) => panic!("unknown GMC_TIER `{other}` (smoke|small|full)"),
        };
        // Default budget scales with the corpus tier so the memory pressure
        // the paper's A100 felt against 10k–106M-edge graphs carries over.
        // Calibrated so Table I's OOM gradient matches the paper's shape at
        // each tier (see EXPERIMENTS.md).
        let default_budget_mb = match tier {
            Tier::Smoke => 1,
            Tier::Small => 3,
            Tier::Full => 24,
        };
        // All numeric knobs go through the shared helper so a typo fails
        // loudly instead of silently falling back to the default.
        let budget_mb: usize = gmc_trace::env::parse_or("GMC_BUDGET_MB", default_budget_mb);
        let launch_overhead_us: u64 = gmc_trace::env::parse_or("GMC_LAUNCH_OVERHEAD_US", 3);
        let default_threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let workers = gmc_trace::env::parse_or("GMC_WORKERS", default_threads);
        let pmc_threads = gmc_trace::env::parse_or("GMC_PMC_THREADS", default_threads);
        let repeats = gmc_trace::env::parse("GMC_REPEATS").map_or(1, |r: usize| r.max(1));
        Self {
            tier,
            budget_bytes: budget_mb * 1024 * 1024,
            workers,
            pmc_threads,
            launch_overhead: Duration::from_micros(launch_overhead_us),
            repeats,
            out_dir: default_out_dir(),
        }
    }

    /// Runs a configuration [`BenchEnv::repeats`] times on fresh budgeted
    /// devices and averages the timing fields (the paper reports 5-run
    /// averages). Structural fields (ω, memory, launches) come from the
    /// final run; any OOM makes the whole outcome OOM.
    pub fn run_averaged(&self, graph: &Csr, config: &SolverConfig) -> RunOutcome {
        let mut total_ms_sum = 0.0;
        let mut heuristic_ms_sum = 0.0;
        let mut last: Option<SolvedRecord> = None;
        for _ in 0..self.repeats {
            let device = self.device();
            match run_solver(&device, graph, config.clone()).expect("solver runs") {
                RunOutcome::Solved(rec) => {
                    total_ms_sum += rec.total_ms;
                    heuristic_ms_sum += rec.heuristic_ms;
                    last = Some(rec);
                }
                RunOutcome::Oom => return RunOutcome::Oom,
            }
        }
        let mut rec = last.expect("repeats >= 1");
        rec.total_ms = total_ms_sum / self.repeats as f64;
        rec.heuristic_ms = heuristic_ms_sum / self.repeats as f64;
        rec.throughput_eps = if rec.total_ms > 0.0 {
            graph.num_edges() as f64 / (rec.total_ms / 1e3)
        } else {
            0.0
        };
        RunOutcome::Solved(rec)
    }

    /// A fresh budgeted device (budget + workers + launch overhead from the
    /// environment).
    pub fn device(&self) -> Device {
        let device = Device::new(self.workers, self.budget_bytes);
        device.exec().set_launch_overhead(self.launch_overhead);
        device
    }

    /// A fresh device with no memory limit (for reference runs); same
    /// simulated launch overhead as [`BenchEnv::device`].
    pub fn unlimited_device(&self) -> Device {
        let device = Device::new(self.workers, usize::MAX);
        device.exec().set_launch_overhead(self.launch_overhead);
        device
    }

    /// Human-readable banner for experiment output.
    pub fn banner(&self, experiment: &str) {
        println!("== {experiment} ==");
        println!(
            "tier={:?} budget={} MiB workers={} pmc_threads={} launch_overhead={:?} repeats={}",
            self.tier,
            self.budget_bytes / (1024 * 1024),
            self.workers,
            self.pmc_threads,
            self.launch_overhead,
            self.repeats
        );
    }
}

/// A loaded dataset with its summary metadata.
pub struct LoadedDataset {
    /// Corpus spec this was built from.
    pub spec: DatasetSpec,
    /// The graph, index-randomised.
    pub graph: Csr,
}

impl LoadedDataset {
    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Mean degree.
    pub fn avg_degree(&self) -> f64 {
        self.graph.avg_degree()
    }
}

/// Loads the whole corpus at the environment's tier.
pub fn load_corpus(env: &BenchEnv) -> Vec<LoadedDataset> {
    corpus(env.tier)
        .into_iter()
        .map(|spec| {
            let graph = spec.load();
            LoadedDataset { spec, graph }
        })
        .collect()
}

/// Resolves `target/experiments` against the workspace root. Bench
/// executables run with the *package* directory as cwd, so a bare relative
/// path would scatter records under `crates/bench/`.
fn default_out_dir() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/bench → workspace root is two levels up.
        let workspace = PathBuf::from(manifest).join("../..");
        if workspace.join("Cargo.toml").exists() {
            return workspace.join("target/experiments");
        }
    }
    PathBuf::from("target/experiments")
}

/// Outcome of one solver run on one dataset.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run completed.
    Solved(SolvedRecord),
    /// The run exceeded the device-memory budget.
    Oom,
}

impl RunOutcome {
    /// The solved record, when present.
    pub fn solved(&self) -> Option<&SolvedRecord> {
        match self {
            RunOutcome::Solved(r) => Some(r),
            RunOutcome::Oom => None,
        }
    }

    /// Whether the run hit the memory budget.
    pub fn is_oom(&self) -> bool {
        matches!(self, RunOutcome::Oom)
    }
}

impl ToJson for RunOutcome {
    /// Internally tagged, matching the previous serde shape:
    /// `{"status":"solved", ...record fields}` / `{"status":"oom"}`.
    fn to_json(&self) -> Json {
        match self {
            RunOutcome::Solved(rec) => {
                let mut fields = vec![("status".to_string(), Json::Str("solved".into()))];
                if let Json::Obj(rest) = rec.to_json() {
                    fields.extend(rest);
                }
                Json::Obj(fields)
            }
            RunOutcome::Oom => Json::object([("status", Json::Str("oom".into()))]),
        }
    }
}

/// Measurements from a completed solve.
#[derive(Debug, Clone)]
pub struct SolvedRecord {
    /// Clique number found.
    pub omega: u32,
    /// Number of maximum cliques (1 in find-one mode).
    pub multiplicity: usize,
    /// Heuristic lower bound ω̄.
    pub lower_bound: u32,
    /// End-to-end solve time in milliseconds (includes heuristic + setup,
    /// as the paper reports).
    pub total_ms: f64,
    /// Heuristic phase time in milliseconds.
    pub heuristic_ms: f64,
    /// Device-memory peak in bytes.
    pub peak_bytes: usize,
    /// Fraction of 2-clique entries pruned at setup.
    pub pruning_fraction: f64,
    /// Throughput in edges per second (paper Figs. 2–3).
    pub throughput_eps: f64,
    /// Virtual-GPU kernel launches the solve issued. On real hardware every
    /// launch has a fixed cost, so this is the cost proxy for strategies
    /// (like small windows) that multiply launch counts.
    pub launches: u64,
    /// Edge-oracle membership queries the expansion kernels issued — the
    /// adjacency-walk cost the fused pipeline exists to cut.
    pub oracle_queries: u64,
    /// Sublist-local bitmap rows the count kernels built (zero whenever the
    /// word-parallel path stayed off or never fired).
    pub bitmap_rows: u64,
    /// Bitmap row words scanned in place of scalar probes; each covers up
    /// to 64 tail candidates with one shift/AND/popcount.
    pub bitmap_words: u64,
    /// Edge-oracle probes the bitmap path made unnecessary —
    /// `oracle_queries + bitmap_probes_avoided` equals the scalar walk's
    /// query count exactly.
    pub bitmap_probes_avoided: u64,
}

impl_to_json!(SolvedRecord {
    omega,
    multiplicity,
    lower_bound,
    total_ms,
    heuristic_ms,
    peak_bytes,
    pruning_fraction,
    throughput_eps,
    launches,
    oracle_queries,
    bitmap_rows,
    bitmap_words,
    bitmap_probes_avoided,
});

/// Runs the solver on a graph, mapping OOM to [`RunOutcome::Oom`].
pub fn run_solver(
    device: &Device,
    graph: &Csr,
    config: SolverConfig,
) -> Result<RunOutcome, SolveError> {
    let solver = MaxCliqueSolver::with_config(device.clone(), config);
    match solver.solve(graph) {
        Ok(result) => Ok(RunOutcome::Solved(record_of(graph, &result))),
        Err(SolveError::DeviceOom(_)) => Ok(RunOutcome::Oom),
        Err(err @ SolveError::FaultRetriesExhausted { .. }) => Err(err),
        // The harness never installs a cancel token; surface it if one
        // leaks in from a misconfigured device.
        Err(err @ SolveError::Cancelled(_)) => Err(err),
    }
}

/// Converts a [`SolveResult`] into the harness record.
pub fn record_of(graph: &Csr, result: &SolveResult) -> SolvedRecord {
    let total = result.stats.total_time;
    SolvedRecord {
        omega: result.clique_number,
        multiplicity: result.multiplicity(),
        lower_bound: result.stats.lower_bound,
        total_ms: millis(total),
        heuristic_ms: millis(result.stats.heuristic_time),
        peak_bytes: result.stats.peak_device_bytes,
        pruning_fraction: result.stats.pruning_fraction(),
        throughput_eps: if total.is_zero() {
            0.0
        } else {
            graph.num_edges() as f64 / total.as_secs_f64()
        },
        launches: result.stats.launches.launches,
        oracle_queries: result.stats.oracle_queries,
        bitmap_rows: result.stats.local_bits.rows_built,
        bitmap_words: result.stats.local_bits.words_anded,
        bitmap_probes_avoided: result.stats.local_bits.probes_avoided,
    }
}

/// Duration → fractional milliseconds.
pub fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times a closure, returning its result and elapsed duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Geometric mean of positive values; 0 when empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().filter(|v| **v > 0.0).map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a fixed-width ASCII table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json`.
pub fn save_json<T: ToJson + ?Sized>(env: &BenchEnv, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(&env.out_dir) {
        eprintln!("warning: cannot create {}: {e}", env.out_dir.display());
        return;
    }
    let path = env.out_dir.join(format!("{name}.json"));
    let json = value.to_json().to_string_pretty();
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("(json record: {})", path.display());
    }
}

/// Computes the true clique number via the DFS baseline (no memory limit),
/// used to score heuristic accuracy on datasets where the BFS solver OOMs.
pub fn true_omega(env: &BenchEnv, graph: &Csr) -> u32 {
    gmc_pmc::ParallelBranchBound::new(env.pmc_threads)
        .solve(graph)
        .clique_number
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn env_defaults() {
        // Only check the pure parsing defaults (no env mutation in tests).
        let env = BenchEnv::from_env();
        assert!(env.budget_bytes > 0);
        assert!(env.workers >= 1);
    }

    #[test]
    fn run_solver_maps_oom() {
        let g = gmc_graph::generators::gnp(200, 0.3, 1);
        let device = Device::new(2, 1024);
        let outcome = run_solver(
            &device,
            &g,
            SolverConfig {
                heuristic: gmc_heuristic::HeuristicKind::None,
                ..SolverConfig::default()
            },
        )
        .unwrap();
        assert!(outcome.is_oom());
    }

    #[test]
    fn run_solver_produces_record() {
        let g = gmc_graph::generators::gnp(100, 0.1, 2);
        let device = Device::unlimited();
        let outcome = run_solver(&device, &g, SolverConfig::default()).unwrap();
        let rec = outcome.solved().expect("should solve");
        assert!(rec.omega >= 2);
        assert!(rec.throughput_eps > 0.0);
        assert!(rec.total_ms > 0.0);
    }
}
