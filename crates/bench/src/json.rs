//! Minimal in-tree JSON: a value type, a strict parser, a pretty emitter
//! and a [`ToJson`] trait — everything the experiment records need, with no
//! external `serde`/`serde_json`.
//!
//! The emitted format matches what the previous `serde_json` code produced
//! for the same records (objects in field order, tuples as arrays, `None`
//! as `null`, two-space pretty indentation), so existing record files and
//! the report renderer keep working unchanged.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values are emitted
    /// without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Shared fallback for missing lookups, so indexing can return a reference.
const NULL: Json = Json::Null;

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if integral and in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object (`None` on anything else).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialises with two-space indentation and a trailing newline-free
    /// body, like `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Compact single-line serialisation.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    /// Object field lookup; missing keys and non-objects yield `null`, so
    /// chained lookups on partial records degrade gracefully.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    /// Array element lookup; out-of-range and non-arrays yield `null`.
    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; serde_json refuses them, we degrade to null.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring the whole input to be consumed.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by our records;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Conversion into a [`Json`] value — the crate's `Serialize` stand-in.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_num_to_json!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Derives [`ToJson`] for a struct as an object of the named fields, in
/// order — the replacement for `#[derive(Serialize)]` on record structs.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let value = Json::object([
            ("name", Json::Str("fig\"6\"".into())),
            ("count", Json::Num(58.0)),
            ("ratio", Json::Num(0.125)),
            ("negative", Json::Num(-3.5)),
            ("missing", Json::Null),
            ("ok", Json::Bool(true)),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(1024.0), Json::Num(62.5)]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        for text in [value.to_string_pretty(), value.to_string_compact()] {
            assert_eq!(parse(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn parses_serde_style_documents() {
        let value = parse(
            r#"{"rows":[{"heuristic":"none","mean_error_pct":100.0,"solved":28,
               "total":58,"oom_pct":51.7}],"tag":"aA\n"}"#,
        )
        .unwrap();
        assert_eq!(value["rows"][0]["heuristic"].as_str(), Some("none"));
        assert_eq!(value["rows"][0]["solved"].as_u64(), Some(28));
        assert_eq!(value["rows"][0]["oom_pct"].as_f64(), Some(51.7));
        assert_eq!(value["tag"].as_str(), Some("aA\n"));
        // Missing lookups degrade to null, never panic.
        assert!(value["rows"][7]["nope"].is_null());
        assert!(value["rows"][0]["solved"]["deeper"].is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,]",
            "{\"a\":}",
            "[1] trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_are_emitted_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-7.0).to_string_compact(), "-7");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn derive_macro_and_impls_compose() {
        struct Row {
            name: String,
            ms: Option<f64>,
            pairs: Vec<(String, f64)>,
            count: usize,
        }
        impl_to_json!(Row {
            name,
            ms,
            pairs,
            count
        });
        let row = Row {
            name: "t1".into(),
            ms: None,
            pairs: vec![("a".into(), 1.5)],
            count: 3,
        };
        let json = row.to_json();
        assert!(json["ms"].is_null());
        assert_eq!(json["pairs"][0][1].as_f64(), Some(1.5));
        assert_eq!(json["count"].as_u64(), Some(3));
        let text = json.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), json);
    }

    #[test]
    fn pretty_format_matches_expected_shape() {
        let value = Json::object([
            ("a", Json::Num(1.0)),
            ("b", Json::Arr(vec![Json::Num(2.0)])),
        ]);
        assert_eq!(
            value.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }
}
