//! Renders a Markdown summary from the experiment records in
//! `target/experiments/` (or a directory given as the first argument).

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/experiments".to_string());
    print!(
        "{}",
        gmc_bench::report::render_report(std::path::Path::new(&dir))
    );
}
