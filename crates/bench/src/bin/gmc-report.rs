//! Renders a Markdown summary from the experiment records in
//! `target/experiments/` (or a directory given as the first argument).
//!
//! `gmc-report trace <file>` instead renders the per-kernel latency table
//! (count, total, p50/p99) from a Chrome-trace JSON file written via
//! `GMC_TRACE=<file>`.

use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => {
            let Some(file) = args.get(1) else {
                eprintln!("usage: gmc-report trace <trace.json>");
                std::process::exit(2);
            };
            match gmc_bench::report::render_trace_file(Path::new(file)) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("gmc-report: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(dir) => print!("{}", gmc_bench::report::render_report(Path::new(dir))),
        None => print!(
            "{}",
            gmc_bench::report::render_report(Path::new("target/experiments"))
        ),
    }
}
