//! Minimal in-tree micro-benchmark harness (the `criterion` stand-in).
//!
//! Bench targets are plain `harness = false` binaries: they build a
//! [`Harness`] from the command line, register closures under
//! slash-separated names, and get warmup, iteration-count calibration,
//! median-of-k timing and a ns/op (plus optional elements/s) report line
//! per benchmark.
//!
//! Environment knobs (all optional):
//!
//! * `GMC_BENCH_SAMPLES` — samples per benchmark (default 10).
//! * `GMC_BENCH_WARMUP_MS` — warmup budget per benchmark (default 100).
//! * `GMC_BENCH_SAMPLE_MS` — target wall time per sample (default 50).
//!
//! `cargo bench -p gmc-bench --bench micro_primitives -- scan` runs only
//! benchmarks whose name contains `scan`; cargo's own `--bench` flag and
//! criterion-style passthrough flags are ignored.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark measurement settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Timed samples collected per benchmark (the report is their median).
    pub samples: usize,
    /// Warmup budget before calibration.
    pub warmup: Duration,
    /// Target wall time per sample; iteration count is calibrated to it.
    pub sample_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        // The shared helper panics on unparsable values (a typo would
        // otherwise silently revert to defaults and skew measurements).
        let ms =
            |var: &str, default: u64| Duration::from_millis(gmc_trace::env::parse_or(var, default));
        Self {
            samples: gmc_trace::env::parse("GMC_BENCH_SAMPLES").map_or(10, |s: usize| s.max(1)),
            warmup: ms("GMC_BENCH_WARMUP_MS", 100),
            sample_time: ms("GMC_BENCH_SAMPLE_MS", 50),
        }
    }
}

/// The bench registry and runner for one `harness = false` target.
pub struct Harness {
    settings: Settings,
    filter: Option<String>,
    ran: usize,
    skipped: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args`, treating the first
    /// non-flag argument as a substring name filter. Flags cargo/criterion
    /// conventionally pass (`--bench`, `--test`, `--exact`, `--nocapture`,
    /// and any other `--...`) are ignored so `cargo bench` keeps working.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Self::with_filter(filter)
    }

    /// A harness with an explicit (optional) name filter.
    pub fn with_filter(filter: Option<String>) -> Self {
        Self {
            settings: Settings::default(),
            filter,
            ran: 0,
            skipped: 0,
        }
    }

    /// Overrides the measurement settings.
    pub fn settings(&mut self, settings: Settings) -> &mut Self {
        self.settings = settings;
        self
    }

    /// A named group; benchmarks registered on it get `name/` prefixed.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: name.to_string(),
            elements: None,
        }
    }

    /// Registers and (filter permitting) runs one benchmark.
    pub fn bench(&mut self, name: &str, body: impl FnMut(&mut Bencher)) {
        self.run_one(name, None, body);
    }

    /// Prints the closing line; call last in `main`.
    pub fn finish(&self) {
        println!(
            "bench summary: {} run, {} filtered out",
            self.ran, self.skipped
        );
    }

    fn run_one(&mut self, name: &str, elements: Option<u64>, mut body: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                self.skipped += 1;
                return;
            }
        }
        self.ran += 1;
        let mut bencher = Bencher {
            settings: self.settings.clone(),
            elements,
            report: None,
        };
        body(&mut bencher);
        match bencher.report {
            Some(report) => println!("{name:<48} {report}"),
            None => println!("{name:<48} (no measurement — body never called iter)"),
        }
    }
}

/// A benchmark group: shared name prefix plus optional throughput metadata.
pub struct Group<'h> {
    harness: &'h mut Harness,
    prefix: String,
    elements: Option<u64>,
}

impl Group<'_> {
    /// Declares that each iteration processes `n` logical elements, adding
    /// an elements/s column to subsequent benchmarks in this group.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Registers `prefix/name`.
    pub fn bench(&mut self, name: &str, body: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name);
        self.harness.run_one(&full, self.elements, body);
    }

    /// No-op kept for call-site symmetry with the old criterion groups.
    pub fn finish(self) {}
}

/// Passed to each benchmark body; `iter` performs the actual measurement.
pub struct Bencher {
    settings: Settings,
    elements: Option<u64>,
    report: Option<String>,
}

impl Bencher {
    /// Measures `f`: warmup, calibrate iterations per sample, then time
    /// `samples` batches and keep per-iteration durations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: run until the budget is spent, tracking mean cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.settings.warmup || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Calibrate: enough iterations that one sample hits the target time.
        let iters = ((self.settings.sample_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64)
            .clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.settings.samples);
        for _ in 0..self.settings.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = median_of_sorted(&samples_ns);
        let min = samples_ns[0];
        let max = *samples_ns.last().expect("samples >= 1");

        let mut report = format!(
            "{:>12}/iter  [{} .. {}]  ({} samples × {} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            samples_ns.len(),
            iters
        );
        if let Some(elements) = self.elements {
            let eps = elements as f64 / (median * 1e-9);
            report.push_str(&format!("  {}/s", fmt_count(eps)));
        }
        self.report = Some(report);
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Formats a large count with an adaptive SI suffix (for elements/s).
fn fmt_count(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.0} elem")
    } else if v < 1e6 {
        format!("{:.1} Kelem", v / 1e3)
    } else if v < 1e9 {
        format!("{:.1} Melem", v / 1e6)
    } else {
        format!("{:.2} Gelem", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> Settings {
        Settings {
            samples: 3,
            warmup: Duration::from_millis(1),
            sample_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn measures_a_trivial_closure() {
        let mut harness = Harness::with_filter(None);
        harness.settings(fast_settings());
        let mut calls = 0u64;
        harness.bench("trivial", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "body should have been exercised");
        harness.finish();
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut harness = Harness::with_filter(Some("match-me".into()));
        harness.settings(fast_settings());
        let mut ran_skipped = false;
        let mut ran_matching = false;
        harness.bench("other", |b| {
            ran_skipped = true;
            b.iter(|| 1)
        });
        let mut group = harness.group("contains");
        group.throughput_elements(10);
        group.bench("match-me-too", |b| {
            ran_matching = true;
            b.iter(|| 2)
        });
        group.finish();
        assert!(!ran_skipped);
        assert!(ran_matching, "group prefix/name should be filtered jointly");
        assert_eq!(harness.ran, 1);
        assert_eq!(harness.skipped, 1);
    }

    #[test]
    fn median_and_formatting() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 50.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert_eq!(fmt_ns(500.0), "500.0 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_200_000.0), "3.20 ms");
        assert_eq!(fmt_count(5.0e6), "5.0 Melem");
    }
}
