//! Markdown report renderer for the experiment JSON records.
//!
//! Every harness target writes a machine-readable record under
//! `target/experiments/`; the `gmc-report` binary (and this module's
//! [`render_report`]) turns whatever records exist into one Markdown
//! summary — the raw material for EXPERIMENTS.md and for comparing runs
//! across environments.

use crate::json::{self, Json};
use std::fmt::Write as _;
use std::path::Path;

/// Renders a Markdown report from all recognised record files in `dir`.
/// Missing records are skipped; unparseable ones are reported inline.
pub fn render_report(dir: &Path) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Experiment report\n");
    let _ = writeln!(out, "Source: `{}`\n", dir.display());

    let mut any = false;
    for (file, renderer) in SECTIONS {
        match load(dir, file) {
            Some(Ok(value)) => {
                any = true;
                renderer(&mut out, &value);
            }
            Some(Err(e)) => {
                any = true;
                let _ = writeln!(out, "## {file}\n\n*unreadable record: {e}*\n");
            }
            None => {}
        }
    }
    if !any {
        let _ = writeln!(
            out,
            "*No records found — run `cargo bench -p gmc-bench` first.*"
        );
    }
    out
}

/// Renders the per-kernel latency table from a Chrome-trace JSON file
/// written via `GMC_TRACE` (backs the `gmc-report trace <file>` subcommand).
/// The file is re-parsed with this crate's JSON parser and the histograms
/// are rebuilt from the complete (`ph == "X"`) events' durations.
pub fn render_trace_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = json::parse(&text)?;
    let events = value["traceEvents"]
        .as_array()
        .ok_or_else(|| "trace has no `traceEvents` array".to_string())?;
    let mut by_name: std::collections::BTreeMap<String, gmc_trace::LogHistogram> =
        std::collections::BTreeMap::new();
    let mut spans = 0usize;
    for event in events {
        if event["ph"].as_str() != Some("X") {
            continue;
        }
        spans += 1;
        let name = event["name"].as_str().unwrap_or("?").to_string();
        // Chrome traces carry microseconds; the histograms hold nanoseconds.
        let dur_ns = (event["dur"].as_f64().unwrap_or(0.0) * 1000.0)
            .max(0.0)
            .round() as u64;
        by_name.entry(name).or_default().record(dur_ns);
    }
    let dropped = value["gmcDroppedEvents"].as_u64().unwrap_or(0) as usize;
    let stats: Vec<(String, gmc_trace::LogHistogram)> = by_name.into_iter().collect();
    let mut out = String::new();
    let _ = writeln!(out, "# Trace report\n");
    let _ = writeln!(out, "Source: `{}` ({spans} spans)\n", path.display());
    out.push_str(&gmc_trace::render_latency_table(&stats, dropped));
    Ok(out)
}

type SectionRenderer = fn(&mut String, &Json);

const SECTIONS: &[(&str, SectionRenderer)] = &[
    ("table1_heuristics", render_table1),
    ("table2_speedups", render_table2),
    ("fig2_fig3_throughput", render_fig23),
    ("fig4_speedup_vs_pmc", render_fig4),
    ("fig6_window_memory", render_fig6),
    ("warp_divergence", render_divergence),
    ("local_bits", render_local_bits),
    ("core_bits", render_core_bits),
    ("schedule", render_schedule),
    ("serve", render_serve),
];

fn load(dir: &Path, name: &str) -> Option<Result<Json, String>> {
    let path = dir.join(format!("{name}.json"));
    if !path.exists() {
        return None;
    }
    Some(
        std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| json::parse(&text)),
    )
}

fn render_table1(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## Table I — heuristic comparison\n");
    let _ = writeln!(out, "| Heuristic | Mean error | Solved | OOM |");
    let _ = writeln!(out, "|---|---|---|---|");
    for row in value["rows"].as_array().into_iter().flatten() {
        let _ = writeln!(
            out,
            "| {} | {:.1}% | {}/{} | {:.1}% |",
            row["heuristic"].as_str().unwrap_or("?"),
            row["mean_error_pct"].as_f64().unwrap_or(f64::NAN),
            row["solved"].as_u64().unwrap_or(0),
            row["total"].as_u64().unwrap_or(0),
            row["oom_pct"].as_f64().unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(out);
}

fn render_table2(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## Table II — heuristic upgrade speedups (geomean)\n");
    for row in value["baselines"].as_array().into_iter().flatten() {
        let upgrades: Vec<String> = row["speedups"]
            .as_array()
            .into_iter()
            .flatten()
            .map(|pair| {
                format!(
                    "{} {:.1}×",
                    pair[0].as_str().unwrap_or("?"),
                    pair[1].as_f64().unwrap_or(f64::NAN)
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "* baseline `{}` ({} datasets): {}",
            row["baseline"].as_str().unwrap_or("?"),
            row["group_size"].as_u64().unwrap_or(0),
            upgrades.join(", ")
        );
    }
    let _ = writeln!(out);
}

fn render_fig23(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## Figures 2–3 — throughput trends\n");
    let _ = writeln!(
        out,
        "* Spearman(throughput, avg degree) = {:.2} (paper: strongly negative)",
        value["spearman_tput_vs_degree_bfs"]
            .as_f64()
            .unwrap_or(f64::NAN)
    );
    let _ = writeln!(
        out,
        "* Spearman(throughput, |E|) = {:.2} (paper: positive)\n",
        value["spearman_tput_vs_edges_bfs"]
            .as_f64()
            .unwrap_or(f64::NAN)
    );
}

fn render_fig4(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## Figure 4 — speedup over PMC\n");
    for (label, key) in [
        ("overall geomean", "geomean_bfs_speedup"),
        ("windowed geomean", "geomean_windowed_speedup"),
        ("low-degree half", "geomean_low_degree_bfs_speedup"),
        ("high-degree half", "geomean_high_degree_bfs_speedup"),
    ] {
        let _ = writeln!(
            out,
            "* {label}: {:.2}×",
            value[key].as_f64().unwrap_or(f64::NAN)
        );
    }
    let _ = writeln!(out);
}

fn render_fig6(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## Figure 6 — windowed memory\n");
    for pair in value["mean_reduction_pct"].as_array().into_iter().flatten() {
        let _ = writeln!(
            out,
            "* window {}: {:.1}% mean peak-memory reduction",
            pair[0].as_u64().unwrap_or(0),
            pair[1].as_f64().unwrap_or(f64::NAN)
        );
    }
    let _ = writeln!(out);
}

fn render_divergence(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## §II-C — mean lane utilisation\n");
    let rows = value.as_array().cloned().unwrap_or_default();
    let mean = |key: &str| {
        let vals: Vec<f64> = rows.iter().filter_map(|r| r[key].as_f64()).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let _ = writeln!(
        out,
        "* breadth-first: {:.1}%",
        100.0 * mean("bfs_utilization")
    );
    let _ = writeln!(
        out,
        "* warp-parallel DFS: {:.1}%",
        100.0 * mean("warp_dfs_utilization")
    );
    let _ = writeln!(
        out,
        "* thread-parallel DFS: {:.1}%\n",
        100.0 * mean("thread_dfs_utilization")
    );
}

fn render_local_bits(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## §III-3 — sublist-local bitmaps (per category)\n");
    let _ = writeln!(
        out,
        "| Category | Scalar probes | Bitmap probes | Saved | Auto avoided | Auto rows | Auto verdict |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    // Aggregate the per-dataset sweep rows by corpus category.
    let mut by_cat: std::collections::BTreeMap<String, (u64, u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for row in value.as_array().into_iter().flatten() {
        let cat = row["category"].as_str().unwrap_or("?").to_string();
        let entry = by_cat.entry(cat).or_default();
        entry.0 += row["scalar_queries"].as_u64().unwrap_or(0);
        entry.1 += row["on_queries"].as_u64().unwrap_or(0);
        entry.2 += row["auto_rows"].as_u64().unwrap_or(0);
        entry.3 += row["auto_avoided"].as_u64().unwrap_or(0);
    }
    for (cat, (scalar, on, auto_rows, auto_avoided)) in &by_cat {
        let saved = if *scalar == 0 {
            0.0
        } else {
            100.0 * (1.0 - *on as f64 / *scalar as f64)
        };
        // Flag corpora where the cost model left everything scalar while
        // the forced bitmap tier demonstrably won — recalibration bait.
        let verdict = if *auto_avoided == 0 && saved >= 80.0 {
            format!("MISCALIBRATED: Auto stayed scalar, On saved {saved:.1}%")
        } else {
            "ok".to_string()
        };
        let _ = writeln!(
            out,
            "| {cat} | {scalar} | {on} | {saved:.1}% | {auto_avoided} | {auto_rows} | {verdict} |"
        );
    }
    let _ = writeln!(out);
}

fn render_core_bits(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## §III-3 — persistent core-graph bitmaps\n");
    let _ = writeln!(
        out,
        "| Dataset | Scalar probes | Per-level probes | Persistent probes | Eliminated | Rebuilds | Bitmap KiB |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for row in value.as_array().into_iter().flatten() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.1}% | {} | {:.1} |",
            row["dataset"].as_str().unwrap_or("?"),
            row["scalar_queries"].as_u64().unwrap_or(0),
            row["perlevel_queries"].as_u64().unwrap_or(0),
            row["persistent_queries"].as_u64().unwrap_or(0),
            row["elimination_pct"].as_f64().unwrap_or(f64::NAN),
            row["rebuilds"].as_u64().unwrap_or(0),
            row["persistent_bytes"].as_f64().unwrap_or(f64::NAN) / 1024.0,
        );
    }
    let _ = writeln!(out);
}

fn render_schedule(out: &mut String, value: &Json) {
    let _ = writeln!(
        out,
        "## Scheduling — morsel work-claiming vs static chunks\n"
    );
    let _ = writeln!(
        out,
        "| Grid | Schedule | Wall ms | vs static | Morsels | Max/worker | Imbalance |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for row in value.as_array().into_iter().flatten() {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} | {:.2}× | {} | {} | {:.2} |",
            row["grid"].as_str().unwrap_or("?"),
            row["schedule"].as_str().unwrap_or("?"),
            row["wall_ms"].as_f64().unwrap_or(f64::NAN),
            row["speedup_vs_static"].as_f64().unwrap_or(f64::NAN),
            row["morsels"].as_u64().unwrap_or(0),
            row["max_worker_morsels"].as_u64().unwrap_or(0),
            row["imbalance"].as_f64().unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(out);
}

fn render_serve(out: &mut String, value: &Json) {
    let _ = writeln!(out, "## Service — batched solves through `gmc-serve`\n");
    let _ = writeln!(
        out,
        "Pool of {} slot(s), queue depth {}: {} jobs served, {} hits / {} misses \
         (hit rate {:.1}%), {} cancelled at deadline, bit-identical: {}.\n",
        value["pool"].as_u64().unwrap_or(0),
        value["queue_depth"].as_u64().unwrap_or(0),
        value["total_jobs"].as_u64().unwrap_or(0),
        value["cache_hits"].as_u64().unwrap_or(0),
        value["cache_misses"].as_u64().unwrap_or(0),
        100.0 * value["hit_rate"].as_f64().unwrap_or(f64::NAN),
        value["cancellations"].as_u64().unwrap_or(0),
        value["bit_identical"].as_bool().unwrap_or(false),
    );
    let _ = writeln!(
        out,
        "| Queue wait p50 | Queue wait p99 | Launches | Oracle queries | Throughput |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let _ = writeln!(
        out,
        "| {:.1} µs | {:.1} µs | {} | {} | {:.0} jobs/s |",
        value["queue_wait_p50_ns"].as_f64().unwrap_or(f64::NAN) / 1e3,
        value["queue_wait_p99_ns"].as_f64().unwrap_or(f64::NAN) / 1e3,
        value["launches"].as_u64().unwrap_or(0),
        value["oracle_queries"].as_u64().unwrap_or(0),
        value["throughput_jobs_per_s"].as_f64().unwrap_or(f64::NAN),
    );
    let _ = writeln!(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gmc_report_{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_directory_reports_no_records() {
        let dir = temp_dir("empty");
        let report = render_report(&dir);
        assert!(report.contains("No records found"));
    }

    #[test]
    fn renders_table1_rows() {
        let dir = temp_dir("t1");
        std::fs::write(
            dir.join("table1_heuristics.json"),
            r#"{"rows":[{"heuristic":"none","mean_error_pct":100.0,"solved":28,"total":58,"oom_pct":51.7,"geomean_solve_ms":6.0}],"per_dataset":[]}"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(report.contains("Table I"));
        assert!(report.contains("| none | 100.0% | 28/58 | 51.7% |"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_fig4_summary() {
        let dir = temp_dir("f4");
        std::fs::write(
            dir.join("fig4_speedup_vs_pmc.json"),
            r#"{"points":[],"geomean_bfs_speedup":0.78,"geomean_windowed_speedup":0.52,
               "geomean_low_degree_bfs_speedup":0.98,"geomean_high_degree_bfs_speedup":0.50}"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(report.contains("low-degree half: 0.98×"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_serve_section() {
        let dir = temp_dir("serve");
        std::fs::write(
            dir.join("serve.json"),
            r#"{"pool":2,"queue_depth":8,"total_jobs":14,"unique_jobs":4,"repeat_jobs":8,
               "deadline_jobs":2,"cache_hits":8,"cache_misses":6,"hit_rate":0.5714,
               "cancellations":2,"bit_identical":true,"launches":549,"oracle_queries":12475,
               "queue_wait_p50_ns":8960,"queue_wait_p99_ns":698468,"wall_ms":6.58,
               "throughput_jobs_per_s":2126.9}"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(report.contains("Service — batched solves"), "{report}");
        assert!(report.contains("8 hits / 6 misses"), "{report}");
        assert!(report.contains("hit rate 57.1%"), "{report}");
        assert!(report.contains("| 549 | 12475 |"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_records_are_reported_not_fatal() {
        let dir = temp_dir("bad");
        std::fs::write(dir.join("table2_speedups.json"), "not json").unwrap();
        let report = render_report(&dir);
        assert!(report.contains("unreadable record"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_trace_latency_table() {
        let dir = temp_dir("trace");
        let path = dir.join("trace.json");
        std::fs::write(
            &path,
            r#"{"traceEvents":[
                {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
                {"name":"scan_lookback","ph":"X","pid":1,"tid":1,"ts":0.0,"dur":12.5,"args":{}},
                {"name":"scan_lookback","ph":"X","pid":1,"tid":1,"ts":20.0,"dur":14.0,"args":{}}
            ],"displayTimeUnit":"ms","gmcDroppedEvents":0}"#,
        )
        .unwrap();
        let report = render_trace_file(&path).unwrap();
        assert!(report.contains("scan_lookback"), "{report}");
        assert!(report.contains("2 spans"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_report_rejects_non_trace_json() {
        let dir = temp_dir("trace_bad");
        let path = dir.join("not_a_trace.json");
        std::fs::write(&path, r#"{"rows":[]}"#).unwrap();
        assert!(render_trace_file(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_local_bits_category_aggregates() {
        let dir = temp_dir("lb");
        std::fs::write(
            dir.join("local_bits.json"),
            r#"[{"dataset":"socfb-campus-01","category":"socfb","scalar_queries":1000,
                 "auto_queries":1000,"auto_avoided":0,"auto_rows":0,"on_queries":100,
                 "on_avoided":900,"on_reduction_pct":90.0},
                {"dataset":"socfb-campus-02","category":"socfb","scalar_queries":3000,
                 "auto_queries":2500,"auto_avoided":500,"auto_rows":64,"on_queries":300,
                 "on_avoided":2700,"on_reduction_pct":90.0},
                {"dataset":"road-grid-01","category":"road","scalar_queries":500,
                 "auto_queries":500,"auto_avoided":0,"auto_rows":0,"on_queries":500,
                 "on_avoided":0,"on_reduction_pct":0.0}]"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(
            report.contains("| socfb | 4000 | 400 | 90.0% | 500 | 64 | ok |"),
            "{report}"
        );
        assert!(
            report.contains("| road | 500 | 500 | 0.0% | 0 | 0 | ok |"),
            "{report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flags_categories_where_auto_stayed_scalar_but_on_won() {
        let dir = temp_dir("lb_flag");
        std::fs::write(
            dir.join("local_bits.json"),
            r#"[{"dataset":"web-crawl-01","category":"web","scalar_queries":2000,
                 "auto_queries":2000,"auto_avoided":0,"auto_rows":0,"on_queries":200,
                 "on_avoided":1800,"on_reduction_pct":90.0}]"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(
            report.contains("| web | 2000 | 200 | 90.0% | 0 | 0 | MISCALIBRATED: Auto stayed scalar, On saved 90.0% |"),
            "{report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_core_bits_rows() {
        let dir = temp_dir("cb");
        std::fs::write(
            dir.join("core_bits.json"),
            r#"[{"dataset":"socfb-campus-04","category":"socfb","scalar_queries":10000,
                 "perlevel_queries":1000,"persistent_queries":0,"persistent_probes":10000,
                 "elimination_pct":100.0,"rebuilds":0,"persistent_bytes":2048}]"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(report.contains("persistent core-graph bitmaps"), "{report}");
        assert!(
            report.contains("| socfb-campus-04 | 10000 | 1000 | 0 | 100.0% | 0 | 2.0 |"),
            "{report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_schedule_ablation_rows() {
        let dir = temp_dir("sched");
        std::fs::write(
            dir.join("schedule.json"),
            r#"[{"grid":"skewed_front","schedule":"static","wall_ms":10.0,
                 "speedup_vs_static":1.0,"morsels":8,"max_worker_morsels":1,"imbalance":7.2},
                {"grid":"skewed_front","schedule":"morsel","wall_ms":2.5,
                 "speedup_vs_static":4.0,"morsels":98,"max_worker_morsels":40,"imbalance":1.1}]"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(
            report.contains("| skewed_front | morsel | 2.500 | 4.00× | 98 | 40 | 1.10 |"),
            "{report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_divergence_means() {
        let dir = temp_dir("div");
        std::fs::write(
            dir.join("warp_divergence.json"),
            r#"[{"bfs_utilization":0.9,"warp_dfs_utilization":0.3,"thread_dfs_utilization":0.2},
                {"bfs_utilization":0.8,"warp_dfs_utilization":0.5,"thread_dfs_utilization":0.4}]"#,
        )
        .unwrap();
        let report = render_report(&dir);
        assert!(report.contains("breadth-first: 85.0%"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
