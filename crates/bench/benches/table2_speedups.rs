//! Table II: geometric-mean speedups between heuristic options.
//!
//! The paper groups datasets by the *weakest* heuristic that lets the full
//! breadth-first search finish without OOM (the table's four baselines),
//! then reports the geometric-mean speedup obtained by upgrading each group
//! to every more complex heuristic. Values below 1.0 mean the extra
//! preprocessing costs more than it saves — the paper's headline finding
//! that "better pruning does not dependably improve runtimes".

use gmc_bench::impl_to_json;
use gmc_bench::{geometric_mean, load_corpus, print_table, run_solver, save_json, BenchEnv};
use gmc_heuristic::HeuristicKind;
use gmc_mce::SolverConfig;

struct Table2Record {
    baselines: Vec<BaselineRow>,
}

impl_to_json!(Table2Record { baselines });

struct BaselineRow {
    baseline: String,
    group_size: usize,
    speedups: Vec<(String, f64)>,
}

impl_to_json!(BaselineRow {
    baseline,
    group_size,
    speedups
});

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Table II: geometric-mean speedups between heuristics");
    let datasets = load_corpus(&env);
    let kinds = HeuristicKind::all();

    // Solve every dataset with every heuristic once; remember times.
    // times[d][k] = Some(total_ms) when solved without OOM.
    let mut times: Vec<Vec<Option<f64>>> = Vec::with_capacity(datasets.len());
    for dataset in &datasets {
        let mut row = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let device = env.device();
            let outcome = run_solver(
                &device,
                &dataset.graph,
                SolverConfig {
                    heuristic: kind,
                    ..SolverConfig::default()
                },
            )
            .expect("solver runs");
            row.push(outcome.solved().map(|r| r.total_ms));
        }
        times.push(row);
    }

    // Group datasets by the weakest heuristic (in complexity order) that
    // avoids OOM; datasets that always OOM are excluded as in the paper.
    let mut rows: Vec<BaselineRow> = Vec::new();
    let mut printable: Vec<Vec<String>> = Vec::new();
    for (b, baseline) in kinds.iter().enumerate().take(kinds.len() - 1) {
        let group: Vec<usize> = (0..datasets.len())
            .filter(|&d| times[d][b].is_some() && (0..b).all(|earlier| times[d][earlier].is_none()))
            .collect();
        let mut speedups: Vec<(String, f64)> = Vec::new();
        let mut cells = vec![baseline.name().to_string(), group.len().to_string()];
        // Leading blanks for the staircase shape.
        for _ in 0..b {
            cells.push(String::new());
        }
        for (u, upgrade) in kinds.iter().enumerate().skip(b + 1) {
            let ratios: Vec<f64> = group
                .iter()
                .filter_map(|&d| match (times[d][b], times[d][u]) {
                    (Some(base), Some(up)) if up > 0.0 => Some(base / up),
                    _ => None,
                })
                .collect();
            let gm = geometric_mean(&ratios);
            speedups.push((upgrade.name().to_string(), gm));
            cells.push(if ratios.is_empty() {
                "-".to_string()
            } else {
                format!("{gm:.1}x")
            });
        }
        printable.push(cells);
        rows.push(BaselineRow {
            baseline: baseline.name().to_string(),
            group_size: group.len(),
            speedups,
        });
    }

    print_table(
        &[
            "Baseline",
            "Group",
            "Single Deg",
            "Single Core",
            "Multi Deg",
            "Multi Core",
        ],
        &printable,
    );
    save_json(&env, "table2_speedups", &Table2Record { baselines: rows });
}
