//! Figures 2 and 3: throughput of the fastest configuration per dataset,
//! for the plain breadth-first solver and the windowed variant.
//!
//! Fig. 2 plots edges/second against average vertex degree; Fig. 3 plots it
//! against |E|. The paper's findings: throughput falls as average degree
//! rises, and rises with graph size. This bench prints both series (sorted
//! each way) and the rank correlation between throughput and the x-axis.

use gmc_bench::impl_to_json;
use gmc_bench::{load_corpus, print_table, save_json, BenchEnv, RunOutcome};
use gmc_heuristic::HeuristicKind;
use gmc_mce::{SolverConfig, WindowConfig};

#[derive(Clone)]
struct ThroughputPoint {
    dataset: String,
    category: String,
    edges: usize,
    avg_degree: f64,
    bfs_eps: Option<f64>,
    bfs_config: Option<String>,
    windowed_eps: Option<f64>,
    windowed_size: Option<usize>,
}

impl_to_json!(ThroughputPoint {
    dataset,
    category,
    edges,
    avg_degree,
    bfs_eps,
    bfs_config,
    windowed_eps,
    windowed_size
});

struct Record {
    points: Vec<ThroughputPoint>,
    spearman_tput_vs_degree_bfs: f64,
    spearman_tput_vs_edges_bfs: f64,
}

impl_to_json!(Record {
    points,
    spearman_tput_vs_degree_bfs,
    spearman_tput_vs_edges_bfs
});

/// Heuristics tried for the "fastest configuration", simplest first (the
/// paper's recommendation in §V-B4).
const CONFIG_LADDER: [HeuristicKind; 4] = [
    HeuristicKind::None,
    HeuristicKind::SingleDegree,
    HeuristicKind::MultiDegree,
    HeuristicKind::MultiCore,
];

const WINDOW_SIZES: [usize; 3] = [1024, 8192, 32768];

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Figures 2 & 3: throughput vs average degree and graph size");
    let datasets = load_corpus(&env);

    let mut points: Vec<ThroughputPoint> = Vec::new();
    for dataset in &datasets {
        // Fastest successful full-BFS configuration.
        let mut bfs_best: Option<(f64, String)> = None;
        for kind in CONFIG_LADDER {
            let outcome = env.run_averaged(
                &dataset.graph,
                &SolverConfig {
                    heuristic: kind,
                    ..SolverConfig::default()
                },
            );
            if let RunOutcome::Solved(rec) = outcome {
                if bfs_best
                    .as_ref()
                    .is_none_or(|(best, _)| rec.throughput_eps > *best)
                {
                    bfs_best = Some((rec.throughput_eps, kind.name().to_string()));
                }
            }
        }

        // Fastest successful windowed configuration (multi-degree heuristic,
        // find-one mode — the paper's windowed setting).
        let mut win_best: Option<(f64, usize)> = None;
        for size in WINDOW_SIZES {
            let outcome = env.run_averaged(
                &dataset.graph,
                &SolverConfig {
                    heuristic: HeuristicKind::MultiDegree,
                    window: Some(WindowConfig::with_size(size)),
                    ..SolverConfig::default()
                },
            );
            if let RunOutcome::Solved(rec) = outcome {
                if win_best
                    .as_ref()
                    .is_none_or(|(best, _)| rec.throughput_eps > *best)
                {
                    win_best = Some((rec.throughput_eps, size));
                }
            }
        }

        points.push(ThroughputPoint {
            dataset: dataset.name().to_string(),
            category: dataset.spec.category.to_string(),
            edges: dataset.graph.num_edges(),
            avg_degree: dataset.avg_degree(),
            bfs_eps: bfs_best.as_ref().map(|(t, _)| *t),
            bfs_config: bfs_best.map(|(_, c)| c),
            windowed_eps: win_best.as_ref().map(|(t, _)| *t),
            windowed_size: win_best.map(|(_, s)| s),
        });
    }

    // Fig. 2 view: sorted by average degree.
    let mut by_degree = points.clone();
    by_degree.sort_by(|a, b| a.avg_degree.total_cmp(&b.avg_degree));
    println!("\n-- Fig. 2 series: throughput vs average degree --");
    print_series(&by_degree, |p| format!("{:.1}", p.avg_degree), "avg_deg");

    // Fig. 3 view: sorted by edge count.
    let mut by_edges = points.clone();
    by_edges.sort_by_key(|p| p.edges);
    println!("\n-- Fig. 3 series: throughput vs |E| --");
    print_series(&by_edges, |p| p.edges.to_string(), "|E|");

    // The paper's claims as rank correlations.
    let bfs_points: Vec<&ThroughputPoint> = points.iter().filter(|p| p.bfs_eps.is_some()).collect();
    let rho_degree = spearman(
        &bfs_points.iter().map(|p| p.avg_degree).collect::<Vec<_>>(),
        &bfs_points
            .iter()
            .map(|p| p.bfs_eps.unwrap())
            .collect::<Vec<_>>(),
    );
    let rho_edges = spearman(
        &bfs_points
            .iter()
            .map(|p| p.edges as f64)
            .collect::<Vec<_>>(),
        &bfs_points
            .iter()
            .map(|p| p.bfs_eps.unwrap())
            .collect::<Vec<_>>(),
    );
    println!("\nSpearman(throughput, avg degree) = {rho_degree:.2}  (paper: strongly negative)");
    println!("Spearman(throughput, |E|)        = {rho_edges:.2}  (paper: positive)");

    save_json(
        &env,
        "fig2_fig3_throughput",
        &Record {
            points,
            spearman_tput_vs_degree_bfs: rho_degree,
            spearman_tput_vs_edges_bfs: rho_edges,
        },
    );
}

fn print_series(points: &[ThroughputPoint], x: impl Fn(&ThroughputPoint) -> String, x_name: &str) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                x(p),
                p.bfs_eps.map_or("OOM".into(), |t| format!("{:.2e}", t)),
                p.windowed_eps
                    .map_or("OOM".into(), |t| format!("{:.2e}", t)),
            ]
        })
        .collect();
    print_table(
        &["Dataset", x_name, "BFS edges/s", "Windowed edges/s"],
        &rows,
    );
}

/// Spearman rank correlation (average ranks for ties).
fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    let mean = (n as f64 + 1.0) / 2.0;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let a = rx[i] - mean;
        let b = ry[i] - mean;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx * dy).sqrt()
    }
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}
