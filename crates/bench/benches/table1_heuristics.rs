//! Table I: heuristic accuracy, solved-graph counts and OOM rates.
//!
//! For each of the five heuristic options (none, single-run degree,
//! single-run core, multi-run degree, multi-run core) the full breadth-first
//! solver runs on every corpus dataset under the device-memory budget. The
//! paper reports, per heuristic: the mean relative error of the lower bound
//! vs. the true clique number, how many of the 58 graphs solve without OOM,
//! and the OOM percentage. A PMC row (its own greedy bound, never
//! memory-limited) closes the table as in the paper.

use gmc_bench::impl_to_json;
use gmc_bench::{
    geometric_mean, load_corpus, print_table, run_solver, save_json, BenchEnv, RunOutcome,
};
use gmc_heuristic::HeuristicKind;
use gmc_mce::SolverConfig;

struct Table1Row {
    heuristic: String,
    mean_error_pct: f64,
    solved: usize,
    total: usize,
    oom_pct: f64,
    geomean_solve_ms: f64,
}

impl_to_json!(Table1Row {
    heuristic,
    mean_error_pct,
    solved,
    total,
    oom_pct,
    geomean_solve_ms
});

struct Table1Record {
    rows: Vec<Table1Row>,
    per_dataset: Vec<PerDataset>,
}

impl_to_json!(Table1Record { rows, per_dataset });

struct PerDataset {
    dataset: String,
    category: String,
    edges: usize,
    avg_degree: f64,
    true_omega: u32,
    outcomes: Vec<(String, RunOutcome)>,
}

impl_to_json!(PerDataset {
    dataset,
    category,
    edges,
    avg_degree,
    true_omega,
    outcomes
});

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Table I: heuristic comparison (error / solved / OOM)");
    let datasets = load_corpus(&env);

    // True ω per dataset from the DFS baseline (memory-unconstrained).
    let omegas: Vec<u32> = datasets
        .iter()
        .map(|d| gmc_bench::true_omega(&env, &d.graph))
        .collect();

    let mut per_dataset: Vec<PerDataset> = datasets
        .iter()
        .zip(&omegas)
        .map(|(d, &omega)| PerDataset {
            dataset: d.name().to_string(),
            category: d.spec.category.to_string(),
            edges: d.graph.num_edges(),
            avg_degree: d.avg_degree(),
            true_omega: omega,
            outcomes: Vec::new(),
        })
        .collect();

    let mut rows: Vec<Table1Row> = Vec::new();
    for kind in HeuristicKind::all() {
        let mut errors: Vec<f64> = Vec::new();
        let mut solved = 0usize;
        let mut oom = 0usize;
        let mut solve_ms: Vec<f64> = Vec::new();
        for (i, dataset) in datasets.iter().enumerate() {
            let device = env.device();
            let outcome = run_solver(
                &device,
                &dataset.graph,
                SolverConfig {
                    heuristic: kind,
                    ..SolverConfig::default()
                },
            )
            .expect("solver runs");
            match &outcome {
                RunOutcome::Solved(rec) => {
                    solved += 1;
                    solve_ms.push(rec.total_ms);
                    errors.push(error_pct(rec.lower_bound, omegas[i]));
                }
                RunOutcome::Oom => {
                    oom += 1;
                    // Accuracy is still measurable: re-run only the
                    // heuristic without the exact phase.
                    let unlimited = env.unlimited_device();
                    let bound =
                        gmc_heuristic::run_heuristic(&unlimited, &dataset.graph, kind, None)
                            .map(|h| h.lower_bound())
                            .unwrap_or(0);
                    errors.push(error_pct(bound, omegas[i]));
                }
            }
            per_dataset[i]
                .outcomes
                .push((kind.name().to_string(), outcome));
        }
        rows.push(Table1Row {
            heuristic: kind.name().to_string(),
            mean_error_pct: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
            solved,
            total: datasets.len(),
            oom_pct: 100.0 * oom as f64 / datasets.len() as f64,
            geomean_solve_ms: geometric_mean(&solve_ms),
        });
    }

    // PMC row: its greedy initial bound vs. ω; it never OOMs.
    {
        let mut errors: Vec<f64> = Vec::new();
        let mut solve_ms: Vec<f64> = Vec::new();
        for (i, dataset) in datasets.iter().enumerate() {
            let r = gmc_pmc::ParallelBranchBound::new(env.pmc_threads).solve(&dataset.graph);
            errors.push(error_pct(r.stats.initial_bound, omegas[i]));
            solve_ms.push(r.stats.total_time.as_secs_f64() * 1e3);
        }
        rows.push(Table1Row {
            heuristic: "rossi-pmc".to_string(),
            mean_error_pct: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
            solved: datasets.len(),
            total: datasets.len(),
            oom_pct: 0.0,
            geomean_solve_ms: geometric_mean(&solve_ms),
        });
    }

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.heuristic.clone(),
                format!("{:.1}%", r.mean_error_pct),
                format!("{}/{}", r.solved, r.total),
                format!("{:.1}%", r.oom_pct),
                format!("{:.1}", r.geomean_solve_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "Heuristic",
            "Mean Error",
            "Solved Graphs",
            "OOM",
            "Geomean ms",
        ],
        &table_rows,
    );
    save_json(
        &env,
        "table1_heuristics",
        &Table1Record { rows, per_dataset },
    );
}

fn error_pct(lower_bound: u32, omega: u32) -> f64 {
    if omega == 0 {
        0.0
    } else {
        100.0 * (omega.saturating_sub(lower_bound)) as f64 / omega as f64
    }
}
