//! Dataset inventory: the reproduction's analogue of the paper's dataset
//! table — per dataset: category, |V|, |E|, average/max degree, degeneracy,
//! the true clique number ω (from the DFS baseline) and its multiplicity
//! (from the breadth-first enumerator, where it fits in memory).

use gmc_bench::impl_to_json;
use gmc_bench::{load_corpus, print_table, run_solver, save_json, BenchEnv, RunOutcome};
use gmc_mce::SolverConfig;

struct InventoryRow {
    dataset: String,
    category: String,
    vertices: usize,
    edges: usize,
    avg_degree: f64,
    max_degree: usize,
    degeneracy: u32,
    omega: u32,
    multiplicity: Option<usize>,
}

impl_to_json!(InventoryRow {
    dataset,
    category,
    vertices,
    edges,
    avg_degree,
    max_degree,
    degeneracy,
    omega,
    multiplicity
});

fn main() {
    let env = BenchEnv::from_env();
    env.banner("Corpus inventory (the paper's dataset table)");
    let datasets = load_corpus(&env);

    let mut rows = Vec::new();
    for dataset in &datasets {
        let omega = gmc_bench::true_omega(&env, &dataset.graph);
        let degeneracy = gmc_graph::kcore::degeneracy(&dataset.graph);
        let device = env.device();
        let multiplicity = match run_solver(&device, &dataset.graph, SolverConfig::default())
            .expect("solver runs")
        {
            RunOutcome::Solved(rec) => {
                assert_eq!(rec.omega, omega, "{}: solver vs baseline ω", dataset.name());
                Some(rec.multiplicity)
            }
            RunOutcome::Oom => None,
        };
        rows.push(InventoryRow {
            dataset: dataset.name().to_string(),
            category: dataset.spec.category.to_string(),
            vertices: dataset.graph.num_vertices(),
            edges: dataset.graph.num_edges(),
            avg_degree: dataset.avg_degree(),
            max_degree: dataset.graph.max_degree(),
            degeneracy,
            omega,
            multiplicity,
        });
    }

    print_table(
        &[
            "Dataset", "Cat", "|V|", "|E|", "avg d", "max d", "degen", "ω", "#max",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.category.clone(),
                    r.vertices.to_string(),
                    r.edges.to_string(),
                    format!("{:.1}", r.avg_degree),
                    r.max_degree.to_string(),
                    r.degeneracy.to_string(),
                    r.omega.to_string(),
                    r.multiplicity.map_or("OOM".into(), |m| m.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Category summary.
    let mut categories: Vec<String> = rows.iter().map(|r| r.category.clone()).collect();
    categories.sort();
    categories.dedup();
    println!("\nPer-category means:");
    for cat in categories {
        let selected: Vec<&InventoryRow> = rows.iter().filter(|r| r.category == cat).collect();
        let mean = |f: fn(&InventoryRow) -> f64| {
            selected.iter().map(|r| f(r)).sum::<f64>() / selected.len() as f64
        };
        println!(
            "  {:>6}: {} datasets, avg |E| {:.0}, avg degree {:.1}, avg ω {:.1}",
            cat,
            selected.len(),
            mean(|r| r.edges as f64),
            mean(|r| r.avg_degree),
            mean(|r| r.omega as f64),
        );
    }

    save_json(&env, "corpus_inventory", &rows);
}
